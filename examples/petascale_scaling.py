"""Scale ABE to a petaflop-petabyte machine (the Section 5 study).

Sweeps the design from ABE (96 TB, 9 OSS pairs, 1200 nodes) to the Blue
Waters-class point (12 PB, 81 OSS pairs, 32000 nodes) and prints the
Figure 4 curves, then quantifies the two design interventions the paper
evaluates: the (8+3) RAID configuration and the standby-spare OSS.

Run:  python examples/petascale_scaling.py            (quick sweep)
      python examples/petascale_scaling.py --full     (paper fidelity)
"""

from __future__ import annotations

import sys
import time

from repro.cfs import ClusterModel, petascale_parameters, scale_step
from repro.experiments import run_figure4
from repro.raid import RAID_8P3


def main(full: bool = False) -> None:
    t0 = time.time()
    kwargs = (
        dict(n_steps=6, n_replications=8, hours=8760.0)
        if full
        else dict(n_steps=3, n_replications=4, hours=8760.0)
    )
    print(f"running the Figure 4 sweep ({kwargs})...\n")
    figure = run_figure4(**kwargs)
    print(figure.format())

    cfs = figure.series_by_label("CFS-Availability").means()
    spare = figure.series_by_label("CFS-Availability-spare-OSS").means()
    print(f"\nCFS availability: {cfs[0]:.3f} (ABE) -> {cfs[-1]:.3f} (petascale)")
    print(f"paper:            0.972 (ABE) -> 0.909 (petascale)")
    print(f"standby-spare OSS recovers {100*(spare[-1]-cfs[-1]):.1f}% "
          f"at petascale (paper: ~3%)")

    # --- the (8+3) intervention on the storage side ---------------------
    print("\n(8+3) RAID at petascale with pessimistic disks "
          "(shape 0.6, AFR 8.76%):")
    from repro.cfs.cluster import StorageModel
    from repro.core import replicate_runs

    for label, raid in (("8+2", None), ("8+3", RAID_8P3)):
        params = petascale_parameters().with_disks(
            shape=0.6, afr=0.0876, raid=raid
        )
        sm = StorageModel(params, base_seed=17)
        exp = replicate_runs(
            sm.simulator, 8760.0, n_replications=4,
            rewards=sm.measures.rewards,
            extra_metrics=sm.measures.extra_metrics,
        )
        print(f"  {label}: storage availability "
              f"{exp.estimate('storage_availability')}, "
              f"data losses/yr {exp.estimate('data_loss_events')}")

    print(f"\ntotal {time.time() - t0:.0f}s")


if __name__ == "__main__":
    main(full="--full" in sys.argv)
