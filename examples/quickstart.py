"""Quickstart: build, compose, simulate, and solve a SAN in 80 lines.

This walks the core workflow of the library on a miniature dependability
model: a fleet of repairable units with a shared alarm, simulated with
confidence intervals and cross-checked against the exact CTMC solution.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import (
    SAN,
    Exponential,
    ImpulseReward,
    RateReward,
    Simulator,
    explore,
    flatten,
    join,
    replicate,
    replicate_runs,
)

# ---------------------------------------------------------------------
# 1. Define an atomic model (a SAN template): a repairable unit.
# ---------------------------------------------------------------------
unit = SAN("unit")
unit.place("up", 1)
unit.place("down_count", 0)  # shared fleet-wide counter


def fail(m, rng):
    m["up"] = 0
    m["down_count"] += 1


def repair(m, rng):
    m["up"] = 1
    m["down_count"] -= 1


unit.timed("fail", Exponential(1 / 720.0), enabled=lambda m: m["up"] == 1, effect=fail)
unit.timed("repair", Exponential(1 / 24.0), enabled=lambda m: m["up"] == 0, effect=repair)

# ---------------------------------------------------------------------
# 2. Add a watcher with instantaneous (zero-delay) detection logic.
# ---------------------------------------------------------------------
watch = SAN("watch")
watch.place("down_count", 0)
watch.place("alarm", 0)
watch.instant(
    "raise",
    enabled=lambda m: m["down_count"] >= 2 and m["alarm"] == 0,
    effect=lambda m, rng: m.__setitem__("alarm", 1),
)
watch.instant(
    "clear",
    enabled=lambda m: m["down_count"] < 2 and m["alarm"] == 1,
    effect=lambda m, rng: m.__setitem__("alarm", 0),
)

# ---------------------------------------------------------------------
# 3. Compose: replicate the unit 4x, join with the watcher, share state.
# ---------------------------------------------------------------------
tree = join(
    "system",
    replicate("fleet", unit, 4, shared=["down_count"]),
    watch,
    shared=["down_count"],
)
model = flatten(tree)
print(model.summary())

# ---------------------------------------------------------------------
# 4. Simulate with reward variables and 95% confidence intervals.
# ---------------------------------------------------------------------
sim = Simulator(model, base_seed=2008)
rewards = [
    RateReward("alarm_fraction", lambda m: float(m["system/watch/alarm"])),
    RateReward("all_up", lambda m: 1.0 if m["system/down_count"] == 0 else 0.0),
    ImpulseReward("failures", "*/fail"),
]
result = replicate_runs(sim, 100_000.0, n_replications=10, rewards=rewards)
for metric in ("alarm_fraction", "all_up", "failures.per_hour"):
    print(f"  simulated {metric:<18} {result.estimate(metric)}")

# ---------------------------------------------------------------------
# 5. Cross-check: exhaustive state space -> exact CTMC solution.
# ---------------------------------------------------------------------
statespace = explore(model)
ctmc = statespace.to_ctmc()
alarm_exact = ctmc.steady_state_reward(
    statespace.reward_vector(lambda m: float(m["system/watch/alarm"]))
)
print(f"  exact     alarm_fraction     {alarm_exact:.6g}  "
      f"({statespace.n_states} tangible states)")
