"""Reproduce the ABE cluster's dependability measures (Sections 3-5).

Builds the calibrated ABE model (Figure 1's composition tree), simulates
ten one-year replications, and reports the paper's reward measures next
to the values the paper measured or predicted.

Run:  python examples/abe_availability.py
"""

from __future__ import annotations

import time

from repro.cfs import ClusterModel, abe_parameters

PAPER_ANCHORS = {
    "storage_availability": ("~1.0", "RAID6 absorbs disk failures at ABE scale"),
    "cfs_availability": ("0.972", "matches the Table 1 notification analysis"),
    "cluster_utility": ("< CFS avail.", "transient network errors dominate"),
    "disks_replaced_per_week": ("0-2", "'0-2 disks replaced per week'"),
}


def main() -> None:
    params = abe_parameters()
    print("ABE configuration")
    print(f"  compute nodes        {params.n_compute_nodes}")
    print(f"  OSS fail-over pairs  {params.n_oss_pairs} (1 metadata + 8 scratch)")
    print(f"  DDN units            {params.n_ddn_units} x {params.tiers_per_ddn} tiers")
    print(f"  disks                {params.n_disks} x {1000*params.disk_capacity_tb:.0f} GB"
          f" ({params.usable_storage_tb:.0f} TB usable)")
    print(f"  disk lifetime        Weibull(shape={params.disk_weibull_shape},"
          f" MTBF={params.disk_mtbf_hours:,.0f} h, AFR={100*params.disk_afr:.2f}%)")

    model = ClusterModel(params, base_seed=2008)
    print(f"\nmodel: {model.summary()}")

    t0 = time.time()
    result = model.simulate(hours=8760.0, n_replications=10)
    print(f"simulated 10 x 1 year in {time.time() - t0:.1f}s\n")

    print(f"{'measure':<26} {'simulated':<26} paper")
    for metric, (anchor, note) in PAPER_ANCHORS.items():
        est = result.estimate(metric)
        print(f"{metric:<26} {str(est):<26} {anchor}  ({note})")

    onsets = result.estimate("cfs_outage_onsets_per_year")
    print(f"\nCFS outage onsets per year: {onsets}")
    print("(Table 1 lists 10 notifications over ~4 months, i.e. ~30/year)")


if __name__ == "__main__":
    main()
