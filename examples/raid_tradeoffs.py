"""RAID tier dependability: simulation vs analytic Markov models.

Explores the storage-design space around Figure 2/3: tier geometry
(8+1 / 8+2 / 8+3), disk replacement time (the Table 5 range 1-12 h), and
the role of correlated disk failures — including the headline negative
result that with *independent* failures RAID6 essentially never loses
data, which is why the paper's correlated-failure modeling matters.

Run:  python examples/raid_tradeoffs.py
"""

from __future__ import annotations

import time

from repro.core import Simulator, Weibull, flatten, ImpulseReward, RateReward, replicate_runs
from repro.experiments import expected_replacements_per_week
from repro.markov import RAIDTierMarkov, raid_mttdl_approximation
from repro.raid import RAID5_8P1, RAID6_8P2, RAID_8P3, build_tier_node


def analytic_geometry_comparison() -> None:
    print("Analytic tier MTTDL (independent exponential failures,")
    print("fitted disk rate 1/300000 h, replacement 4 h):")
    lam, mu = 1 / 300_000.0, 1 / 4.0
    for cfg in (RAID5_8P1, RAID6_8P2, RAID_8P3):
        mk = RAIDTierMarkov(cfg.tier_size, cfg.fault_tolerance, lam, mu)
        approx = raid_mttdl_approximation(
            cfg.tier_size, cfg.fault_tolerance, lam, mu
        )
        print(f"  {cfg.label:<5} numeric {mk.mttdl()/8760.0:>16,.0f} years"
              f"   closed-form {approx/8760.0:>16,.0f} years")
    print("  -> even 8+1 outlives the machine; multi-disk loss requires")
    print("     correlated failures (Section 4.3's propagation model).\n")


def replacement_time_sweep() -> None:
    print("Replacement-time sweep (Table 5 range), analytic 8+2 tier,")
    print("pessimistic AFR 8.76%:")
    lam = 0.0876 / 8760.0
    for hours in (1.0, 4.0, 12.0):
        mk = RAIDTierMarkov(10, 2, lam, 1.0 / hours)
        print(f"  replace {hours:>4.0f} h   MTTDL {mk.mttdl()/8760.0:>14,.0f} years"
              f"   availability {mk.availability():.9f}")
    print()


def correlated_failure_simulation() -> None:
    print("Simulated 8+2 tier under correlated failures "
          "(shape 0.6, AFR 8.76%, 1 year x 20 tiers-equivalent):")
    lifetime = Weibull.from_afr(0.6, 0.0876)
    for p in (0.0, 0.05, 0.15):
        node = build_tier_node(
            RAID6_8P2, lifetime, propagation_p=p, name="tier"
        )
        model = flatten(node)
        sim = Simulator(model, base_seed=round(1000 * p))
        rewards = [
            RateReward("up", lambda m: 1.0 if m["tier/tiers_down"] == 0 else 0.0),
            ImpulseReward("losses", "*/data_loss"),
            ImpulseReward("replacements", "*/replace"),
        ]
        exp = replicate_runs(
            sim, 8760.0 * 20, n_replications=4, rewards=rewards
        )
        print(f"  p={p:<5} availability {exp.estimate('up').mean:.6f}"
              f"   losses/20yr {exp.estimate('losses').mean:.2f}"
              f"   repl/week {exp.estimate('replacements.per_hour').mean*168:.3f}")
    print()


def replacement_burden() -> None:
    print("Replacement burden (Figure 3's renewal-theory line):")
    for n_disks in (480, 4800):
        for afr in (0.0292, 0.0876):
            print(f"  {n_disks} disks @ AFR {100*afr:.2f}%: "
                  f"{expected_replacements_per_week(n_disks, afr):.2f} disks/week")


def main() -> None:
    t0 = time.time()
    analytic_geometry_comparison()
    replacement_time_sweep()
    correlated_failure_simulation()
    replacement_burden()
    print(f"\ntotal {time.time() - t0:.0f}s")


if __name__ == "__main__":
    main()
