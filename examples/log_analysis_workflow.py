"""The Section 3 workflow: operational logs -> dependability estimates.

Synthesizes an ABE operating period (compute-log 05/03-10/02/2007,
SAN-log 09/05-11/30/2007), writes both logs to disk in the canonical
format, re-parses them, and reruns every analysis of Section 3:

* Table 1 - outage notifications and SAN availability;
* Table 2 - mount-failure storm days;
* Table 3 - job kill statistics and cluster utility;
* Table 4 - disk survival analysis (censored Weibull fit).

Because the logs come from a model with known ground truth, the script
also reports estimator error — the loop closure the paper could not show.

Run:  python examples/log_analysis_workflow.py [output_dir]
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.analysis import (
    availability_from_outages,
    fit_weibull_censored,
    job_statistics,
    jobs_from_events,
    mount_failures_by_day,
    pair_outages,
    parse_file,
)
from repro.cfs import abe_parameters
from repro.core import make_generator
from repro.loggen import disk_survival_dataset, generate_abe_logs, write_log


def main(out_dir: str | None = None) -> None:
    t0 = time.time()
    workdir = Path(out_dir) if out_dir else Path(tempfile.mkdtemp(prefix="abe-logs-"))
    workdir.mkdir(parents=True, exist_ok=True)

    # ----- 1. synthesize and persist the logs -------------------------
    print("synthesizing ABE operating period (seed 2013)...")
    logs = generate_abe_logs(seed=2013)
    san_path = workdir / "san.log"
    compute_path = workdir / "compute.log"
    n_san = write_log(logs.san_log.events, str(san_path))
    n_compute = write_log(logs.compute_log.events, str(compute_path))
    print(f"  wrote {n_san} SAN-log lines      -> {san_path}")
    print(f"  wrote {n_compute} compute-log lines -> {compute_path}")

    # ----- 2. parse from disk (lenient mode, like real ops data) ------
    san = parse_file(san_path, strict=False)
    compute = parse_file(compute_path, strict=False)
    print(f"  re-parsed ({san.n_skipped}+{compute.n_skipped} lines skipped)")

    # ----- 3. Table 1: availability from outage notifications ---------
    w = logs.windows
    outages = pair_outages(san.log.component("san", "batch"), window_end=w.san_end)
    availability = availability_from_outages(outages, w.epoch, w.san_end)
    truth = logs.ground_truth.cfs_availability
    print(f"\nTable 1 analysis: {len(outages)} outages")
    print(f"  estimated availability {availability:.4f}"
          f"   ground truth {truth:.4f}   error {abs(availability-truth):.4f}")

    # ----- 4. Table 2: mount-failure storms ---------------------------
    storms = mount_failures_by_day(compute.log)
    if storms:
        biggest = max(storms.items(), key=lambda kv: kv[1])
        print(f"\nTable 2 analysis: {len(storms)} storm days, "
              f"largest {biggest[1]} nodes on {biggest[0]}")

    # ----- 5. Table 3: job statistics ----------------------------------
    jobs = jobs_from_events(compute.log)
    stats = job_statistics(jobs)
    print(f"\nTable 3 analysis:")
    print("  " + stats.format().replace("\n", "\n  "))
    print(f"  cluster utility {stats.cluster_utility:.4f}, "
          f"transient:other = {stats.transient_to_other_ratio:.1f}")

    # ----- 6. Table 4: disk survival analysis -------------------------
    params = abe_parameters()
    data = disk_survival_dataset(
        params.n_disks, params.disk_lifetime, 5784.0, make_generator(496, "table4")
    )
    fit = fit_weibull_censored(data.durations, data.observed)
    lo, hi = fit.shape_confidence_interval()
    print(f"\nTable 4 analysis: {data.n_failures} failures across "
          f"{params.n_disks} slots")
    print(f"  Weibull shape {fit.shape:.3f} (95% CI [{lo:.2f}, {hi:.2f}]),"
          f" ground truth 0.7, paper 0.696 +- 0.192")
    print(f"  implied AFR {100*fit.afr:.2f}% (ground truth 2.92%)")

    print(f"\ntotal {time.time() - t0:.0f}s; logs kept in {workdir}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
