"""Checkpoint planning against the simulated file system.

The paper's introduction motivates the dependability study with
checkpointing: at petascale, "more than half the computation time would
be spent checkpointing the application state" (Long et al.).  This
example closes that loop with the calibrated model:

1. simulate the cluster at several scales to obtain the CFS-side failure
   behaviour (outage onsets per year);
2. combine it with per-node failure rates into a whole-machine MTBF;
3. size the checkpoint write through the CFS's aggregate bandwidth;
4. compute the optimal checkpoint interval and the resulting machine
   efficiency (exact renewal model, validated against Young's formula).

Run:  python examples/checkpoint_planning.py
"""

from __future__ import annotations

import time

from repro.cfs import (
    ClusterModel,
    efficiency_at_scale,
    scale_step,
    young_interval,
)

NODE_MTBF_YEARS = 5.0  # per-compute-node hardware MTBF


def main() -> None:
    t0 = time.time()
    print(f"{'nodes':>7} {'CFS outages/yr':>15} {'machine MTBF':>13} "
          f"{'ckpt write':>11} {'T_opt':>7} {'efficiency':>11}")
    efficiencies = []
    for k in (1, 5, 10):
        params = scale_step(k, 10)
        sim = ClusterModel(params, base_seed=600 + k).simulate(
            hours=8760.0, n_replications=3
        )
        cfs_onsets = sim.estimate("cfs_outage_onsets_per_year").mean
        node_rate = params.n_compute_nodes / (NODE_MTBF_YEARS * 8760.0)
        machine_mtbf = 1.0 / (node_rate + cfs_onsets / 8760.0)

        model = efficiency_at_scale(params, failure_mtbf_hours=machine_mtbf)
        t_opt = model.optimal_interval()
        eff = model.efficiency(t_opt)
        efficiencies.append(eff)
        print(f"{params.n_compute_nodes:>7} {cfs_onsets:>15.1f} "
              f"{machine_mtbf:>11.1f} h {60*model.checkpoint_hours:>7.1f} min "
              f"{t_opt:>5.2f} h {eff:>10.3f}")
        young = young_interval(model.checkpoint_hours, machine_mtbf)
        print(f"{'':>7} (Young's approximation T_opt = {young:.2f} h)")

    print(f"\nABE-scale efficiency {efficiencies[0]:.2f} -> petascale "
          f"{efficiencies[-1]:.2f}")
    if efficiencies[-1] < 0.5:
        print("=> reproduces the motivating claim: more than half the "
              "petascale machine\n   is lost to checkpoint/restart unless "
              "I/O bandwidth scales with the nodes.")
    print(f"\ntotal {time.time() - t0:.0f}s")


if __name__ == "__main__":
    main()
