"""Benchmarks regenerating Figures 2-4 of the paper.

Reduced sweeps (fewer steps/replications than ``run_*`` defaults) so a
benchmark run completes in minutes; the printed series still exhibit the
paper's shapes (orderings, anchors, crossovers).
"""

from __future__ import annotations

import pytest

from repro.experiments import run_figure2, run_figure3, run_figure4

from conftest import print_result


def bench_figure2_storage_availability(benchmark):
    """Figure 2: storage availability vs scale for disk-failure configs."""
    result = benchmark.pedantic(
        lambda: run_figure2(n_steps=4, n_replications=4, hours=8760.0, base_seed=96),
        rounds=1,
        iterations=1,
    )
    print_result(
        "Figure 2 (paper: ~1.0 at ABE; worst configs degrade at petascale)",
        result.format(),
    )
    for series in result.series:
        assert series.points[0].estimate.mean > 0.99


def bench_figure3_disk_replacements(benchmark):
    """Figure 3: disks replaced per week vs fleet size and AFR."""
    result = benchmark.pedantic(
        lambda: run_figure3(n_steps=4, n_replications=4, hours=8760.0, base_seed=3),
        rounds=1,
        iterations=1,
    )
    print_result(
        "Figure 3 (paper: 0-2/week at ABE for AFR 2.92%; linear growth)",
        result.format(),
    )
    abe = result.series_by_label("0.7,2.92,8+2,4").points[0]
    assert 0.0 <= abe.estimate.mean <= 2.0


def bench_figure4_cluster_availability(benchmark):
    """Figure 4: storage/CFS availability, CU, and the spare-OSS variant."""
    result = benchmark.pedantic(
        lambda: run_figure4(n_steps=3, n_replications=4, hours=8760.0, base_seed=4),
        rounds=1,
        iterations=1,
    )
    print_result(
        "Figure 4 (paper: CFS 0.972 -> 0.909; spare OSS +3%; CU lowest)",
        result.format(),
    )
    cfs = result.series_by_label("CFS-Availability").means()
    assert cfs[0] > cfs[-1]
    cu = result.series_by_label("CU").means()
    assert all(c < a for c, a in zip(cu, cfs))
