"""Sweep-cell scheduling and declared-reads benchmarks.

Cell-level parallelism is the top of the scaling stack: a whole-figure
regeneration is a grid of independent cells, and ``run_sweep`` schedules
them across a process pool.  On a single-core host these benchmarks
degenerate into a measurement of scheduling overhead (pool spawn + cell
pickling), bounding the cost a multi-core host must amortize; the
serial/parallel OPS ratio on an ``n``-core machine is the cell-level
speedup.  Every parallel benchmark asserts bit-identity with serial
execution.

The declared-reads pair A/B-tests ``timed(..., reads=[...])`` against
tracked discovery on an identical fleet (identical trajectories,
asserted) — the delta is the read-tracking overhead the declaration
removes.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_sweep.py \
        --benchmark-only -o python_functions='bench_*'
"""

from __future__ import annotations

import os

from repro.cfs import abe_parameters
from repro.cfs.cluster import StorageModel
from repro.core import SAN, Exponential, ImpulseReward, Simulator, flatten, replicate
from repro.experiments import replication_cell, run_sweep

N_JOBS = max(os.cpu_count() or 1, 2)  # exercise the pool even on 1 core

#: A Figure 2-shaped mini grid: 4 storage cells, 2 replications each.
GRID_CELLS = 4
GRID_HOURS = 2000.0
GRID_REPS = 2


def _grid():
    params = abe_parameters()
    return [
        replication_cell(
            ("cell", i),
            StorageModel.spec(params, 96 + i),
            GRID_HOURS,
            GRID_REPS,
        )
        for i in range(GRID_CELLS)
    ]


def _samples(result):
    return {
        key: {m: result[key].samples(m) for m in result[key].metrics}
        for key in result
    }


def bench_sweep_grid_serial(benchmark):
    """Serial baseline: a 4-cell storage grid in grid order."""
    result = benchmark.pedantic(
        lambda: run_sweep(_grid(), n_jobs=1), rounds=3, iterations=1
    )
    assert len(result) == GRID_CELLS


def bench_sweep_grid_parallel(benchmark):
    """Same grid through the cell scheduler (``chunksize=1`` dispatch).

    Asserts per-cell bit-identity with serial execution; the
    serial/parallel ratio is the cell-level scaling on this host.
    """
    serial = _samples(run_sweep(_grid(), n_jobs=1))
    result = benchmark.pedantic(
        lambda: run_sweep(_grid(), n_jobs=N_JOBS), rounds=3, iterations=1
    )
    assert _samples(result) == serial


def bench_sweep_pool_startup(benchmark):
    """Scheduling overhead floor: a 2-cell grid of minimal studies.

    Bounds the pool spawn + spec pickling + per-worker model build cost
    that cell-level speedup must amortize (see docs/performance.md).
    """
    params = abe_parameters()

    def run():
        cells = [
            replication_cell(
                ("tiny", i), StorageModel.spec(params, i), 200.0, 1
            )
            for i in range(2)
        ]
        return run_sweep(cells, n_jobs=2)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) == 2


# ----------------------------------------------------------------------
# declared reads vs tracked discovery
# ----------------------------------------------------------------------
def _fleet_model(n_units: int, declare: bool):
    def reads(*names):
        return {"reads": list(names)} if declare else {}

    unit = SAN("unit")
    unit.place("up", 1)
    unit.place("down_count", 0)
    unit.timed(
        "fail",
        Exponential(0.01),
        enabled=lambda m: m["up"] == 1,
        effect=lambda m, rng: (
            m.__setitem__("up", 0),
            m.__setitem__("down_count", m["down_count"] + 1),
        ),
        **reads("up"),
    )
    unit.timed(
        "repair",
        Exponential(0.1),
        enabled=lambda m: m["up"] == 0,
        effect=lambda m, rng: (
            m.__setitem__("up", 1),
            m.__setitem__("down_count", m["down_count"] - 1),
        ),
        **reads("up"),
    )
    return flatten(replicate("fleet", unit, n_units, shared=["down_count"]))


def _run_fleet(declare: bool):
    sim = Simulator(_fleet_model(500, declare), base_seed=11)
    return sim.run(1000.0, rewards=[ImpulseReward("fails", "*/fail")])


def bench_fleet_tracked_reads(benchmark):
    """500-unit fleet year with tracked dependency discovery."""
    result = benchmark.pedantic(lambda: _run_fleet(False), rounds=3, iterations=1)
    assert result.n_events > 1000


def bench_fleet_declared_reads(benchmark):
    """Same fleet with ``reads=[...]`` declared on every activity.

    Asserts the trajectory is bit-identical to the tracked run; the
    timing delta against ``bench_fleet_tracked_reads`` is the tracking
    overhead removed.
    """
    tracked = _run_fleet(False)
    result = benchmark.pedantic(lambda: _run_fleet(True), rounds=3, iterations=1)
    assert result.n_events == tracked.n_events
    assert result._final_values == tracked._final_values
