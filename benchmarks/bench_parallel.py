"""Replication-scaling benchmarks for the parallel runner.

Replications are embarrassingly parallel and stream-indexed (replication
``k`` always uses seed-tree stream ``k``), so ``n_jobs`` changes wall
clock only — every sample list is bit-identical to serial execution,
which each parallel benchmark asserts.

Scaling is near-linear when (a) the host has multiple cores and (b) the
per-worker model (re)build is amortized over enough replications per
worker.  On a single-core host these benchmarks degenerate into a
measurement of process-pool overhead; see ``docs/performance.md`` for
the interpretation of recorded numbers.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py \
        --benchmark-only -o python_functions='bench_*'
"""

from __future__ import annotations

import os

from repro.cfs import ClusterModel, abe_parameters

#: One ABE yearly-availability sweep cell (Figure 4 / Table-sweep shaped).
HOURS = 8760.0
N_REPLICATIONS = 8
N_JOBS = max(os.cpu_count() or 1, 2)  # exercise the pool even on 1 core


def _simulate(n_jobs: int):
    model = ClusterModel(abe_parameters(), base_seed=2008)
    return model.simulate(
        hours=HOURS, n_replications=N_REPLICATIONS, n_jobs=n_jobs
    )


def _samples_dict(result):
    return {m: result.experiment.samples(m) for m in result.experiment.metrics}


def bench_abe_sweep_cell_serial(benchmark):
    """Serial baseline: one ABE sweep cell (8 yearly replications)."""
    result = benchmark.pedantic(lambda: _simulate(1), rounds=3, iterations=1)
    assert 0.9 < result.cfs_availability.mean <= 1.0


def bench_abe_sweep_cell_parallel(benchmark):
    """Same sweep cell through the process pool (spec-mode workers).

    Asserts bit-identity with serial execution; the serial/parallel OPS
    ratio in the benchmark table is the replication-scaling speedup
    (bounded by the host's core count and pool start-up cost).
    """
    serial = _samples_dict(_simulate(1))
    result = benchmark.pedantic(
        lambda: _simulate(N_JOBS), rounds=3, iterations=1
    )
    assert _samples_dict(result) == serial


def bench_parallel_pool_startup(benchmark):
    """Cost of spinning up the pool for a minimal workload (2 reps).

    This bounds the overhead term in the scaling model: speedup ≈
    n_jobs / (1 + startup/(serial_time)).
    """
    model = ClusterModel(abe_parameters(), base_seed=2008)

    def run():
        return model.simulate(hours=500.0, n_replications=2, n_jobs=2)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.experiment.n_replications == 2
