"""Ablation benchmarks for the extension analyses (DESIGN.md A6-A7).

* A6 — checkpoint/restart efficiency across the ABE → petascale sweep
  (the paper's motivating Long-et-al claim);
* A7 — design-knob tornado: which Table 5 parameter moves CFS
  availability the most ("informed design choices" made quantitative).
"""

from __future__ import annotations

import pytest

from repro.cfs import (
    CheckpointModel,
    abe_parameters,
    efficiency_at_scale,
    scale_step,
    tornado,
)

from conftest import print_result


def bench_a6_checkpoint_efficiency_at_scale(benchmark):
    """A6: optimal checkpoint efficiency across the scaling sweep."""

    def sweep():
        rows = []
        for k in (1, 4, 7, 10):
            params = scale_step(k, 10)
            # whole-machine MTBF: ~5-year node MTBF across the fleet,
            # which dwarfs CFS outages as the kill source at scale.
            node_mtbf_years = 5.0
            system_mtbf = node_mtbf_years * 8760.0 / params.n_compute_nodes
            model = efficiency_at_scale(params, failure_mtbf_hours=system_mtbf)
            rows.append(
                (
                    params.n_compute_nodes,
                    model.checkpoint_hours * 60.0,
                    model.optimal_interval(),
                    model.optimal_efficiency(),
                )
            )
        return rows

    rows = benchmark(sweep)
    text = "\n".join(
        f"  {nodes:>6} nodes: checkpoint {ckpt:5.1f} min, "
        f"optimal interval {interval:5.2f} h, efficiency {eff:.3f}"
        for nodes, ckpt, interval, eff in rows
    )
    print_result(
        "A6: checkpoint efficiency vs scale "
        "(paper intro: >50% of petascale time spent checkpointing)",
        text,
    )
    effs = [r[3] for r in rows]
    assert effs[0] > effs[-1]          # efficiency degrades with scale
    assert effs[-1] < 0.5              # the Long et al. regime


def bench_a7_design_tornado(benchmark):
    """A7: one-at-a-time sensitivity of ABE CFS availability."""
    result = benchmark.pedantic(
        lambda: tornado(
            abe_parameters(), hours=4380.0, n_replications=3, base_seed=55
        ),
        rounds=1,
        iterations=1,
    )
    print_result("A7: design-knob tornado (ABE)", result.format())
    ranked = result.ranked()
    assert ranked[0].swing > ranked[-1].swing


def bench_a8_capacity_dependent_rebuild(benchmark):
    """A8: rebuild time growing with the 33%/yr disk-capacity schedule.

    The paper's replacement-time parameter is capacity-independent; with a
    rebuild term of 2 h/TB, petascale disks (~2.56 TB) have vulnerability
    windows > 9 h instead of 4 h, and data-loss rates rise accordingly.
    """
    from dataclasses import replace as dc_replace

    from repro.cfs import petascale_parameters
    from repro.cfs.cluster import StorageModel
    from repro.core import replicate_runs

    def sweep():
        rows = []
        for rate in (0.0, 2.0, 8.0):
            params = petascale_parameters().with_disks(shape=0.6, afr=0.0876)
            params = dc_replace(
                params, raid=params.raid.with_rebuild_rate(rate),
                name=f"rebuild={rate}h/TB",
            )
            sm = StorageModel(params, base_seed=21)
            exp = replicate_runs(
                sm.simulator, 8760.0, n_replications=4,
                rewards=sm.measures.rewards,
                extra_metrics=sm.measures.extra_metrics,
            )
            window = params.raid.vulnerability_hours(params.disk_capacity_tb)
            rows.append(
                (rate, window, exp.estimate("data_loss_events").mean)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "\n".join(
        f"  rebuild {rate:>3}h/TB: window {window:5.1f} h, "
        f"data losses/yr {losses:.2f}"
        for rate, window, losses in rows
    )
    print_result("A8: capacity-dependent rebuild at petascale", text)
    assert rows[-1][2] >= rows[0][2]
