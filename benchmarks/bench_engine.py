"""Engine micro-benchmarks: flattening cost and event throughput.

These guard the performance properties that make the petascale sweeps
feasible: dependency-driven enabling means event cost is O(affected
activities), not O(model size).
"""

from __future__ import annotations

import pytest

from repro.cfs import abe_parameters, petascale_parameters
from repro.cfs.cluster import build_cluster_node
from repro.core import (
    SAN,
    Exponential,
    RateReward,
    Simulator,
    flatten,
    replicate,
)


def _fleet_model(n_units: int):
    unit = SAN("unit")
    unit.place("up", 1)
    unit.place("down_count", 0)
    unit.timed(
        "fail",
        Exponential(0.01),
        enabled=lambda m: m["up"] == 1,
        effect=lambda m, rng: (
            m.__setitem__("up", 0),
            m.__setitem__("down_count", m["down_count"] + 1),
        ),
    )
    unit.timed(
        "repair",
        Exponential(0.1),
        enabled=lambda m: m["up"] == 0,
        effect=lambda m, rng: (
            m.__setitem__("up", 1),
            m.__setitem__("down_count", m["down_count"] - 1),
        ),
    )
    return replicate("fleet", unit, n_units, shared=["down_count"])


def bench_flatten_abe_cluster(benchmark):
    """Flattening the full ABE composition tree (1158 places)."""
    params = abe_parameters()
    model = benchmark(lambda: flatten(build_cluster_node(params)))
    assert model.n_places > 1000


def bench_flatten_petascale_cluster(benchmark):
    """Flattening the petascale tree (~12k places, 4800 disks).

    ``warmup_rounds=1`` + 5 rounds keep the snapshot minima stable
    (min-vs-mean gap <1.1×; the old 2-round runs were one warm-up away
    from whatever the allocator was doing)."""
    params = petascale_parameters()
    model = benchmark.pedantic(
        lambda: flatten(build_cluster_node(params)),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
    assert model.n_places > 10_000


def bench_event_throughput_small_fleet(benchmark):
    """Raw event-processing rate on a 10-unit fleet (~1100 events)."""
    model = flatten(_fleet_model(10))
    sim = Simulator(model, base_seed=1)

    def run():
        return sim.run(10_000.0).n_events

    events = benchmark(run)
    assert events > 500


def bench_event_throughput_large_fleet(benchmark):
    """Event cost must not grow with fleet size (dependency-driven)."""
    model = flatten(_fleet_model(500))
    sim = Simulator(model, base_seed=2)

    def run():
        return sim.run(1_000.0).n_events

    events = benchmark.pedantic(run, rounds=3, iterations=1)
    assert events > 2_000


def bench_event_throughput_fleet_rewards(benchmark):
    """The observed fast loop: rate+impulse rewards on the 500-unit fleet.

    The rate reward reads the shared counter every event writes, so this
    is the worst case for incremental reward integration (one observer
    refresh per event)."""
    model = flatten(_fleet_model(500))
    sim = Simulator(model, base_seed=2)
    from repro.core import ImpulseReward

    rewards = [
        RateReward("frac_down", lambda m: m["fleet/down_count"] / 500.0),
        ImpulseReward("repairs", "*/repair"),
    ]

    def run():
        return sim.run(1_000.0, rewards=rewards).n_events

    events = benchmark.pedantic(run, rounds=3, iterations=1)
    assert events > 2_000


def bench_abe_cluster_one_year(benchmark):
    """One replication of the calibrated ABE model over a simulated year.

    ``warmup_rounds=1`` keeps one-time work (model compile, equilibrium
    quantile grids, kernel verification) out of the timed rounds, and 8
    pedantic rounds give the snapshot minima enough samples to be stable
    (the old 3-round runs showed 5× min-vs-mean gaps in
    BENCH_engine.json).
    """
    from repro.cfs import ClusterModel

    cm = ClusterModel(abe_parameters(), base_seed=3)
    rw = cm.measures.rewards

    def run():
        return cm.simulator.run(8760.0, rewards=rw)

    result = benchmark.pedantic(run, rounds=8, iterations=1, warmup_rounds=1)
    assert 0.9 < result["cfs_availability"].time_average <= 1.0


def bench_petascale_cluster_one_year(benchmark):
    """One replication of the petascale model over a simulated year.

    Rounds/warmup chosen for stable minima — see
    :func:`bench_abe_cluster_one_year`.
    """
    from repro.cfs import ClusterModel

    cm = ClusterModel(petascale_parameters(), base_seed=4)
    rw = cm.measures.rewards

    def run():
        return cm.simulator.run(8760.0, rewards=rw)

    result = benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)
    assert 0.8 < result["cfs_availability"].time_average <= 1.0


def bench_statespace_exploration(benchmark):
    """Exhaustive state-space generation of a 10-unit fleet (1024 states)."""
    from repro.core import explore

    model = flatten(_fleet_model(10))
    ss = benchmark(lambda: explore(model))
    assert ss.n_states == 1024
