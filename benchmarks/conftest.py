"""Benchmark harness configuration.

Run with ``pytest benchmarks/ --benchmark-only``.  Each ``bench_*`` module
regenerates one table or figure of the paper (plus ablations beyond it)
and prints the resulting rows/series, so a benchmark run doubles as a
reproduction run.  Sweeps use reduced replication counts; the
paper-fidelity versions live in ``repro.experiments`` (``full=True``).
"""

from __future__ import annotations


def print_result(title: str, text: str) -> None:
    """Print a regenerated artifact under a banner."""
    banner = "=" * 72
    print(f"\n{banner}\n{title}\n{banner}\n{text}")
