"""Rare-event engine benchmarks: splitting throughput + stopping overhead.

The deep-tail headline (docs/performance.md, Layer 8) is ~150x effective
speedup from RESTART splitting on the petascale tier, and replications
saved by the adaptive stopping rule.  These benches track the two cost
terms that speedup rests on, at a size small enough for CI smoke:

* ``bench_splitting_small_tier`` runs a full splitting study on the
  4-disk aggregate tier — the per-segment cost (restart-from-marking,
  branch bookkeeping, per-branch seeded streams) is the unit the
  deep-tail wall-clock multiplies;
* ``bench_crude_same_model`` is the same study through the crude
  (single-threshold, no-splitting) path — the A/B for the splitting
  tree's bookkeeping overhead per root;
* ``bench_adaptive_stopping_overhead`` replicates a tier study to a
  relative-CI target vs a fixed count of the same size, so the batch
  means / CI re-check cost per round stays visibly near zero.

Every estimate is asserted bit-stable across rounds (same seeds, same
schedule), so the benches double as determinism smoke tests.
"""

from __future__ import annotations

from repro.core import Simulator, StoppingRule
from repro.core.experiment import replicate_runs
from repro.core.parallel import build_setup_cached
from repro.experiments.rare import (
    aggregate_tier_san,
    splitting_probability,
    tier_replication_spec,
    tier_splitting_policy,
)

N_DISKS, TOLERANCE, FAIL_RATE, REPAIR_RATE = 4, 1, 0.01, 0.5
HOURS = 100.0
N_ROOTS = 48
N_REPS = 48


def _simulator():
    return Simulator(
        aggregate_tier_san(N_DISKS, TOLERANCE, FAIL_RATE, REPAIR_RATE),
        base_seed=2008,
    )


def _policy():
    return tier_splitting_policy(N_DISKS, TOLERANCE, FAIL_RATE, REPAIR_RATE)


def bench_splitting_small_tier(benchmark):
    """Full RESTART study: per-segment restart + branch bookkeeping cost."""

    def study():
        return splitting_probability(
            _simulator(), HOURS, _policy(), n_roots=N_ROOTS
        )

    baseline = study()
    est = benchmark.pedantic(study, rounds=5, iterations=1, warmup_rounds=1)
    assert est.n_roots == N_ROOTS
    assert est.n_segments > N_ROOTS  # the tree actually branched
    assert est.samples == baseline.samples  # seeded: bit-stable per round


def bench_crude_same_model(benchmark):
    """Same study, single top threshold: no splitting bookkeeping."""
    crude = _policy().crude()

    def study():
        return splitting_probability(
            _simulator(), HOURS, crude, n_roots=N_ROOTS
        )

    baseline = study()
    est = benchmark.pedantic(study, rounds=5, iterations=1, warmup_rounds=1)
    assert est.n_roots == est.n_segments == N_ROOTS
    assert est.samples == baseline.samples


def bench_adaptive_stopping_overhead(benchmark):
    """Replicate to a rel-CI target vs a fixed count of the same size.

    The rule below never stops early on this config (target far below
    what N_REPS can deliver), so the adaptive run does exactly the fixed
    run's replications plus the per-round batch-means/CI checks — the
    measured delta vs ``bench_fixed_count_baseline`` is pure rule cost.
    """
    spec = tier_replication_spec(
        N_DISKS, TOLERANCE, FAIL_RATE, REPAIR_RATE, base_seed=2008
    )
    setup, _metrics = build_setup_cached(spec)
    rule = StoppingRule(rel_ci=1e-9, metrics=("lost",), batch=4)

    def adaptive():
        return replicate_runs(
            setup.simulator,
            HOURS,
            n_replications=N_REPS,
            rewards=setup.rewards,
            stopping=rule,
        )

    result = benchmark.pedantic(
        adaptive, rounds=5, iterations=1, warmup_rounds=1
    )
    assert result.n_replications == N_REPS  # ran to the cap


def bench_fixed_count_baseline(benchmark):
    """The fixed-count twin of the adaptive bench (A/B denominator)."""
    spec = tier_replication_spec(
        N_DISKS, TOLERANCE, FAIL_RATE, REPAIR_RATE, base_seed=2008
    )
    setup, _metrics = build_setup_cached(spec)

    def fixed():
        return replicate_runs(
            setup.simulator,
            HOURS,
            n_replications=N_REPS,
            rewards=setup.rewards,
        )

    result = benchmark.pedantic(fixed, rounds=5, iterations=1, warmup_rounds=1)
    assert result.n_replications == N_REPS
