"""Compile-once/replicate-many benchmarks: cold construction vs reuse.

The paper's headline numbers are availability estimates over thousands
of replications and multi-cell sweeps, so wall-clock is replications ×
per-run cost **plus** however often the model is constructed and
compiled.  These benches measure that second term directly:

* ``bench_replicate_cold_construct`` pays full model construction +
  table compilation before every replication batch (an empty per-process
  setup cache — what every sweep cell and worker pool paid before the
  cache existed);
* ``bench_replicate_program_reuse`` runs the same batch through the
  warm :func:`repro.core.parallel.build_setup_cached` path — the
  compiled program is reused, only the replications themselves run;
* ``bench_sweep_cells_reuse`` schedules several replication cells of
  one study through :func:`repro.experiments.sweep.run_sweep` in one
  process: cell 1 compiles, later cells reuse.

Reuse is bit-identical to cold construction (cache hits reset the
stream counter; asserted here on the collected samples, and by
``tests/test_sweep.py`` / ``tests/test_parallel.py`` for every
``n_jobs``/cell split).
"""

from __future__ import annotations

from repro.cfs import ClusterModel, abe_parameters
from repro.core import parallel
from repro.core.experiment import replicate_runs
from repro.core.parallel import build_setup_cached
from repro.experiments.sweep import replication_cell, run_sweep

HOURS = 1200.0
N_REPS = 3


def _spec():
    return ClusterModel.spec(abe_parameters(), base_seed=17)


def _replicate(setup):
    return replicate_runs(
        setup.simulator,
        HOURS,
        n_replications=N_REPS,
        rewards=setup.rewards,
        traces_factory=setup.traces_factory,
        extra_metrics=setup.extra_metrics,
    )


def _batch_cold():
    parallel._SETUP_CACHE.clear()
    setup, _metrics = build_setup_cached(_spec())
    return _replicate(setup)


def _batch_reuse():
    setup, _metrics = build_setup_cached(_spec())
    return _replicate(setup)


def bench_replicate_cold_construct(benchmark):
    """Full flatten + compile + replicate, every batch (cleared cache)."""
    result = benchmark.pedantic(
        _batch_cold, rounds=5, iterations=1, warmup_rounds=1
    )
    assert result.n_replications == N_REPS


def bench_replicate_program_reuse(benchmark):
    """Same batch on the warm per-process cache: compile once, run many."""
    cold = _batch_cold()  # prime the cache (and the comparison baseline)
    result = benchmark.pedantic(
        _batch_reuse, rounds=5, iterations=1, warmup_rounds=1
    )
    assert result.n_replications == N_REPS
    # reuse-equals-fresh: the warm program replays the cold samples
    for metric in cold.metrics:
        assert result.samples(metric) == cold.samples(metric)


def bench_sweep_cells_reuse(benchmark):
    """A serial grid of cells over one study: compile once, reuse per cell."""
    spec = _spec()
    cells = [
        replication_cell(("cell", i), spec, HOURS, N_REPS) for i in range(3)
    ]

    def grid():
        return run_sweep(cells, n_jobs=1)

    results = benchmark.pedantic(grid, rounds=3, iterations=1, warmup_rounds=1)
    first = results[("cell", 0)]
    for key in (("cell", 1), ("cell", 2)):
        # identical spec => identical (bit-equal) cell results, whether
        # the cell compiled the program or reused it
        for metric in first.metrics:
            assert results[key].samples(metric) == first.samples(metric)
