"""Ablation benchmarks beyond the paper's figures (DESIGN.md A1-A4).

These probe the design choices the paper discusses qualitatively:

* A1 — sensitivity of CFS availability to the correlated-failure
  propagation probability *p* (the calibrated knob);
* A2 — RAID geometry tier MTTDL: analytic Markov across (8+1)/(8+2)/(8+3);
* A3 — the Table 5 disk replacement-time range (1-12 h);
* A4 — spare-pool size 0/1/2/4 at petascale.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.cfs import ClusterModel, StorageModel, abe_parameters, petascale_parameters
from repro.core import replicate_runs
from repro.markov import RAIDTierMarkov
from repro.raid import RAID5_8P1, RAID6_8P2, RAID_8P3

from conftest import print_result


def bench_a1_propagation_sensitivity(benchmark):
    """A1: petascale CFS availability vs OSS propagation probability p."""

    def sweep():
        rows = []
        for p in (0.0, 0.02, 0.045, 0.09):
            params = replace(
                petascale_parameters(), oss_hw_propagation_p=p, name=f"p={p}"
            )
            res = ClusterModel(params, base_seed=11).simulate(
                hours=8760.0, n_replications=3
            )
            rows.append((p, res.cfs_availability.mean))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "\n".join(f"  p={p:<6} CFS availability {a:.4f}" for p, a in rows)
    print_result("A1: propagation-probability sensitivity (petascale)", text)
    # availability must decrease monotonically in p (within noise)
    assert rows[0][1] > rows[-1][1]


def bench_a2_raid_geometry_mttdl(benchmark):
    """A2: analytic tier MTTDL for 8+1 / 8+2 / 8+3 at the fitted disk rate."""

    def compute():
        lam = 1.0 / 300_000.0
        mu = 1.0 / 4.0
        out = []
        for cfg in (RAID5_8P1, RAID6_8P2, RAID_8P3):
            mk = RAIDTierMarkov(
                cfg.tier_size, cfg.fault_tolerance, lam, mu
            )
            out.append((cfg.label, mk.mttdl() / 8760.0))
        return out

    rows = benchmark(compute)
    text = "\n".join(f"  {label:<5} MTTDL {years:,.0f} years" for label, years in rows)
    print_result("A2: RAID geometry MTTDL (independent failures)", text)
    assert rows[0][1] < rows[1][1] < rows[2][1]


def bench_a3_replacement_time_sweep(benchmark):
    """A3: petascale storage data-loss rate across the 1-12 h range."""

    def sweep():
        rows = []
        for hours in (1.0, 4.0, 12.0):
            params = petascale_parameters().with_disks(
                shape=0.6, afr=0.0876, replacement_hours=hours
            )
            sm = StorageModel(params, base_seed=12)
            exp = replicate_runs(
                sm.simulator,
                8760.0,
                n_replications=4,
                rewards=sm.measures.rewards,
                extra_metrics=sm.measures.extra_metrics,
            )
            rows.append(
                (
                    hours,
                    exp.estimate("storage_availability").mean,
                    exp.estimate("data_loss_events").mean,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "\n".join(
        f"  replace={h:>4}h  availability {a:.5f}  losses/yr {l:.2f}"
        for h, a, l in rows
    )
    print_result("A3: disk replacement-time sweep (worst-case disks)", text)
    # longer replacement window => no fewer data losses
    assert rows[-1][2] >= rows[0][2] - 0.5


def bench_a4_spare_pool_size(benchmark):
    """A4: petascale CFS availability vs standby-spare pool size."""

    def sweep():
        rows = []
        for n in (0, 1, 2, 4):
            params = (
                petascale_parameters().with_spare_oss(n)
                if n
                else petascale_parameters()
            )
            res = ClusterModel(params, base_seed=13).simulate(
                hours=8760.0, n_replications=3
            )
            rows.append((n, res.cfs_availability.mean))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "\n".join(f"  spares={n}  CFS availability {a:.4f}" for n, a in rows)
    print_result("A4: spare-pool size at petascale", text)
    assert rows[1][1] > rows[0][1]  # one spare helps
