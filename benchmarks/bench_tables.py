"""Benchmarks regenerating Tables 1-5 of the paper.

Each benchmark times the full pipeline behind one table (simulation +
log synthesis + analysis) and prints the regenerated rows.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.loggen import generate_abe_logs

from conftest import print_result


@pytest.fixture(scope="module")
def shared_logs():
    """One synthesized ABE log set shared by the table benches."""
    return generate_abe_logs(seed=2013)


def bench_table1_outage_notifications(benchmark, shared_logs):
    """Table 1: outage notifications and SAN availability (0.97-0.98)."""
    result = benchmark.pedantic(
        lambda: run_table1(logs=shared_logs), rounds=3, iterations=1
    )
    print_result("Table 1 (paper: availability 0.97-0.98)", result.format())
    assert 0.96 <= result.availability <= 0.985


def bench_table1_full_pipeline(benchmark):
    """Table 1 including log synthesis (simulation + generation + analysis)."""
    result = benchmark.pedantic(
        lambda: run_table1(seed=2013), rounds=1, iterations=1
    )
    assert result.table.rows


def bench_table2_mount_failures(benchmark, shared_logs):
    """Table 2: mount-failure storm days (counts 2-591)."""
    result = benchmark.pedantic(
        lambda: run_table2(logs=shared_logs), rounds=3, iterations=1
    )
    print_result("Table 2 (paper: 12 storm days, counts 2-591)", result.format())
    assert result.n_storm_days >= 5


def bench_table3_job_statistics(benchmark, shared_logs):
    """Table 3: job kills by class (paper: 44085 / 1234 / 184)."""
    result = benchmark.pedantic(
        lambda: run_table3(logs=shared_logs), rounds=3, iterations=1
    )
    print_result("Table 3 (paper: 44085 jobs, 1234 transient, 184 other)", result.format())
    s = result.statistics
    assert s.failed_transient > 3 * s.failed_other


def bench_table4_disk_survival(benchmark):
    """Table 4: disk failure log + censored Weibull fit (beta ~ 0.7)."""
    result = benchmark.pedantic(lambda: run_table4(), rounds=3, iterations=1)
    print_result("Table 4 (paper: shape 0.696 +- 0.192)", result.format())
    lo, hi = result.fit.shape_confidence_interval()
    assert lo < 0.7 < hi


def bench_table5_parameters(benchmark):
    """Table 5: the model parameter presets against their ranges."""
    result = benchmark.pedantic(lambda: run_table5(), rounds=10, iterations=1)
    print_result("Table 5", result.format())
    assert result.abe.n_disks == 480
