"""Per-disk SAN submodel.

Each disk is a two-state component with the paper's failure law:

* lifetimes follow a Weibull distribution (Table 4's survival analysis:
  shape β ≈ 0.7, i.e. infant mortality — a freshly replaced disk is more
  failure-prone than a seasoned one);
* replacement is a deterministic event (Table 5: 1–12 h);
* a replaced disk starts a **fresh** Weibull lifetime, while disks present
  at time zero draw from the renewal-equilibrium residual-life law (the
  fleet was already in service when the observation window opened);
* a disk failure **propagates** to another disk of the same tier with
  probability *p* — the paper's correlated-failure mechanism ("errors can
  propagate to other connected components"; tiers share a backplane,
  power domain and firmware).  Propagated failures may chain (another
  Bernoulli-*p* coin), which is what makes multi-disk tier losses
  physically possible: with independent failures only, RAID6 with
  parallel hour-scale replacement essentially never loses data.

Shared places (unified upward by the composition tree):

* ``failed_count`` — failed disks in this tier (drives RAID data-loss
  detection);
* ``disk_kill`` — pending propagated-failure token within the tier;
* ``disks_replaced`` — global replacement counter (Figure 3's reward).
"""

from __future__ import annotations

from ..core.distributions import Deterministic, Distribution, EquilibriumResidual, Weibull
from ..core.errors import ModelError
from ..core.gates import Case
from ..core.places import LocalView
from ..core.san import SAN

__all__ = ["build_disk_san"]


def build_disk_san(
    lifetime: Weibull,
    replacement_hours: float,
    propagation_p: float = 0.0,
    equilibrium_start: bool = True,
    name: str = "disk",
) -> SAN:
    """Build the disk template.

    Parameters
    ----------
    lifetime:
        The Weibull lifetime law (fresh disk, age 0).
    replacement_hours:
        Deterministic replacement delay once failed.
    propagation_p:
        Probability that a failure propagates to another disk in the same
        tier (and that a propagated failure chains further).
    equilibrium_start:
        If true (default), the *first* lifetime of each disk is drawn from
        the stationary residual-life distribution; afterwards replacements
        draw fresh Weibull lifetimes.  Disable for "all disks new at t=0"
        studies (e.g. infant-mortality burn-in experiments).
    """
    if not 0.0 <= propagation_p <= 1.0:
        raise ModelError(f"propagation_p must be in [0,1], got {propagation_p}")
    san = SAN(name)
    san.place("up", 1)
    # 0 until the first replacement: selects the equilibrium residual law.
    san.place("fresh", 0 if equilibrium_start else 1)
    san.place("failed_count", 0)
    san.place("disk_kill", 0)
    san.place("disks_replaced", 0)

    equilibrium = EquilibriumResidual(lifetime)

    def fail_distribution(m: LocalView) -> Distribution:
        return lifetime if m["fresh"] == 1 else equilibrium

    def fail_isolated(m: LocalView, rng) -> None:
        m["up"] = 0
        m["failed_count"] += 1

    def fail_propagating(m: LocalView, rng) -> None:
        m["up"] = 0
        m["failed_count"] += 1
        m["disk_kill"] += 1

    p = float(propagation_p)
    # The declared read set covers both the enabling predicate ("up") and
    # the marking-dependent distribution callable ("fresh"), so the
    # compiled engine evaluates the fleet's hottest delay draws — one
    # equilibrium-residual or Weibull lifetime per disk — with read
    # tracking skipped entirely.  The declared case writes compile the
    # propagation coin into a case kernel: the fast loops pick a branch
    # with the same single uniform and apply its slot deltas without
    # entering the Python case functions.
    san.timed(
        "fail",
        fail_distribution,
        enabled=lambda m: m["up"] == 1,
        cases=[
            Case(
                1.0 - p,
                fail_isolated,
                name="isolated",
                writes=[("up", "set", 0), ("failed_count", "add", 1)],
            ),
            Case(
                p,
                fail_propagating,
                name="propagating",
                writes=[
                    ("up", "set", 0),
                    ("failed_count", "add", 1),
                    ("disk_kill", "add", 1),
                ],
            ),
        ],
        reads=["up", "fresh"],
    )

    def absorb_stop(m: LocalView, rng) -> None:
        m["up"] = 0
        m["failed_count"] += 1
        m["disk_kill"] -= 1

    def absorb_chain(m: LocalView, rng) -> None:
        m["up"] = 0
        m["failed_count"] += 1
        # Token stays: the fault chains to yet another disk.

    # A propagated fault strikes some healthy disk of the tier.
    san.instant(
        "absorb_kill",
        enabled=lambda m: m["disk_kill"] > 0 and m["up"] == 1,
        cases=[
            Case(
                1.0 - p,
                absorb_stop,
                name="stop",
                writes=[
                    ("up", "set", 0),
                    ("failed_count", "add", 1),
                    ("disk_kill", "add", -1),
                ],
            ),
            Case(
                p,
                absorb_chain,
                name="chain",
                writes=[("up", "set", 0), ("failed_count", "add", 1)],
            ),
        ],
        priority=8,
    )

    def on_replace(m: LocalView, rng) -> None:
        m["up"] = 1
        m["fresh"] = 1
        m["failed_count"] -= 1
        m["disks_replaced"] += 1

    san.timed(
        "replace",
        Deterministic(replacement_hours),
        enabled=lambda m: m["up"] == 0,
        effect=on_replace,
        writes=[
            ("up", "set", 1),
            ("fresh", "set", 1),
            ("failed_count", "add", -1),
            ("disks_replaced", "add", 1),
        ],
    )
    return san
