"""RAID geometry and repair-policy configuration.

The ABE scratch partition: DDN S2A9550 units, each with 8 fibre-channel
ports, each port feeding 3 tiers, each tier holding (8+2) disks in RAID6 —
480 disks of 250 GB across 2 units for 96 TB usable.  Blue Waters was
expected to use (8+3).  :class:`RAIDConfig` captures the geometry; tier
and DDN builders consume it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.errors import ParameterError

__all__ = ["RAIDConfig", "RAID6_8P2", "RAID_8P3", "RAID5_8P1"]


@dataclass(frozen=True)
class RAIDConfig:
    """Geometry and repair policy of one RAID tier.

    Attributes
    ----------
    data_disks / parity_disks:
        Stripe geometry; the tier tolerates ``parity_disks`` concurrent
        disk failures and loses data on the next one.
    disk_replacement_hours:
        Deterministic time to replace (and re-mirror) a failed disk —
        the paper sweeps 1–12 h (Table 5), default 4 h (Figure 2 labels).
    tier_restore_hours:
        Time to restore a tier after data loss (treated as a hardware-class
        repair: parts and restore from backup, ~24 h).
    rebuild_hours_per_tb:
        Optional capacity-dependent rebuild term: parity is not restored
        until the replacement disk is rebuilt, and rebuild time grows with
        disk capacity.  With the paper's 33 %/yr capacity growth this makes
        petascale vulnerability windows several times longer than ABE's —
        an effect the default (0, rebuild folded into the replacement
        figure) ignores, exposed by the ``bench_a8`` ablation.
    """

    data_disks: int = 8
    parity_disks: int = 2
    disk_replacement_hours: float = 4.0
    tier_restore_hours: float = 24.0
    rebuild_hours_per_tb: float = 0.0

    def __post_init__(self) -> None:
        if self.data_disks < 1:
            raise ParameterError(f"data_disks must be >= 1, got {self.data_disks}")
        if self.parity_disks < 1:
            raise ParameterError(
                f"parity_disks must be >= 1, got {self.parity_disks}"
            )
        if not self.disk_replacement_hours > 0.0:
            raise ParameterError("disk_replacement_hours must be positive")
        if not self.tier_restore_hours > 0.0:
            raise ParameterError("tier_restore_hours must be positive")
        if self.rebuild_hours_per_tb < 0.0:
            raise ParameterError("rebuild_hours_per_tb must be >= 0")

    @property
    def tier_size(self) -> int:
        """Disks per tier (data + parity)."""
        return self.data_disks + self.parity_disks

    @property
    def fault_tolerance(self) -> int:
        """Concurrent disk failures the tier survives."""
        return self.parity_disks

    @property
    def label(self) -> str:
        """Human-readable geometry, e.g. ``8+2``."""
        return f"{self.data_disks}+{self.parity_disks}"

    def with_replacement_hours(self, hours: float) -> "RAIDConfig":
        """Copy with a different disk replacement time (Table 5 sweep)."""
        return replace(self, disk_replacement_hours=hours)

    def with_rebuild_rate(self, hours_per_tb: float) -> "RAIDConfig":
        """Copy with a capacity-dependent rebuild term."""
        return replace(self, rebuild_hours_per_tb=hours_per_tb)

    def vulnerability_hours(self, disk_capacity_tb: float) -> float:
        """Hours a tier runs with reduced parity after one disk failure:
        replacement plus capacity-dependent rebuild."""
        if disk_capacity_tb < 0.0:
            raise ParameterError("disk_capacity_tb must be >= 0")
        return (
            self.disk_replacement_hours
            + self.rebuild_hours_per_tb * disk_capacity_tb
        )


#: The ABE scratch configuration (Figure 2's "8+2" curves).
RAID6_8P2 = RAIDConfig(data_disks=8, parity_disks=2)

#: The planned Blue Waters configuration (Figure 2's "8+3" comparison).
RAID_8P3 = RAIDConfig(data_disks=8, parity_disks=3)

#: Single-parity baseline (not deployed on ABE; used in ablations).
RAID5_8P1 = RAIDConfig(data_disks=8, parity_disks=1)
