"""Fail-over pair submodel (RAID controllers, OSS servers).

"Most of the hardware is replicated with fail-over mechanisms.  Failure of
both members of the fail-over pair causes the unavailability of the CFS
system."  (Section 4.3.)  The same structure covers the DDN RAID
controllers and the Dell OSS fail-over pairs, so the builder is generic:

* each of the two members fails independently (exponential, the paper's
  1–2 per 720 h class) and repairs with its own crew (12–36 h for
  hardware);
* a member failure **propagates** to its partner with probability *p* —
  the paper's correlated-failure mechanism ("there is small probability p
  that errors can propagate to other connected components");
* the pair is *down* while both members are down; down pairs are counted
  in a shared place so system-level rewards read one slot.

The model matches
:func:`repro.markov.repairable.failover_pair_unavailability` exactly when
the repair law is exponential (validated in the test-suite).
"""

from __future__ import annotations

from ..core.composition import Node, join, replicate
from ..core.distributions import Distribution, Exponential
from ..core.gates import Case
from ..core.places import LocalView
from ..core.san import SAN

__all__ = ["build_failover_member_san", "build_pair_control_san", "build_failover_pair_node"]


def build_failover_member_san(
    failure: Distribution,
    repair: Distribution,
    propagation_probability: float,
    name: str = "member",
) -> SAN:
    """One member of a fail-over pair.

    Shared places: ``down_count`` (members of this pair currently down)
    and ``kill`` (the propagation token set when a fault propagates to the
    partner).
    """
    san = SAN(name)
    san.place("up", 1)
    san.place("down_count", 0)
    san.place("kill", 0)

    def fail_isolated(m: LocalView, rng) -> None:
        m["up"] = 0
        m["down_count"] += 1

    def fail_propagating(m: LocalView, rng) -> None:
        m["up"] = 0
        m["down_count"] += 1
        m["kill"] = 1

    p = float(propagation_probability)
    # Declared case writes compile the propagation coin into a case
    # kernel (one uniform, precomputed slot deltas per branch).
    san.timed(
        "fail",
        failure,
        enabled=lambda m: m["up"] == 1,
        cases=[
            Case(
                1.0 - p,
                fail_isolated,
                name="isolated",
                writes=[("up", "set", 0), ("down_count", "add", 1)],
            ),
            Case(
                p,
                fail_propagating,
                name="propagating",
                writes=[
                    ("up", "set", 0),
                    ("down_count", "add", 1),
                    ("kill", "set", 1),
                ],
            ),
        ],
    )

    def killed(m: LocalView, rng) -> None:
        m["up"] = 0
        m["down_count"] += 1
        m["kill"] = 0

    # The partner absorbs a propagated fault instantly.
    san.instant(
        "absorb_kill",
        enabled=lambda m: m["kill"] == 1 and m["up"] == 1,
        effect=killed,
        writes=[("up", "set", 0), ("down_count", "add", 1), ("kill", "set", 0)],
        priority=10,
    )

    def repaired(m: LocalView, rng) -> None:
        m["up"] = 1
        m["down_count"] -= 1

    san.timed(
        "repair",
        repair,
        enabled=lambda m: m["up"] == 0,
        effect=repaired,
        writes=[("up", "set", 1), ("down_count", "add", -1)],
    )
    return san


def build_pair_control_san(name: str = "pairctl") -> SAN:
    """Pair-level bookkeeping: outage detection and kill-token hygiene.

    Shares ``down_count``/``kill`` with the members and exports
    ``pair_down`` plus the fleet counters ``pairs_down`` (current outages)
    and ``pair_outages_total`` (cumulative count).
    """
    san = SAN(name)
    san.place("down_count", 0)
    san.place("kill", 0)
    san.place("pair_down", 0)
    san.place("pairs_down", 0)
    san.place("pair_outages_total", 0)

    def pair_fails(m: LocalView, rng) -> None:
        m["pair_down"] = 1
        m["pairs_down"] += 1
        m["pair_outages_total"] += 1

    def pair_restores(m: LocalView, rng) -> None:
        m["pair_down"] = 0
        m["pairs_down"] -= 1

    san.instant(
        "pair_fail",
        enabled=lambda m: m["down_count"] >= 2 and m["pair_down"] == 0,
        effect=pair_fails,
        writes=[
            ("pair_down", "set", 1),
            ("pairs_down", "add", 1),
            ("pair_outages_total", "add", 1),
        ],
        priority=5,
    )
    san.instant(
        "pair_restore",
        enabled=lambda m: m["down_count"] < 2 and m["pair_down"] == 1,
        effect=pair_restores,
        writes=[("pair_down", "set", 0), ("pairs_down", "add", -1)],
        priority=5,
    )
    # A propagated fault that finds the partner already down is a no-op;
    # drop the token so it does not linger.
    san.instant(
        "clear_kill",
        enabled=lambda m: m["kill"] == 1 and m["down_count"] >= 2,
        effect=lambda m, rng: m.__setitem__("kill", 0),
        writes=[("kill", "set", 0)],
        priority=1,
    )
    return san


def build_failover_pair_node(
    failure: Distribution,
    repair: Distribution,
    propagation_probability: float = 0.0,
    name: str = "pair",
    member_name: str = "member",
) -> Node:
    """A complete fail-over pair.

    Exported shared places: ``pair_down`` (this pair), ``pairs_down`` and
    ``pair_outages_total`` (fleet counters to unify across pairs).
    """
    if not 0.0 <= propagation_probability <= 1.0:
        from ..core.errors import ModelError

        raise ModelError(
            f"propagation probability must be in [0,1], got {propagation_probability}"
        )
    member = build_failover_member_san(
        failure, repair, propagation_probability, name=member_name
    )
    members = replicate("members", member, 2, shared=["down_count", "kill"])
    control = build_pair_control_san()
    return join(
        name,
        members,
        control,
        shared=["down_count", "kill", "pairs_down", "pair_outages_total"],
        exports=["pair_down"],
    )
