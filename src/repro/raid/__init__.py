"""Disk / RAID-tier / controller / DDN-unit SAN submodels."""

from .config import RAID5_8P1, RAID6_8P2, RAID_8P3, RAIDConfig
from .controller import (
    build_failover_member_san,
    build_failover_pair_node,
    build_pair_control_san,
)
from .ddn import DDNUnitSpec, build_ddn_fleet_node, build_ddn_unit_node
from .disk import build_disk_san
from .tier import build_tier_control_san, build_tier_node

__all__ = [
    "RAIDConfig",
    "RAID6_8P2",
    "RAID_8P3",
    "RAID5_8P1",
    "build_disk_san",
    "build_tier_control_san",
    "build_tier_node",
    "build_failover_member_san",
    "build_pair_control_san",
    "build_failover_pair_node",
    "DDNUnitSpec",
    "build_ddn_unit_node",
    "build_ddn_fleet_node",
]
