"""DDN storage-unit submodel (the paper's ``DDN_UNITS``).

One DDN S2A9550 unit = a RAID-controller fail-over pair plus a set of
RAID tiers (ABE: 24 tiers of (8+2) per unit).  The unit's storage is
unavailable while its controller pair is down or any of its tiers has
lost data; fleet-level rewards aggregate the shared counters
``tiers_down``, ``ctrl_pairs_down``, ``disks_replaced`` and
``data_loss_total``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.composition import Node, join, replicate
from ..core.distributions import Distribution, Exponential, Uniform, Weibull
from .config import RAIDConfig
from .controller import build_failover_pair_node
from .tier import build_tier_node

__all__ = ["DDNUnitSpec", "build_ddn_unit_node", "build_ddn_fleet_node"]


@dataclass(frozen=True)
class DDNUnitSpec:
    """Parameters of one DDN unit.

    Attributes
    ----------
    raid:
        Tier geometry and repair policy.
    tiers_per_unit:
        RAID tiers in the unit (ABE S2A9550: 8 ports × 3 tiers = 24).
    disk_lifetime:
        Weibull lifetime law of a fresh disk.
    controller_failure / controller_repair:
        Failure and repair laws of each RAID-controller pair member
        (paper: 1–2 per 720 h; 12–36 h to procure and replace).
    controller_propagation:
        Probability that a controller fault propagates to its partner.
    equilibrium_start:
        Start disks in renewal equilibrium (in-service fleet).
    """

    raid: RAIDConfig
    tiers_per_unit: int
    disk_lifetime: Weibull
    controller_failure: Distribution
    controller_repair: Distribution
    controller_propagation: float = 0.0
    disk_propagation_p: float = 0.0
    disk_capacity_tb: float = 0.0
    equilibrium_start: bool = True

    def __post_init__(self) -> None:
        from ..core.errors import ParameterError

        if self.tiers_per_unit < 1:
            raise ParameterError(
                f"tiers_per_unit must be >= 1, got {self.tiers_per_unit}"
            )

    @property
    def disks_per_unit(self) -> int:
        """Total disks in the unit."""
        return self.tiers_per_unit * self.raid.tier_size


def build_ddn_unit_node(spec: DDNUnitSpec, name: str = "ddn") -> Node:
    """One DDN unit: controller pair + replicated tiers.

    Exported shared places: ``tiers_down``, ``data_loss_total``,
    ``disks_replaced``, ``ctrl_pairs_down``, ``ctrl_pair_outages_total``.
    """
    tier = build_tier_node(
        spec.raid,
        spec.disk_lifetime,
        propagation_p=spec.disk_propagation_p,
        equilibrium_start=spec.equilibrium_start,
        disk_capacity_tb=spec.disk_capacity_tb,
    )
    tiers = replicate(
        "tiers",
        tier,
        spec.tiers_per_unit,
        shared=["tiers_down", "data_loss_total", "disks_replaced"],
    )
    controllers = build_failover_pair_node(
        spec.controller_failure,
        spec.controller_repair,
        spec.controller_propagation,
        name="ctrl",
        member_name="controller",
    )
    # Controller counters get unit-agnostic names so fleets can unify them.
    return join(
        name,
        tiers,
        _rename_pair_counters(controllers),
        shared=[
            "tiers_down",
            "data_loss_total",
            "disks_replaced",
            "ctrl_pairs_down",
            "ctrl_pair_outages_total",
        ],
    )


class _CounterRename(Node):
    """Re-exports a child's places under different names.

    The fail-over pair builder exports generic ``pairs_down`` /
    ``pair_outages_total`` counters; inside a DDN unit these must not
    unify with the OSS pairs' counters, so they are re-exported as
    ``ctrl_pairs_down`` / ``ctrl_pair_outages_total``.
    """

    def __init__(self, child: Node, renames: dict[str, str]) -> None:
        self.child = child
        self.name = child.name
        self.renames = dict(renames)

    def _flatten_into(self, ctx, prefix: str) -> dict[str, int]:
        exports = self.child._flatten_into(ctx, prefix)
        out = dict(exports)
        for old, new in self.renames.items():
            if old not in exports:
                from ..core.errors import CompositionError

                raise CompositionError(
                    f"rename source {old!r} not exported by {self.child.name!r}"
                )
            out[new] = out.pop(old)
        return out


def _rename_pair_counters(pair: Node) -> Node:
    return _CounterRename(
        pair,
        {
            "pairs_down": "ctrl_pairs_down",
            "pair_outages_total": "ctrl_pair_outages_total",
        },
    )


def build_ddn_fleet_node(
    spec: DDNUnitSpec, n_units: int, name: str = "ddn_units"
) -> Node:
    """The paper's ``DDN_UNITS``: ``n_units`` replicated DDN units.

    ABE: 2 units; the petascale design point: up to 20 (Table 5).
    Exported shared places aggregate across the whole fleet.
    """
    unit = build_ddn_unit_node(spec)
    return replicate(
        name,
        unit,
        n_units,
        shared=[
            "tiers_down",
            "data_loss_total",
            "disks_replaced",
            "ctrl_pairs_down",
            "ctrl_pair_outages_total",
        ],
    )
