"""RAID tier submodel: replicated disks plus data-loss logic.

A tier of ``n`` disks tolerates ``f`` concurrent failures; the (f+1)-th
concurrent failure is a data-loss event.  The tier then undergoes a
restore (hardware-class repair + restripe) before serving again.  The
tier-down condition is tracked in a shared counter ``tiers_down`` so the
storage-availability reward can read a single place regardless of fleet
size.
"""

from __future__ import annotations

from ..core.composition import Node, join, replicate
from ..core.distributions import Deterministic, Weibull
from ..core.places import LocalView
from ..core.san import SAN
from .config import RAIDConfig
from .disk import build_disk_san

__all__ = ["build_tier_control_san", "build_tier_node"]


def build_tier_control_san(config: RAIDConfig, name: str = "tierctl") -> SAN:
    """Data-loss detection and restore logic for one tier.

    Shares ``failed_count`` / ``disk_kill`` with the tier's disks and
    exports ``tiers_down`` / ``data_loss_total`` for fleet-level
    aggregation.
    """
    san = SAN(name)
    san.place("failed_count", 0)
    san.place("disk_kill", 0)
    san.place("tier_down", 0)
    san.place("tiers_down", 0)
    san.place("data_loss_total", 0)
    threshold = config.fault_tolerance + 1

    def on_data_loss(m: LocalView, rng) -> None:
        m["tier_down"] = 1
        m["tiers_down"] += 1
        m["data_loss_total"] += 1

    def on_restore(m: LocalView, rng) -> None:
        # If replacements have not caught up, the tier stays down and the
        # restore activity re-fires (it remains enabled).  The conditional
        # is declared below as a guarded write (writes= + when=), so the
        # compiled engine evaluates the guard and applies the slot deltas
        # without calling this function.
        if m["failed_count"] <= config.fault_tolerance:
            m["tier_down"] = 0
            m["tiers_down"] -= 1

    san.instant(
        "data_loss",
        enabled=lambda m: m["failed_count"] >= threshold and m["tier_down"] == 0,
        effect=on_data_loss,
        writes=[
            ("tier_down", "set", 1),
            ("tiers_down", "add", 1),
            ("data_loss_total", "add", 1),
        ],
        priority=5,
    )
    san.timed(
        "restore",
        Deterministic(config.tier_restore_hours),
        enabled=lambda m: m["tier_down"] == 1,
        effect=on_restore,
        writes=[("tier_down", "set", 0), ("tiers_down", "add", -1)],
        when=("failed_count", "<=", config.fault_tolerance),
    )
    # A propagation token with no healthy disk left to strike evaporates
    # (otherwise it would linger and kill a disk replaced hours later).
    san.instant(
        "void_kill",
        enabled=lambda m: m["disk_kill"] > 0 and m["failed_count"] >= config.tier_size,
        effect=lambda m, rng: m.__setitem__("disk_kill", 0),
        writes=[("disk_kill", "set", 0)],
        priority=1,
    )
    return san


def build_tier_node(
    config: RAIDConfig,
    lifetime: Weibull,
    propagation_p: float = 0.0,
    equilibrium_start: bool = True,
    disk_capacity_tb: float = 0.0,
    name: str = "tier",
) -> Node:
    """One RAID tier: ``tier_size`` disk replicas joined with the control SAN.

    ``disk_capacity_tb`` feeds the optional capacity-dependent rebuild
    term (see :class:`RAIDConfig`): a failed disk counts against the
    tier's parity until replaced *and* rebuilt.

    Exported shared places: ``disks_replaced``, ``tiers_down``,
    ``data_loss_total`` (for fleet-level sharing).
    """
    disk = build_disk_san(
        lifetime,
        config.vulnerability_hours(disk_capacity_tb),
        propagation_p=propagation_p,
        equilibrium_start=equilibrium_start,
    )
    disks = replicate(
        "disks",
        disk,
        config.tier_size,
        shared=["failed_count", "disk_kill", "disks_replaced"],
    )
    control = build_tier_control_san(config)
    return join(
        name,
        disks,
        control,
        shared=[
            "failed_count",
            "disk_kill",
            "disks_replaced",
            "tiers_down",
            "data_loss_total",
        ],
    )
