"""Figure 3 — average disks replaced per week to sustain availability.

"We compute the expected number of disks that need to be replaced per
week for the RAID6 tiers ... The configuration (0.7, 2.92, 8+2, 4)
corresponds to the ABE cluster with 0 to 2 disk replacements per week."
The x-axis is the number of disks (480 → 4800); each curve is an AFR at
Weibull shape 0.7.

Expected shape: replacement burden grows linearly in both fleet size and
AFR (the renewal-reward rate is ``n_disks / MTBF``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfs.cluster import StorageModel
from ..cfs.parameters import CFSParameters, abe_parameters
from ..cfs.scaling import scale_step
from ..raid.config import RAID6_8P2
from .runner import FigureResult, Series, SeriesPoint
from .sweep import SweepCell, SweepResult, replication_cell, run_sweep

__all__ = [
    "DEFAULT_AFRS",
    "figure3_cells",
    "run_figure3",
    "expected_replacements_per_week",
]

#: The paper's curves: AFR 8.76 / 4.38 / 2.92 / 0.88 % at β = 0.7.
DEFAULT_AFRS: tuple[float, ...] = (0.0876, 0.0438, 0.0292, 0.0088)


def expected_replacements_per_week(n_disks: int, afr: float) -> float:
    """Renewal-theory prediction: ``n · AFR / 52.14`` replacements/week.

    In steady state each slot fails once per MTBF on average regardless of
    the lifetime law's shape (elementary renewal theorem), so the analytic
    line is shape-independent; the simulation should match it.
    """
    weeks_per_year = 8760.0 / 168.0
    return n_disks * afr / weeks_per_year


def _figure3_params(
    afr: float, k: int, n_steps: int, shape: float, base: CFSParameters
) -> CFSParameters:
    return scale_step(k, n_steps, base).with_disks(
        shape=shape, afr=afr, raid=RAID6_8P2, replacement_hours=4.0
    )


def figure3_cells(
    afrs: tuple[float, ...] = DEFAULT_AFRS,
    n_steps: int = 10,
    n_replications: int = 6,
    hours: float = 8760.0,
    base_seed: int = 3,
    shape: float = 0.7,
    base: CFSParameters | None = None,
) -> list[SweepCell]:
    """The Figure 3 grid: one cell per (AFR, scale-step)."""
    base = base if base is not None else abe_parameters()
    cells: list[SweepCell] = []
    for ci, afr in enumerate(afrs):
        for k in range(1, n_steps + 1):
            params = _figure3_params(afr, k, n_steps, shape, base)
            cells.append(
                replication_cell(
                    ("figure3", ci, k),
                    StorageModel.spec(params, base_seed + 1000 * ci + k),
                    hours,
                    n_replications,
                )
            )
    return cells


def _assemble_figure3(
    results: SweepResult,
    afrs: tuple[float, ...],
    n_steps: int,
    shape: float,
    base: CFSParameters,
) -> FigureResult:
    series: list[Series] = []
    for ci, afr in enumerate(afrs):
        points: list[SeriesPoint] = []
        for k in range(1, n_steps + 1):
            params = _figure3_params(afr, k, n_steps, shape, base)
            exp = results[("figure3", ci, k)]
            points.append(
                SeriesPoint(
                    float(params.n_disks), exp.estimate("disks_replaced_per_week")
                )
            )
        label = f"{shape:g},{100 * afr:.2f},8+2,4"
        series.append(Series(label, tuple(points)))
    return FigureResult(
        figure_id="Figure 3",
        title="Average number of disks that need to be replaced per week "
        "to sustain availability",
        x_label="number of disks",
        y_label="disk replacements per week",
        series=tuple(series),
    )


def run_figure3(
    afrs: tuple[float, ...] = DEFAULT_AFRS,
    n_steps: int = 10,
    n_replications: int = 6,
    hours: float = 8760.0,
    base_seed: int = 3,
    shape: float = 0.7,
    base: CFSParameters | None = None,
    n_jobs: int | None = 1,
) -> FigureResult:
    """Regenerate Figure 3 (disk replacements per week vs fleet size).

    ``n_jobs`` schedules the grid's independent (AFR, scale-step) cells
    across worker processes
    (:func:`repro.experiments.sweep.run_sweep`); cells are seeded from
    their grid coordinates, so results are bit-identical for any value.
    """
    base = base if base is not None else abe_parameters()
    cells = figure3_cells(afrs, n_steps, n_replications, hours, base_seed, shape, base)
    return _assemble_figure3(run_sweep(cells, n_jobs=n_jobs), afrs, n_steps, shape, base)
