"""Table 2 — Lustre mount-failure notifications by compute nodes.

The paper aggregates, per day, how many compute nodes reported Lustre
mount failures between 07/01/2007 and 10/02/2007 (counts ranging from 2
to 591 — a mix of node-local hiccups, leaf-switch transients, and
spine-level storms).  This regenerator replays that aggregation on the
synthesized compute-log.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime

from ..analysis.filtering import mount_failures_by_day
from ..cfs.parameters import CFSParameters
from ..loggen.abe import AbeLogs, cached_abe_logs
from .runner import TableResult
from .sweep import SweepCell

__all__ = ["Table2Result", "table2_cell", "run_table2"]

#: The paper's Table 2 window.
WINDOW_START = datetime(2007, 7, 1)
WINDOW_END = datetime(2007, 10, 2)


@dataclass(frozen=True)
class Table2Result:
    """Regenerated Table 2."""

    table: TableResult
    counts_by_day: dict[date, int]

    @property
    def max_count(self) -> int:
        """Largest single-day node count (the paper's peak is 591)."""
        return max(self.counts_by_day.values(), default=0)

    @property
    def n_storm_days(self) -> int:
        """Days with at least one mount-failure report."""
        return len(self.counts_by_day)

    def format(self) -> str:
        """Render the per-day table."""
        return self.table.format()


def table2_cell(params: CFSParameters | None = None, seed: int = 2013) -> SweepCell:
    """Table 2 as a sweep cell (log synthesis + mount-failure counts)."""
    return SweepCell("table2", run_table2, (params, seed))


def run_table2(
    params: CFSParameters | None = None,
    seed: int = 2013,
    logs: AbeLogs | None = None,
) -> Table2Result:
    """Regenerate Table 2 from the synthesized compute-log."""
    if logs is None:
        logs = cached_abe_logs(seed, params)
    window = logs.compute_log.between(WINDOW_START, WINDOW_END)
    counts = mount_failures_by_day(window)
    rows = tuple(
        (day.strftime("%m/%d/%y"), str(count)) for day, count in sorted(counts.items())
    )
    table = TableResult(
        "Table 2",
        "Lustre mount failure notification by compute nodes "
        "(07/01/07 to 10/02/07; nodes per day)",
        ("Date", "Nodes"),
        rows,
        notes=(
            "small counts: node-local mount hiccups; mid counts: leaf-switch "
            "transients; large counts: spine-level storms",
        ),
    )
    return Table2Result(table=table, counts_by_day=counts)
