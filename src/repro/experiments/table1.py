"""Table 1 — Lustre-FS outage notifications and SAN availability.

The paper's Table 1 lists user notifications of Lustre-FS outages (cause,
start, end, hours) and estimates ABE's SAN availability "between 0.97 and
0.98 depending on the dates".  This regenerator synthesizes the SAN-log
from the calibrated model, pairs the notifications into outage windows,
tabulates them, and reports the endpoint-sensitive availability range.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.availability import (
    availability_from_outages,
    availability_range,
    downtime_table,
)
from ..analysis.filtering import Outage, pair_outages
from ..cfs.parameters import CFSParameters
from ..loggen.abe import AbeLogs, cached_abe_logs
from .runner import TableResult
from .sweep import SweepCell

__all__ = ["Table1Result", "table1_cell", "run_table1"]


@dataclass(frozen=True)
class Table1Result:
    """Regenerated Table 1 plus the availability estimates."""

    table: TableResult
    outages: tuple[Outage, ...]
    availability: float
    availability_low: float
    availability_high: float
    ground_truth_availability: float

    def format(self) -> str:
        """Render the table and the availability summary."""
        return (
            self.table.format()
            + f"\nSAN availability over the window: {self.availability:.4f}"
            + f"\n(range over endpoint choices: {self.availability_low:.4f}"
            + f" .. {self.availability_high:.4f};"
            + f" simulation ground truth {self.ground_truth_availability:.4f})"
        )


def table1_cell(params: CFSParameters | None = None, seed: int = 2013) -> SweepCell:
    """Table 1 as a sweep cell (log synthesis + outage analysis)."""
    return SweepCell("table1", run_table1, (params, seed))


def run_table1(
    params: CFSParameters | None = None,
    seed: int = 2013,
    logs: AbeLogs | None = None,
) -> Table1Result:
    """Regenerate Table 1 from a synthesized SAN-log.

    With default parameters the synthesized log set is shared with the
    other table regenerators through a per-process cache, so a grid of
    table cells pays for log synthesis once per process.
    """
    if logs is None:
        logs = cached_abe_logs(seed, params)
    w = logs.windows
    outage_log = logs.san_log.component("san", "batch")
    outages = pair_outages(outage_log, window_end=w.san_end)
    rows = tuple(
        (
            r.cause,
            r.start.strftime("%m/%d/%y %H:%M"),
            r.end.strftime("%m/%d/%y %H:%M"),
            f"{r.hours:.2f}",
        )
        for r in downtime_table(outages)
    )
    table = TableResult(
        "Table 1",
        "User notification of outage of the Lustre-FS",
        ("Cause of Failure", "Start time", "End time", "Hours"),
        rows,
    )
    availability = availability_from_outages(outages, w.epoch, w.san_end)
    lo, hi = availability_range(outages, w.epoch, w.san_end, step_days=30)
    return Table1Result(
        table=table,
        outages=tuple(outages),
        availability=availability,
        availability_low=lo,
        availability_high=hi,
        ground_truth_availability=logs.ground_truth.cfs_availability,
    )
