"""Regenerators for every table and figure in the paper's evaluation.

Each ``run_*`` function returns a structured result whose ``format()``
method prints the paper's rows/series; ``run_all`` executes everything
(at reduced fidelity unless ``full=True``) and returns the formatted
report.
"""

from __future__ import annotations

from .figure2 import DEFAULT_CONFIGS, Figure2Config, run_figure2
from .figure3 import DEFAULT_AFRS, expected_replacements_per_week, run_figure3
from .figure4 import run_figure4
from .runner import FigureResult, Series, SeriesPoint, TableResult
from .table1 import Table1Result, run_table1
from .table2 import Table2Result, run_table2
from .table3 import Table3Result, run_table3
from .table4 import Table4Result, run_table4
from .table5 import Table5Result, run_table5

__all__ = [
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_all",
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "Table4Result",
    "Table5Result",
    "Figure2Config",
    "DEFAULT_CONFIGS",
    "DEFAULT_AFRS",
    "expected_replacements_per_week",
    "TableResult",
    "FigureResult",
    "Series",
    "SeriesPoint",
]


def run_all(
    full: bool = False, seed: int = 2013, n_jobs: int | None = 1
) -> str:
    """Regenerate every table and figure; returns the formatted report.

    ``full=False`` (default) runs reduced sweeps suitable for a laptop
    minute; ``full=True`` uses the paper-fidelity settings (several
    minutes).  ``n_jobs`` parallelizes the simulation sweeps across
    processes without changing any number (-1 = all cores).
    """
    from ..loggen.abe import generate_abe_logs

    logs = generate_abe_logs(seed=seed)
    sections = [
        run_table1(logs=logs).format(),
        run_table2(logs=logs).format(),
        run_table3(logs=logs).format(),
        run_table4(seed=seed).format(),
        run_table5().format(),
    ]
    if full:
        fig_kwargs: dict = {"n_jobs": n_jobs}
        fig4_kwargs: dict = {"n_jobs": n_jobs}
    else:
        fig_kwargs = {
            "n_steps": 4,
            "n_replications": 3,
            "hours": 4380.0,
            "n_jobs": n_jobs,
        }
        fig4_kwargs = {
            "n_steps": 3,
            "n_replications": 3,
            "hours": 4380.0,
            "n_jobs": n_jobs,
        }
    sections.append(run_figure2(**fig_kwargs).format())
    sections.append(run_figure3(**fig_kwargs).format())
    sections.append(run_figure4(**fig4_kwargs).format())
    return "\n\n".join(sections)
