"""Regenerators for every table and figure in the paper's evaluation.

Each ``run_*`` function returns a structured result whose ``format()``
method prints the paper's rows/series.  Every regenerator is expressed
as a grid of independent *sweep cells* (:mod:`repro.experiments.sweep`):
``run_figureN``/``run_tableN`` schedule their own grid, while
:func:`run_all` flattens all of them — five tables plus every
(configuration, scale-step) figure point — into one grid and schedules
it across a single worker pool (``n_jobs``), then assembles the
formatted report.  Cells are seeded from their grid coordinates, so the
report is bit-identical for every ``n_jobs`` value.
"""

from __future__ import annotations

from .figure2 import DEFAULT_CONFIGS, Figure2Config, _assemble_figure2, figure2_cells, run_figure2
from .figure3 import (
    DEFAULT_AFRS,
    _assemble_figure3,
    expected_replacements_per_week,
    figure3_cells,
    run_figure3,
)
from .figure4 import _assemble_figure4, figure4_cells, run_figure4
from .runner import (
    FigureResult,
    Series,
    SeriesPoint,
    TableResult,
    format_cell_failures,
)
from .rare import (
    LevelFunction,
    RareEventEstimate,
    SplittingPolicy,
    aggregate_tier_san,
    brute_force_probability,
    splitting_probability,
    suggested_splits,
    tier_level,
    tier_replication_spec,
    tier_splitting_policy,
)
from .sweep import SweepCell, SweepResult, cell_digest, replication_cell, run_sweep
from .table1 import Table1Result, run_table1, table1_cell
from .table2 import Table2Result, run_table2, table2_cell
from .table3 import Table3Result, run_table3, table3_cell
from .table4 import Table4Result, run_table4, table4_cell
from .table5 import Table5Result, run_table5, table5_cell

__all__ = [
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_all",
    "run_sweep",
    "SweepCell",
    "SweepResult",
    "cell_digest",
    "format_cell_failures",
    "replication_cell",
    "figure2_cells",
    "figure3_cells",
    "figure4_cells",
    "table1_cell",
    "table2_cell",
    "table3_cell",
    "table4_cell",
    "table5_cell",
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "Table4Result",
    "Table5Result",
    "Figure2Config",
    "DEFAULT_CONFIGS",
    "DEFAULT_AFRS",
    "expected_replacements_per_week",
    "TableResult",
    "FigureResult",
    "Series",
    "SeriesPoint",
    "LevelFunction",
    "SplittingPolicy",
    "RareEventEstimate",
    "splitting_probability",
    "brute_force_probability",
    "aggregate_tier_san",
    "tier_level",
    "tier_splitting_policy",
    "tier_replication_spec",
    "suggested_splits",
]


def run_all(
    full: bool = False,
    seed: int = 2013,
    n_jobs: int | None = 1,
    checkpoint_dir: str | None = None,
) -> str:
    """Regenerate every table and figure; returns the formatted report.

    ``full=False`` (default) runs reduced sweeps suitable for a laptop
    minute; ``full=True`` uses the paper-fidelity settings (several
    minutes).  All cells — tables and every figure sweep point — form
    one grid scheduled across ``n_jobs`` worker processes (-1 = all
    cores) without changing any number.  ``checkpoint_dir`` journals
    each completed cell so a killed run resumes where it stopped
    (``python -m repro all --checkpoint-dir DIR``, rerun with
    ``--resume DIR``); the resumed report is bit-identical to an
    uninterrupted one.
    """
    from ..cfs.parameters import abe_parameters
    from ..loggen.abe import warm_logs_cache_for_pool

    # Pinned explicitly (not via the figure modules' defaults) so the
    # cells() builders and the _assemble_* calls below can never disagree
    # on the grid shape.
    n_steps = 10 if full else 4
    n_steps4 = 6 if full else 3
    n_reps = {} if full else {"n_replications": 3, "hours": 4380.0}
    shape = 0.7
    include_spare = True

    base = abe_parameters()
    cells = [
        table1_cell(seed=seed),
        table2_cell(seed=seed),
        table3_cell(seed=seed),
        table4_cell(seed=seed),
        table5_cell(),
    ]
    cells += figure2_cells(base=base, n_steps=n_steps, **n_reps)
    cells += figure3_cells(base=base, n_steps=n_steps, shape=shape, **n_reps)
    cells += figure4_cells(
        base=base, n_steps=n_steps4, include_spare=include_spare, **n_reps
    )

    warm_logs_cache_for_pool(seed, n_jobs)
    results = run_sweep(cells, n_jobs=n_jobs, checkpoint_dir=checkpoint_dir)

    fig2 = _assemble_figure2(results, DEFAULT_CONFIGS, n_steps, base)
    fig3 = _assemble_figure3(results, DEFAULT_AFRS, n_steps, shape, base)
    fig4 = _assemble_figure4(results, n_steps4, base, include_spare)
    sections = [
        results["table1"].format(),
        results["table2"].format(),
        results["table3"].format(),
        results["table4"].format(),
        results["table5"].format(),
        fig2.format(),
        fig3.format(),
        fig4.format(),
    ]
    return "\n\n".join(sections)
