"""Figure 2 — availability of storage with respect to disk failures.

"To evaluate the baseline effect of failures of disks on availability of
the CFS, we evaluate the DDN_UNITS models ... in isolation from failures
of other components of the SAN."  The x-axis scales the file system from
ABE's 96 TB to the 12 PB of a petascale machine; each curve is a tuple
(Weibull shape β, AFR %, RAID configuration, disk replacement hours).

Expected shape (what the tests assert):

* all configurations sit at ≈ 100 % availability at ABE scale;
* degradation grows with scale, with lower β / higher AFR worse;
* (8+3) dominates (8+2) at equal failure parameters;
* the fitted ABE configuration (0.7, 2.92 %, 8+2, 4 h) stays ≈ 1 even at
  petascale.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfs.cluster import StorageModel
from ..cfs.parameters import CFSParameters, abe_parameters
from ..cfs.scaling import scale_step
from ..raid.config import RAID6_8P2, RAID_8P3, RAIDConfig
from .runner import FigureResult, Series, SeriesPoint
from .sweep import SweepCell, SweepResult, replication_cell, run_sweep

__all__ = ["Figure2Config", "DEFAULT_CONFIGS", "figure2_cells", "run_figure2"]


@dataclass(frozen=True)
class Figure2Config:
    """One Figure 2 curve: (β, AFR, RAID geometry, replacement hours)."""

    shape: float
    afr: float
    raid: RAIDConfig
    replace_hours: float

    @property
    def label(self) -> str:
        """The paper's tuple label, e.g. ``0.7,2.92,8+2,4``."""
        return (
            f"{self.shape:g},{100 * self.afr:.2f},{self.raid.label},"
            f"{self.replace_hours:g}"
        )

    def apply(self, params: CFSParameters) -> CFSParameters:
        """Build the parameter set for this curve at a given scale."""
        return params.with_disks(
            shape=self.shape,
            afr=self.afr,
            raid=self.raid,
            replacement_hours=self.replace_hours,
        )


#: The paper's labelled curves plus the (8+3) comparisons it discusses.
DEFAULT_CONFIGS: tuple[Figure2Config, ...] = (
    Figure2Config(0.6, 0.0876, RAID6_8P2, 4.0),
    Figure2Config(0.6, 0.0438, RAID6_8P2, 4.0),
    Figure2Config(0.7, 0.0292, RAID6_8P2, 4.0),
    Figure2Config(0.6, 0.0876, RAID_8P3, 4.0),
    Figure2Config(0.7, 0.0292, RAID_8P3, 4.0),
)


def figure2_cells(
    configs: tuple[Figure2Config, ...] = DEFAULT_CONFIGS,
    n_steps: int = 10,
    n_replications: int = 8,
    hours: float = 8760.0,
    base_seed: int = 96,
    base: CFSParameters | None = None,
) -> list[SweepCell]:
    """The Figure 2 grid: one cell per (configuration, scale-step)."""
    base = base if base is not None else abe_parameters()
    cells: list[SweepCell] = []
    for ci, config in enumerate(configs):
        for k in range(1, n_steps + 1):
            params = config.apply(scale_step(k, n_steps, base))
            cells.append(
                replication_cell(
                    ("figure2", ci, k),
                    StorageModel.spec(params, base_seed + 1000 * ci + k),
                    hours,
                    n_replications,
                )
            )
    return cells


def _assemble_figure2(
    results: SweepResult,
    configs: tuple[Figure2Config, ...],
    n_steps: int,
    base: CFSParameters,
) -> FigureResult:
    series: list[Series] = []
    for ci, config in enumerate(configs):
        points: list[SeriesPoint] = []
        for k in range(1, n_steps + 1):
            params = config.apply(scale_step(k, n_steps, base))
            exp = results[("figure2", ci, k)]
            points.append(
                SeriesPoint(params.raw_storage_tb, exp.estimate("storage_availability"))
            )
        series.append(Series(config.label, tuple(points)))
    return FigureResult(
        figure_id="Figure 2",
        title="Availability of storage with respect to disk failures "
        "(label = Weibull shape, AFR %, RAID config, replacement hours)",
        x_label="storage (TB)",
        y_label="storage availability",
        series=tuple(series),
    )


def run_figure2(
    configs: tuple[Figure2Config, ...] = DEFAULT_CONFIGS,
    n_steps: int = 10,
    n_replications: int = 8,
    hours: float = 8760.0,
    base_seed: int = 96,
    base: CFSParameters | None = None,
    n_jobs: int | None = 1,
) -> FigureResult:
    """Regenerate Figure 2.

    Parameters mirror the paper's experiment: a storage-size sweep (ABE →
    12 PB) for each disk-failure configuration, storage hardware only.
    Reduce ``n_steps`` / ``n_replications`` / ``hours`` for quick runs.
    ``n_jobs`` schedules the grid's independent (configuration,
    scale-step) cells across worker processes
    (:func:`repro.experiments.sweep.run_sweep`); every cell is seeded
    from its grid coordinates, so results are bit-identical for any
    value.
    """
    base = base if base is not None else abe_parameters()
    cells = figure2_cells(configs, n_steps, n_replications, hours, base_seed, base)
    return _assemble_figure2(run_sweep(cells, n_jobs=n_jobs), configs, n_steps, base)
