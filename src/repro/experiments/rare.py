"""Rare-event estimation: RESTART importance splitting over level functions.

The paper's deep-tail quantities — a petascale tier's probability of
data loss within a mission time — sit far below what fixed-count brute
replication can resolve: at :math:`p \\approx 10^{-7}` a thousand
replications almost surely observe zero events.  This module makes such
probabilities estimable with **RESTART-style importance splitting**: a
declared :class:`LevelFunction` maps the marking to a degradation level
(e.g. failed disks in a tier), a :class:`SplittingPolicy` places
thresholds between the initial state and the rare set, and trajectories
are *split* into retrials whenever they cross a threshold upward
(weight divided among the offspring) and retrials are *killed* when
they fall back below their birth threshold.  Paths that drift toward
the rare set are therefore multiplied while their statistical weight is
conserved, which concentrates simulation effort exactly where the rare
event lives.

Estimator contract
------------------
* **Unbiased**: an up-crossing through thresholds ``s..s'-1`` with
  splitting factors ``R_j`` spawns ``F = prod R_j`` branches of weight
  ``w / F`` (weight conservation, property-tested); a branch reaching
  the top threshold contributes its weight; killed retrials contribute
  nothing, and the surviving original re-splits on every later upward
  crossing — classical RESTART, whose estimator
  ``p_hat = mean_k(sum of weights hitting the top in tree k)`` is
  unbiased for ``P(level reaches top before the horizon)``.
* **Exact restarts**: branches continue from the parent's stopped
  marking via ``Simulator.run(..., initial_marking=...)``.  For
  memoryless (exponential, ``reactivate=True``) models the continuation
  is distributed exactly as the suspended trajectory, which is also the
  regime where the :mod:`repro.markov` closed forms apply — the
  statistical acceptance suite (``tests/test_rare_stats.py``) checks
  splitting and crude estimates against
  :class:`~repro.markov.raid_markov.RAIDTierMarkov` transients.
* **Deterministic**: the branch at tree path ``path`` of root ``k``
  draws from seed-tree stream ``(base_seed, "rare", k, *path)`` — a
  pure function of its position, never of execution order — so any
  split schedule is reproducible and serial == parallel bit-for-bit
  (roots are scheduled over the same supervised pools as replications).

Crude Monte Carlo is the degenerate policy with no intermediate
thresholds (:meth:`SplittingPolicy.crude`); with splitting disabled
entirely, :func:`brute_force_probability` routes through
:func:`~repro.core.experiment.replicate_runs` unchanged.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..core.errors import SimulationError
from ..core.experiment import Estimate, replicate_runs
from ..core.parallel import (
    ReplicationSetup,
    ReplicationSpec,
    build_setup_cached,
    pool_context,
    resolve_n_jobs,
)
from ..core.resilience import ChaosPolicy, RetryPolicy, run_tasks_supervised
from ..core.rng import make_generator
from ..core.stopping import StoppingRule

__all__ = [
    "LevelFunction",
    "SplittingPolicy",
    "RareEventEstimate",
    "splitting_probability",
    "brute_force_probability",
    "child_weights",
    "aggregate_tier_san",
    "tier_setup_factory",
    "tier_replication_spec",
    "tier_level",
    "tier_splitting_policy",
    "suggested_splits",
]


# ----------------------------------------------------------------------
# level functions and policies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LevelFunction:
    """A monotone degradation level over the marking.

    ``level(marking) = sum(weight * tokens(place))`` over the declared
    places.  Weights must be strictly positive so the level is monotone
    in every degradation token — the importance-splitting correctness
    argument needs "more tokens = closer to the rare set", and a
    non-positive weight would silently invert a dimension.  Violations
    raise :class:`~repro.core.errors.SimulationError` at construction.

    Parameters
    ----------
    name:
        Label used in diagnostics and results.
    places:
        ``{place_path: weight}`` mapping (or an iterable of paths, all
        weighted 1.0).  Paths are resolved against the flattened model
        when the estimator compiles the policy.
    """

    name: str
    places: tuple[tuple[str, float], ...]

    def __init__(
        self,
        name: str,
        places: Mapping[str, float] | Sequence[str],
    ) -> None:
        if isinstance(places, Mapping):
            items = tuple((str(p), float(w)) for p, w in places.items())
        else:
            items = tuple((str(p), 1.0) for p in places)
        if not items:
            raise SimulationError(
                f"level function {name!r} declares no places"
            )
        seen = set()
        for path, weight in items:
            if path in seen:
                raise SimulationError(
                    f"level function {name!r}: duplicate place {path!r}"
                )
            seen.add(path)
            if not math.isfinite(weight) or weight <= 0.0:
                raise SimulationError(
                    f"level function {name!r}: weight for {path!r} must be "
                    f"a positive finite number, got {weight!r} (levels must "
                    "be monotone in every degradation token)"
                )
        object.__setattr__(self, "name", str(name))
        object.__setattr__(self, "places", items)

    def resolve(self, model) -> Callable[[Sequence[int]], float]:
        """Compile an evaluator over slot-indexed marking vectors."""
        pairs = []
        for path, weight in self.places:
            try:
                pairs.append((model.paths[path], weight))
            except KeyError:
                raise SimulationError(
                    f"level function {self.name!r}: unknown place "
                    f"{path!r}; available: {sorted(model.paths)}"
                ) from None
        pairs = tuple(pairs)

        def value(values, _pairs=pairs):
            total = 0.0
            for slot, weight in _pairs:
                total += weight * values[slot]
            return total

        return value


@dataclass(frozen=True)
class SplittingPolicy:
    """Thresholds and splitting factors for a :class:`LevelFunction`.

    ``thresholds`` must be strictly increasing; reaching
    ``thresholds[-1]`` *is* the rare event.  ``splits[j]`` is the
    RESTART splitting factor applied on upward crossings of
    ``thresholds[j]`` — one entry per threshold except the last (the
    top is absorbing for the estimator, nothing splits there), each an
    integer >= 1.  ``SplittingPolicy(level, (top,),())`` is crude Monte
    Carlo with early stopping at the event.
    """

    level: LevelFunction
    thresholds: tuple[float, ...]
    splits: tuple[int, ...] = ()
    max_segments: int = 1_000_000

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "thresholds", tuple(float(t) for t in self.thresholds)
        )
        object.__setattr__(self, "splits", tuple(int(r) for r in self.splits))
        if not self.thresholds:
            raise SimulationError("splitting policy needs >= 1 threshold")
        for lo, hi in zip(self.thresholds, self.thresholds[1:]):
            if not lo < hi:
                raise SimulationError(
                    f"thresholds must be strictly increasing, got "
                    f"{self.thresholds}"
                )
        if len(self.splits) != len(self.thresholds) - 1:
            raise SimulationError(
                f"need one splitting factor per threshold below the top: "
                f"{len(self.thresholds)} thresholds require "
                f"{len(self.thresholds) - 1} factors, got {len(self.splits)}"
            )
        if any(r < 1 for r in self.splits):
            raise SimulationError(
                f"splitting factors must be >= 1, got {self.splits}"
            )
        if self.max_segments < 1:
            raise SimulationError(
                f"max_segments must be >= 1, got {self.max_segments}"
            )

    def crude(self) -> "SplittingPolicy":
        """The no-splitting policy for the same event (crude MC)."""
        return SplittingPolicy(
            self.level, (self.thresholds[-1],), (), self.max_segments
        )


def child_weights(weight: float, factor: int) -> list[float]:
    """Offspring weights for one split: ``factor`` copies of ``w/factor``.

    Conserves the parent's expected weight (``sum == weight`` up to
    float rounding) — the invariant the unbiasedness of the RESTART
    estimator rests on (region weights satisfy exactly this relation at
    every up-crossing: ``prod(R) * W(b') == W(b)``), property-tested in
    ``tests/test_stopping_properties.py``.
    """
    if factor < 1:
        raise SimulationError(f"splitting factor must be >= 1, got {factor}")
    return [weight / factor] * factor


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RareEventEstimate:
    """Probability estimate from a rare-event study.

    ``samples[k]`` is root ``k``'s contribution (total weight that
    reached the top level in its splitting tree; a 0/1 indicator for
    crude MC), so ``probability`` is their mean and the CI is the
    ordinary Student-t interval over i.i.d. roots.
    """

    probability: float
    half_width: float
    confidence: float
    n_roots: int
    n_hits: int
    n_segments: int
    samples: tuple[float, ...]
    method: str

    @property
    def rel_half_width(self) -> float:
        """Half-width relative to the point estimate (inf at zero)."""
        if self.probability == 0.0:
            return float("inf")
        return self.half_width / abs(self.probability)

    def estimate(self) -> Estimate:
        """The underlying Student-t :class:`~repro.core.experiment.Estimate`."""
        return Estimate.from_samples(self.samples, self.confidence)

    def __str__(self) -> str:
        return (
            f"p = {self.probability:.4g} ± {self.half_width:.2g} "
            f"({int(self.confidence * 100)}% CI, {self.n_roots} roots, "
            f"{self.n_hits} hits, {self.n_segments} segments, {self.method})"
        )


# ----------------------------------------------------------------------
# the RESTART tree
# ----------------------------------------------------------------------
def _make_stop_predicate(level_fn, up: float, down: float | None):
    """Segment stop: level reaches ``up``, or falls below ``down``."""
    if down is None:

        def pred(m, _fn=level_fn, _up=up):
            return _fn(m.raw) >= _up

    else:

        def pred(m, _fn=level_fn, _up=up, _down=down):
            lvl = _fn(m.raw)
            return lvl >= _up or lvl < _down

    return pred


def _run_root_tree(
    simulator,
    level_fn,
    policy: SplittingPolicy,
    horizon: float,
    base_seed: int,
    k: int,
) -> tuple[float, int, int]:
    """One root replication's full splitting tree.

    Returns ``(weight_hitting_top, n_segments, n_hits)``.  The tree is
    walked depth-first with an explicit stack; each segment's RNG
    stream is ``(base_seed, "rare", k, *path)`` where ``path`` encodes
    its position (child index at splits, ``-1`` for a downward
    continuation), so the whole tree is a pure function of ``k``.

    Weights are *region-determined*, the classical RESTART accounting:
    every branch in bracket ``b`` carries ``W(b) = 1 / prod(R_j, j < b)``
    (relative to the root's starting bracket).  An up-crossing into
    bracket ``b'`` splits into ``prod(R_j, b <= j < b')`` branches of
    weight ``W(b')``; a *surviving* down-crossing restores the branch to
    the lower region's larger weight.  The restoration is load-bearing:
    with lineage-multiplied weights the kill rule (retrials die below
    their birth threshold) strictly loses probability mass and the
    estimator is biased low, whereas region weights make the expected
    number of branches in region ``b`` exactly ``1/W(b)`` times the
    crude occupancy (excursions above a threshold are regenerated
    ``R_j``-fold each time the surviving branch re-crosses it), so
    ``E[sum of hit weights] = P(top before horizon)`` exactly.
    """
    thresholds = policy.thresholds
    splits = policy.splits
    top = len(thresholds)

    level0 = level_fn(simulator.model.initial)
    bracket0 = bisect_right(thresholds, level0)
    if bracket0 >= top:
        raise SimulationError(
            f"initial marking already at the top level "
            f"({policy.level.name} = {level0} >= {thresholds[-1]})"
        )
    # Region weights, relative to the root's bracket.
    region_w = [1.0] * top  # brackets 0..top-1; no branch lives at top
    for b in range(bracket0 + 1, top):
        region_w[b] = region_w[b - 1] / splits[b - 1]

    # (marking, t0, bracket, kill_bracket, path); marking None means
    # the model's own initial marking.
    stack = [(None, 0.0, bracket0, 0, ())]
    hit_weight = 0.0
    n_segments = 0
    n_hits = 0
    while stack:
        marking, t0, bracket, kill, path = stack.pop()
        remaining = horizon - t0
        if remaining <= 0.0:
            continue
        n_segments += 1
        if n_segments > policy.max_segments:
            raise SimulationError(
                f"splitting tree for root {k} exceeded max_segments="
                f"{policy.max_segments}; lower the splitting factors or "
                "raise SplittingPolicy.max_segments"
            )
        pred = _make_stop_predicate(
            level_fn,
            thresholds[bracket],
            thresholds[bracket - 1] if bracket > 0 else None,
        )
        rng = make_generator(base_seed, "rare", k, *path)
        result = simulator.run(
            remaining,
            rng=rng,
            stop_predicate=pred,
            initial_marking=marking,
        )
        if not result.stopped_early:
            continue  # horizon reached below the top: contributes 0
        final = result.final_marking
        level = level_fn(final)
        new_bracket = bisect_right(thresholds, level)
        t1 = t0 + result.final_time
        if new_bracket > bracket:
            if new_bracket >= top:
                # A jump straight through the remaining thresholds would
                # split at each and land every offspring in the top
                # region, so the contribution is the full region weight
                # of the crossing segment.
                hit_weight += region_w[bracket]
                n_hits += 1
                continue
            radices = splits[bracket:new_bracket]
            factor = 1
            for r in radices:
                factor *= r
            # Child i's kill bracket comes from the sequential-split
            # picture of a multi-threshold jump: decompose i in mixed
            # radix (most significant digit = the lowest threshold
            # crossed); a retrial spawned at threshold j dies below
            # bracket j+1, and the highest nonzero digit names the
            # spawning threshold.  Child 0 is the continuing original
            # and inherits the ancestor kill bracket.  Reversed push so
            # child 0 pops first; the order is fixed purely for
            # reproducible accounting.
            for i in reversed(range(factor)):
                kill_i = kill
                rem = i
                for idx in range(len(radices) - 1, -1, -1):
                    digit = rem % radices[idx]
                    rem //= radices[idx]
                    if digit != 0:
                        kill_i = bracket + idx + 1
                        break
                stack.append((final, t1, new_bracket, kill_i, path + (i,)))
        else:
            # Downward crossing.  Retrials die below their birth
            # threshold; survivors continue at the lower bracket's
            # restored weight and re-split on any later upward crossing
            # (classical RESTART resplitting — this regeneration is
            # what keeps the killed retrials from biasing the
            # estimator).
            if new_bracket < kill:
                continue
            stack.append((final, t1, new_bracket, kill, path + (-1,)))
    return hit_weight, n_segments, n_hits


def _splitting_chunk(payload: tuple) -> list[tuple[int, float, int, int]]:
    """Supervised worker entry: a contiguous chunk of root trees."""
    spec, horizon, policy, base_seed, ks = payload
    setup, _metrics = build_setup_cached(spec)
    simulator = setup.simulator
    level_fn = policy.level.resolve(simulator.model)
    return [
        (k, *_run_root_tree(simulator, level_fn, policy, horizon, base_seed, k))
        for k in ks
    ]


# ----------------------------------------------------------------------
# public estimators
# ----------------------------------------------------------------------
def splitting_probability(
    source,
    horizon: float,
    policy: SplittingPolicy,
    *,
    n_roots: int = 256,
    stopping: StoppingRule | None = None,
    confidence: float = 0.95,
    base_seed: int | None = None,
    n_jobs: int | None = 1,
    retry: RetryPolicy | None = None,
    chaos: ChaosPolicy | None = None,
) -> RareEventEstimate:
    """Estimate ``P(level reaches the top threshold within horizon)``.

    Parameters
    ----------
    source:
        A :class:`~repro.core.simulation.Simulator`, or a
        :class:`~repro.core.parallel.ReplicationSpec` (required for
        ``n_jobs > 1``; workers rebuild/reuse the compiled program via
        the per-process setup cache).
    horizon:
        Mission time in hours.
    policy:
        Level function, thresholds and splitting factors.  Pass
        ``policy.crude()`` for plain Monte Carlo with early stopping.
    n_roots:
        Root replications (the cap, when ``stopping`` is given).
    stopping:
        Optional :class:`~repro.core.stopping.StoppingRule` over the
        per-root contributions: roots run in deterministic rounds until
        the estimate's relative CI half-width reaches the rule's
        target.  Root ``k`` always derives its tree from streams
        ``(base_seed, "rare", k, ...)``, so the stopping point is
        identical for serial, any ``n_jobs``, and resumed runs.
    base_seed:
        Root entropy (default: the simulator's own ``base_seed``).
    n_jobs:
        Worker processes over root trees (-1 = all cores); results are
        bit-identical for every value.
    """
    if horizon <= 0.0:
        raise SimulationError(f"horizon must be positive, got {horizon}")
    if n_roots < 1:
        raise SimulationError(f"n_roots must be >= 1, got {n_roots}")

    spec: ReplicationSpec | None = None
    if isinstance(source, ReplicationSpec):
        spec = source
        setup, _metrics = build_setup_cached(spec)
        simulator = setup.simulator
    else:
        simulator = source
    if base_seed is None:
        base_seed = simulator.base_seed
    jobs = resolve_n_jobs(n_jobs)
    if jobs > 1 and spec is None:
        raise SimulationError(
            "parallel splitting requires a ReplicationSpec source (worker "
            "processes rebuild the model from the picklable recipe); pass "
            "the spec, or n_jobs=1"
        )
    level_fn = policy.level.resolve(simulator.model)

    samples: list[float] = []
    n_segments = 0
    n_hits = 0

    def run_roots(k0: int, count: int) -> None:
        nonlocal n_segments, n_hits
        if jobs > 1 and count > 1:
            ks = range(k0, k0 + count)
            chunk = max(1, count // (min(jobs, count) * 4))
            chunks = [tuple(ks[i : i + chunk]) for i in range(0, count, chunk)]
            tasks = [
                (("rare", c[0], c[-1]), (spec, horizon, policy, base_seed, c))
                for c in chunks
            ]
            outcomes = run_tasks_supervised(
                tasks,
                _splitting_chunk,
                n_jobs=min(jobs, len(chunks)),
                mp_context=pool_context(),
                retry=retry,
                chaos=chaos,
                on_error="raise",
                label="splitting chunk",
            )
            results = [
                item for key, _payload in tasks for item in outcomes[key]
            ]
            results.sort(key=lambda item: item[0])
            for _k, weight, segs, hits in results:
                samples.append(weight)
                n_segments += segs
                n_hits += hits
        else:
            for k in range(k0, k0 + count):
                weight, segs, hits = _run_root_tree(
                    simulator, level_fn, policy, horizon, base_seed, k
                )
                samples.append(weight)
                n_segments += segs
                n_hits += hits

    if stopping is None:
        run_roots(0, n_roots)
    else:
        n_done = 0
        while True:
            round_n = stopping.next_round(n_done, n_roots)
            if round_n == 0:
                break
            run_roots(n_done, round_n)
            n_done += round_n
            if stopping.satisfied({"probability": samples}):
                break

    est = Estimate.from_samples(samples, confidence)
    return RareEventEstimate(
        probability=est.mean,
        half_width=est.half_width,
        confidence=confidence,
        n_roots=len(samples),
        n_hits=n_hits,
        n_segments=n_segments,
        samples=tuple(samples),
        method=(
            "crude" if len(policy.thresholds) == 1 else
            f"splitting[{len(policy.thresholds)} levels]"
        ),
    )


def brute_force_probability(
    simulator,
    horizon: float,
    level: LevelFunction,
    threshold: float,
    *,
    n_replications: int,
    stopping: StoppingRule | None = None,
    confidence: float = 0.95,
    n_jobs: int | None = 1,
) -> RareEventEstimate:
    """Fixed-budget brute-force estimate through ``replicate_runs``.

    Each replication runs the model to the horizon and scores the
    indicator ``level(final marking) >= threshold`` — valid when the
    event is *sticky* (an absorbing loss place keeps the level up, as
    in :func:`aggregate_tier_san`).  This is literally
    :func:`~repro.core.experiment.replicate_runs` with one extra
    metric: with ``stopping=None`` the replication streams, counts and
    samples are byte-identical to a plain ``replicate_runs`` call — the
    differential tests pin that equivalence — so "splitting disabled"
    costs nothing over the estimator the repo always had.
    """
    level_fn = level.resolve(simulator.model)
    metric = {
        "rare_event": lambda res, _fn=level_fn, _thr=float(threshold): (
            1.0 if _fn(res._final_values) >= _thr else 0.0
        )
    }
    experiment = replicate_runs(
        simulator,
        horizon,
        n_replications=n_replications,
        extra_metrics=metric,
        confidence=confidence,
        n_jobs=n_jobs,
        stopping=stopping,
    )
    samples = experiment.samples("rare_event")
    est = Estimate.from_samples(samples, confidence)
    return RareEventEstimate(
        probability=est.mean,
        half_width=est.half_width,
        confidence=confidence,
        n_roots=len(samples),
        n_hits=int(sum(samples)),
        n_segments=len(samples),
        samples=tuple(samples),
        method="brute-force",
    )


# ----------------------------------------------------------------------
# the aggregate RAID-tier twin (the acceptance suite's workhorse)
# ----------------------------------------------------------------------
def aggregate_tier_san(
    n_disks: int,
    fault_tolerance: int,
    disk_failure_rate: float,
    disk_repair_rate: float,
):
    """Aggregate birth-death SAN twin of ``RAIDTierMarkov.absorbing_chain``.

    Places ``tier/failed`` (concurrently failed disks) and ``tier/lost``
    (sticky data-loss flag); exponential failure at marking-dependent
    rate ``(n - failed) * lambda`` and repair at ``failed * mu``, both
    ``reactivate=True``, so the SAN is a CTMC identical state-for-state
    to :meth:`~repro.markov.raid_markov.RAIDTierMarkov.absorbing_chain`
    — the closed-form transient is the *exact* distribution of the
    simulated loss time, which is what lets the statistical acceptance
    suite test the rare-event estimators against truth.
    """
    from ..core import SAN, Exponential, flatten

    n = int(n_disks)
    f = int(fault_tolerance)
    lam = float(disk_failure_rate)
    mu = float(disk_repair_rate)
    if not 1 <= f < n:
        raise SimulationError(
            f"fault tolerance must be in [1, n_disks), got {f} of {n}"
        )
    if min(lam, mu) <= 0.0:
        raise SimulationError("failure and repair rates must be positive")

    san = SAN("tier")
    san.place("failed", 0)
    san.place("lost", 0)
    san.timed(
        "fail",
        lambda m: Exponential((n - m["failed"]) * lam),
        enabled=lambda m: m["failed"] <= f and m["lost"] == 0,
        effect=lambda m, rng: m.__setitem__("failed", m["failed"] + 1),
        reads=["failed", "lost"],
        reactivate=True,
    )
    san.timed(
        "repair",
        lambda m: Exponential(m["failed"] * mu),
        enabled=lambda m: 1 <= m["failed"] <= f and m["lost"] == 0,
        effect=lambda m, rng: m.__setitem__("failed", m["failed"] - 1),
        reads=["failed", "lost"],
        reactivate=True,
    )
    san.instant(
        "lose",
        enabled=lambda m: m["failed"] == f + 1 and m["lost"] == 0,
        effect=lambda m, rng: m.__setitem__("lost", 1),
        reads=["failed", "lost"],
    )
    return flatten(san)


def tier_setup_factory(
    n_disks: int,
    fault_tolerance: int,
    disk_failure_rate: float,
    disk_repair_rate: float,
    base_seed: int,
) -> ReplicationSetup:
    """Module-level setup factory so tier studies parallelize (spec mode)."""
    from ..core import RateReward, Simulator

    model = aggregate_tier_san(
        n_disks, fault_tolerance, disk_failure_rate, disk_repair_rate
    )
    simulator = Simulator(model, base_seed=base_seed)
    rewards = [
        RateReward(
            "lost", lambda m: float(m["tier/lost"]), reads=["tier/lost"]
        )
    ]
    return ReplicationSetup(simulator, rewards)


def tier_replication_spec(
    n_disks: int,
    fault_tolerance: int,
    disk_failure_rate: float,
    disk_repair_rate: float,
    base_seed: int,
) -> ReplicationSpec:
    """Picklable recipe for :func:`tier_setup_factory` workers."""
    return ReplicationSpec(
        tier_setup_factory,
        (
            int(n_disks),
            int(fault_tolerance),
            float(disk_failure_rate),
            float(disk_repair_rate),
            int(base_seed),
        ),
    )


def tier_level() -> LevelFunction:
    """Degradation level of the aggregate tier: failed disks + loss flag.

    The sticky ``lost`` place is weighted so the level stays at the top
    once the tier is lost even though repairs are frozen — the event is
    absorbing for both estimators.
    """
    return LevelFunction("tier-degradation", {"tier/failed": 1.0})


def suggested_splits(
    n_disks: int,
    fault_tolerance: int,
    disk_failure_rate: float,
    disk_repair_rate: float,
    cap: int = 32,
) -> tuple[int, ...]:
    """Near-optimal splitting factors for the aggregate tier.

    RESTART effort is balanced when each factor approximates the
    inverse of its stage's conditional up-probability; for the tier's
    birth-death dynamics the probability of a (j+1)-th failure before a
    repair from ``j`` failed disks is
    ``(n-j)·lambda / ((n-j)·lambda + j·mu)``.  Factors are rounded and
    clipped to ``[1, cap]`` to bound the branching.
    """
    lam = float(disk_failure_rate)
    mu = float(disk_repair_rate)
    factors = []
    for j in range(1, int(fault_tolerance) + 1):
        up = (n_disks - j) * lam
        p_up = up / (up + j * mu)
        factors.append(max(1, min(int(cap), round(1.0 / p_up))))
    return tuple(factors)


def tier_splitting_policy(
    n_disks: int,
    fault_tolerance: int,
    disk_failure_rate: float,
    disk_repair_rate: float,
    *,
    splits: Sequence[int] | None = None,
    max_segments: int = 1_000_000,
) -> SplittingPolicy:
    """Splitting policy for the aggregate tier: one level per failed disk.

    Thresholds sit at 1..f+1 concurrently failed disks (the top is data
    loss); ``splits`` defaults to :func:`suggested_splits`.
    """
    f = int(fault_tolerance)
    if splits is None:
        splits = suggested_splits(
            n_disks, f, disk_failure_rate, disk_repair_rate
        )
    return SplittingPolicy(
        tier_level(),
        tuple(float(j) for j in range(1, f + 2)),
        tuple(splits),
        max_segments,
    )
