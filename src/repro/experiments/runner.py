"""Shared result containers and formatting for experiment regenerators.

Every ``run_tableN`` / ``run_figureN`` function returns one of these
structures; ``format()`` renders the same rows/series the paper prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.experiment import Estimate

__all__ = [
    "TableResult",
    "SeriesPoint",
    "Series",
    "FigureResult",
    "format_cell_failures",
]


def format_cell_failures(failures: Mapping) -> str:
    """Render a partial sweep's failure records as a report section.

    ``failures`` is ``SweepResult.failures`` — ``key ->``
    :class:`~repro.core.resilience.CellFailure` — from a
    ``run_sweep(..., on_error="collect")`` grid.  One line per failed
    cell: key, attempts consumed, and the final causal error.
    """
    lines = [f"FAILED CELLS ({len(failures)})"]
    for key, failure in failures.items():
        lines.append(
            f"  {key!r}: {failure.error_type} after "
            f"{failure.attempts} attempt(s): {failure.message}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class TableResult:
    """A regenerated paper table."""

    table_id: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple[str, ...], ...]
    notes: tuple[str, ...] = ()

    def format(self) -> str:
        """Render as an aligned text table."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def render(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        lines = [f"{self.table_id}: {self.title}", render(self.headers)]
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(render(row) for row in self.rows)
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


@dataclass(frozen=True)
class SeriesPoint:
    """One (x, estimate) point of a figure series."""

    x: float
    estimate: Estimate


@dataclass(frozen=True)
class Series:
    """One labelled curve of a figure."""

    label: str
    points: tuple[SeriesPoint, ...]

    def xs(self) -> list[float]:
        """The x coordinates."""
        return [p.x for p in self.points]

    def means(self) -> list[float]:
        """The point estimates."""
        return [p.estimate.mean for p in self.points]


@dataclass(frozen=True)
class FigureResult:
    """A regenerated paper figure (as data, ready for plotting or print)."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: tuple[Series, ...]
    notes: tuple[str, ...] = ()

    def series_by_label(self, label: str) -> Series:
        """Look up one curve."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(
            f"no series {label!r}; available: {[s.label for s in self.series]}"
        )

    def format(self) -> str:
        """Render all series as an aligned text table (x column + one
        mean±hw column per series)."""
        xs = self.series[0].xs()
        headers = [self.x_label] + [s.label for s in self.series]
        rows: list[tuple[str, ...]] = []
        for i, x in enumerate(xs):
            cells = [f"{x:g}"]
            for s in self.series:
                p = s.points[i]
                cells.append(f"{p.estimate.mean:.5f}±{p.estimate.half_width:.5f}")
            rows.append(tuple(cells))
        table = TableResult(
            self.figure_id, f"{self.title} [{self.y_label}]",
            tuple(headers), tuple(rows), self.notes,
        )
        return table.format()
