"""Table 5 — the simulation model parameters.

Renders the calibrated parameter presets against the paper's documented
ranges (each with its provenance footnote: 1 = log-file analysis,
2 = literature / hardware white papers, 3 = NCSA administrators).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfs.parameters import TABLE5_RANGES, CFSParameters, abe_parameters, petascale_parameters
from .runner import TableResult
from .sweep import SweepCell

__all__ = ["Table5Result", "table5_cell", "run_table5"]


@dataclass(frozen=True)
class Table5Result:
    """Regenerated Table 5."""

    table: TableResult
    abe: CFSParameters
    petascale: CFSParameters

    def format(self) -> str:
        """Render the parameter table."""
        return self.table.format()


def table5_cell() -> SweepCell:
    """Table 5 as a sweep cell (parameter-preset rendering)."""
    return SweepCell("table5", run_table5)


def run_table5() -> Table5Result:
    """Render the ABE / petascale presets against the Table 5 ranges."""
    abe = abe_parameters()
    peta = petascale_parameters()

    def rng(key: str) -> str:
        lo, hi = TABLE5_RANGES[key]
        return f"{lo:g}-{hi:g}"

    rows = (
        ("Disk MTBF (h) [2]", rng("disk_mtbf_hours"), f"{abe.disk_mtbf_hours:g}", f"{peta.disk_mtbf_hours:g}"),
        ("Annualized failure rate (AFR) [2]", "0.29%-8.76%", f"{100*abe.disk_afr:.2f}%", f"{100*peta.disk_afr:.2f}%"),
        ("Weibull shape parameter [1]", rng("disk_weibull_shape"), f"{abe.disk_weibull_shape:g}", f"{peta.disk_weibull_shape:g}"),
        ("Number of DDN units [1]", rng("n_ddn_units"), str(abe.n_ddn_units), str(peta.n_ddn_units)),
        ("Number of compute nodes [1]", rng("n_compute_nodes"), str(abe.n_compute_nodes), str(peta.n_compute_nodes)),
        ("Avg. time to replace disks (h) [3]", rng("disk_replacement_hours"), f"{abe.raid.disk_replacement_hours:g}", f"{peta.raid.disk_replacement_hours:g}"),
        ("Avg. time to replace hardware (h) [3]", rng("hardware_repair_hours"), f"{abe.oss_hw_repair_hours[0]:g}-{abe.oss_hw_repair_hours[1]:g}", f"{peta.oss_hw_repair_hours[0]:g}-{peta.oss_hw_repair_hours[1]:g}"),
        ("Avg. time to fix software (h) [3]", rng("software_repair_hours"), f"{abe.oss_sw_repair_hours[0]:g}-{abe.oss_sw_repair_hours[1]:g}", f"{peta.oss_sw_repair_hours[0]:g}-{peta.oss_sw_repair_hours[1]:g}"),
        ("Job requests per hour [1]", rng("job_rate_per_hour"), f"{abe.job_rate_per_hour:g}", f"{peta.job_rate_per_hour:g}"),
        ("Hardware failure rate (per 720 h) [1]", rng("hardware_failures_per_720h"), f"{abe.oss_hw_failures_per_720h:g}/member", f"{peta.oss_hw_failures_per_720h:g}/member"),
        ("Software failure rate (per 720 h) [1]", rng("software_failures_per_720h"), f"{abe.oss_sw_failures_per_720h:g}/pair", f"{peta.oss_sw_failures_per_720h:g}/pair"),
        ("Annual disk-capacity growth [2]", "33%", "33%", "33%"),
        ("OSS fail-over pairs [1]", rng("n_oss_pairs"), str(abe.n_oss_pairs), str(peta.n_oss_pairs)),
        ("RAID configuration [2]", "8+2 / 8+3", abe.raid.label, peta.raid.label),
        ("Correlated propagation p (OSS hw) [*]", "0-1", f"{abe.oss_hw_propagation_p:g}", f"{peta.oss_hw_propagation_p:g}"),
        ("Correlated propagation p (disks) [*]", "0-1", f"{abe.disk_propagation_p:g}", f"{peta.disk_propagation_p:g}"),
    )
    table = TableResult(
        "Table 5",
        "ABE cluster's simulation model parameters "
        "([1] log analysis, [2] literature/white papers, [3] administrators, "
        "[*] calibrated to the paper's Figure 4 anchors)",
        ("Model parameter", "Range", "ABE", "Petascale"),
        rows,
    )
    return Table5Result(table=table, abe=abe, petascale=peta)
