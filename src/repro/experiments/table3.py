"""Table 3 — job execution statistics.

"Total jobs submitted between 05/13/07 to 10/02/07: 44085; total failures
due to transient network errors: 1234; total failures due to other/file
system errors: 184" — and the analysis observation that transient errors
are ≈ 5× more likely to kill a job than all other error classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

from ..analysis.jobs import JobStatistics, job_statistics
from ..cfs.parameters import CFSParameters
from ..loggen.abe import AbeLogs, cached_abe_logs
from .runner import TableResult
from .sweep import SweepCell

__all__ = ["Table3Result", "table3_cell", "run_table3"]

#: The paper's Table 3 window.
WINDOW_START = datetime(2007, 5, 13)
WINDOW_END = datetime(2007, 10, 2)


@dataclass(frozen=True)
class Table3Result:
    """Regenerated Table 3."""

    table: TableResult
    statistics: JobStatistics

    def format(self) -> str:
        """Render the three Table 3 rows plus the derived ratio."""
        return (
            self.table.format()
            + f"\ntransient : other kill ratio = "
            + f"{self.statistics.transient_to_other_ratio:.1f}"
            + f"  (paper: 1234/184 = 6.7)"
            + f"\ncluster utility (1 - failed/total) = "
            + f"{self.statistics.cluster_utility:.4f}"
        )


def table3_cell(params: CFSParameters | None = None, seed: int = 2013) -> SweepCell:
    """Table 3 as a sweep cell (log synthesis + job statistics)."""
    return SweepCell("table3", run_table3, (params, seed))


def run_table3(
    params: CFSParameters | None = None,
    seed: int = 2013,
    logs: AbeLogs | None = None,
) -> Table3Result:
    """Regenerate Table 3 from the synthesized job records."""
    if logs is None:
        logs = cached_abe_logs(seed, params)
    jobs = [
        j for j in logs.jobs if WINDOW_START <= j.submit_time < WINDOW_END
    ]
    stats = job_statistics(jobs)
    table = TableResult(
        "Table 3",
        "Job execution statistics for the ABE cluster",
        ("Statistic", "Count"),
        (
            ("Total jobs submitted (05/13 to 10/02)", str(stats.total)),
            ("Total failures due to transient network errors", str(stats.failed_transient)),
            ("Total failures due to other/file system errors", str(stats.failed_other)),
        ),
    )
    return Table3Result(table=table, statistics=stats)
