"""Figure 4 — availability and utility of ABE scaled to petaflop-petabyte.

Four curves over the ABE → petascale sweep:

* **Storage-availability** — the (0.7, 2.92 %, 8+2, 4 h) fitted disk
  configuration; stays ≈ 1 at every scale;
* **CFS-Availability** — drops from ≈ 0.972 to ≈ 0.909, "mainly due to
  correlated failures in OSS and hardware";
* **CU** — the users' view, lower still, dominated by transient network
  errors;
* **CFS-Availability-spare-OSS** — a standby-spare OSS recovers ≈ 3 %.
"""

from __future__ import annotations

from ..cfs.cluster import ClusterModel
from ..cfs.parameters import CFSParameters, abe_parameters
from ..cfs.scaling import scale_step
from .runner import FigureResult, Series, SeriesPoint

__all__ = ["run_figure4"]


def run_figure4(
    n_steps: int = 6,
    n_replications: int = 8,
    hours: float = 8760.0,
    base_seed: int = 4,
    base: CFSParameters | None = None,
    include_spare: bool = True,
    n_jobs: int | None = 1,
) -> FigureResult:
    """Regenerate Figure 4 (full composed model, all four curves).

    ``n_jobs`` parallelizes the replications of each sweep point without
    changing any result.
    """
    base = base if base is not None else abe_parameters()
    storage_pts: list[SeriesPoint] = []
    cfs_pts: list[SeriesPoint] = []
    cu_pts: list[SeriesPoint] = []
    spare_pts: list[SeriesPoint] = []

    for k in range(1, n_steps + 1):
        params = scale_step(k, n_steps, base)
        x = params.raw_storage_tb
        result = ClusterModel(params, base_seed=base_seed + k).simulate(
            hours=hours, n_replications=n_replications, n_jobs=n_jobs
        )
        storage_pts.append(SeriesPoint(x, result.storage_availability))
        cfs_pts.append(SeriesPoint(x, result.cfs_availability))
        cu_pts.append(SeriesPoint(x, result.cluster_utility))
        if include_spare:
            spare_params = params.with_spare_oss(1)
            spare_result = ClusterModel(
                spare_params, base_seed=base_seed + 100 + k
            ).simulate(
                hours=hours, n_replications=n_replications, n_jobs=n_jobs
            )
            spare_pts.append(SeriesPoint(x, spare_result.cfs_availability))

    series = [
        Series("Storage-availability", tuple(storage_pts)),
        Series("CFS-Availability", tuple(cfs_pts)),
        Series("CU", tuple(cu_pts)),
    ]
    if include_spare:
        series.append(Series("CFS-Availability-spare-OSS", tuple(spare_pts)))
    return FigureResult(
        figure_id="Figure 4",
        title="Availability and utility of the ABE cluster when scaled to "
        "petaflop-petabyte system",
        x_label="storage (TB)",
        y_label="availability / utility",
        series=tuple(series),
    )
