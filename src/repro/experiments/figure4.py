"""Figure 4 — availability and utility of ABE scaled to petaflop-petabyte.

Four curves over the ABE → petascale sweep:

* **Storage-availability** — the (0.7, 2.92 %, 8+2, 4 h) fitted disk
  configuration; stays ≈ 1 at every scale;
* **CFS-Availability** — drops from ≈ 0.972 to ≈ 0.909, "mainly due to
  correlated failures in OSS and hardware";
* **CU** — the users' view, lower still, dominated by transient network
  errors;
* **CFS-Availability-spare-OSS** — a standby-spare OSS recovers ≈ 3 %.
"""

from __future__ import annotations

from ..cfs.cluster import ClusterModel
from ..cfs.parameters import CFSParameters, abe_parameters
from ..cfs.scaling import scale_step
from .runner import FigureResult, Series, SeriesPoint
from .sweep import SweepCell, SweepResult, replication_cell, run_sweep

__all__ = ["figure4_cells", "run_figure4"]


def figure4_cells(
    n_steps: int = 6,
    n_replications: int = 8,
    hours: float = 8760.0,
    base_seed: int = 4,
    base: CFSParameters | None = None,
    include_spare: bool = True,
) -> list[SweepCell]:
    """The Figure 4 grid: one full-cluster cell per scale step, plus a
    spare-OSS variant per step when ``include_spare``.

    These are the heaviest cells of the whole report (a petascale year
    costs ~25× an ABE year, see BENCH_engine.json), which is exactly why
    cell-level scheduling pays: the spare/no-spare studies at each step
    are independent and pipeline across workers.
    """
    base = base if base is not None else abe_parameters()
    cells: list[SweepCell] = []
    for k in range(1, n_steps + 1):
        params = scale_step(k, n_steps, base)
        cells.append(
            replication_cell(
                ("figure4", k, "main"),
                ClusterModel.spec(params, base_seed + k),
                hours,
                n_replications,
            )
        )
        if include_spare:
            cells.append(
                replication_cell(
                    ("figure4", k, "spare"),
                    ClusterModel.spec(params.with_spare_oss(1), base_seed + 100 + k),
                    hours,
                    n_replications,
                )
            )
    return cells


def _assemble_figure4(
    results: SweepResult,
    n_steps: int,
    base: CFSParameters,
    include_spare: bool,
) -> FigureResult:
    storage_pts: list[SeriesPoint] = []
    cfs_pts: list[SeriesPoint] = []
    cu_pts: list[SeriesPoint] = []
    spare_pts: list[SeriesPoint] = []

    for k in range(1, n_steps + 1):
        x = scale_step(k, n_steps, base).raw_storage_tb
        exp = results[("figure4", k, "main")]
        storage_pts.append(SeriesPoint(x, exp.estimate("storage_availability")))
        cfs_pts.append(SeriesPoint(x, exp.estimate("cfs_availability")))
        cu_pts.append(SeriesPoint(x, exp.estimate("cluster_utility")))
        if include_spare:
            spare_exp = results[("figure4", k, "spare")]
            spare_pts.append(SeriesPoint(x, spare_exp.estimate("cfs_availability")))

    series = [
        Series("Storage-availability", tuple(storage_pts)),
        Series("CFS-Availability", tuple(cfs_pts)),
        Series("CU", tuple(cu_pts)),
    ]
    if include_spare:
        series.append(Series("CFS-Availability-spare-OSS", tuple(spare_pts)))
    return FigureResult(
        figure_id="Figure 4",
        title="Availability and utility of the ABE cluster when scaled to "
        "petaflop-petabyte system",
        x_label="storage (TB)",
        y_label="availability / utility",
        series=tuple(series),
    )


def run_figure4(
    n_steps: int = 6,
    n_replications: int = 8,
    hours: float = 8760.0,
    base_seed: int = 4,
    base: CFSParameters | None = None,
    include_spare: bool = True,
    n_jobs: int | None = 1,
) -> FigureResult:
    """Regenerate Figure 4 (full composed model, all four curves).

    ``n_jobs`` schedules the independent (scale-step, spare-variant)
    cells across worker processes
    (:func:`repro.experiments.sweep.run_sweep`); cells are seeded from
    their grid coordinates, so results are bit-identical for any value.
    """
    base = base if base is not None else abe_parameters()
    cells = figure4_cells(
        n_steps, n_replications, hours, base_seed, base, include_spare
    )
    return _assemble_figure4(
        run_sweep(cells, n_jobs=n_jobs), n_steps, base, include_spare
    )
