"""Table 4 — disk failure log and Weibull survival analysis.

The paper's Table 4 lists disk failures for the scratch partition between
09/05/2007 and 11/28/2007 (11 failures across 480 disks) and reports:
"Survival analysis of the disk failures (n = 480) using Weibull regression
(in log relative-hazard form) gives the shape parameter as 0.6963571 with
standard deviation of 0.1923109".

This regenerator simulates the fleet's renewal process from its spring
2007 deployment under the ground-truth law Weibull(β = 0.7, MTBF 300000 h),
lists the failures that fall inside the SAN-log window, and re-fits the
censored Weibull — recovering β ≈ 0.7 with a comparable standard error.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime, timedelta

from ..analysis.survival import WeibullFit, fit_weibull_censored
from ..cfs.parameters import CFSParameters, abe_parameters
from ..core.rng import make_generator
from ..loggen.disks import DiskSurvivalData, disk_survival_dataset
from .runner import TableResult
from .sweep import SweepCell

__all__ = ["Table4Result", "table4_cell", "run_table4"]

#: Fleet deployment (ABE came online in spring 2007).
DEPLOYMENT = datetime(2007, 4, 1)
#: The paper's disk-log window.
WINDOW_START = datetime(2007, 9, 5)
WINDOW_END = datetime(2007, 11, 28)


@dataclass(frozen=True)
class Table4Result:
    """Regenerated Table 4."""

    table: TableResult
    data: DiskSurvivalData
    fit: WeibullFit
    failures_in_window: int

    def format(self) -> str:
        """Render the failure-day table and the survival-analysis line."""
        lo, hi = self.fit.shape_confidence_interval()
        return (
            self.table.format()
            + f"\nWeibull regression (log relative-hazard form): shape = "
            + f"{self.fit.shape:.7f} (se of log-shape ~ {self.fit.se_log_shape:.7f},"
            + f" se of shape ~ {self.fit.se_shape:.7f})"
            + f"\n95% CI for the shape: [{lo:.3f}, {hi:.3f}]   "
            + f"(paper: 0.6963571 with sd 0.1923109; ground truth 0.7)"
            + f"\nimplied MTBF {self.fit.mtbf_hours:,.0f} h, AFR {100*self.fit.afr:.2f}%"
        )


def table4_cell(params: CFSParameters | None = None, seed: int = 496) -> SweepCell:
    """Table 4 as a sweep cell (fleet survival dataset + Weibull re-fit)."""
    return SweepCell("table4", run_table4, (params, seed))


def run_table4(
    params: CFSParameters | None = None, seed: int = 496
) -> Table4Result:
    """Regenerate Table 4 from a synthetic fleet-survival dataset."""
    params = params if params is not None else abe_parameters()
    rng = make_generator(seed, "table4")
    horizon_hours = (WINDOW_END - DEPLOYMENT).total_seconds() / 3600.0
    window_start_hours = (WINDOW_START - DEPLOYMENT).total_seconds() / 3600.0

    data = disk_survival_dataset(
        n_slots=params.n_disks,
        lifetime=params.disk_lifetime,
        horizon_hours=horizon_hours,
        rng=rng,
    )
    fit = fit_weibull_censored(data.durations, data.observed)

    in_window = data.failures_in_window(window_start_hours, horizon_hours)
    by_day: dict[date, int] = {}
    for hours in in_window:
        day = (DEPLOYMENT + timedelta(hours=float(hours))).date()
        by_day[day] = by_day.get(day, 0) + 1
    rows = tuple(
        (day.strftime("%m/%d/%y"), str(count)) for day, count in sorted(by_day.items())
    )
    table = TableResult(
        "Table 4",
        "Disk failure log from 09/05/2007 to 11/28/2007 "
        f"(n = {params.n_disks} disks; {len(in_window)} failures in window)",
        ("Date", "Failed disks"),
        rows,
    )
    return Table4Result(
        table=table,
        data=data,
        fit=fit,
        failures_in_window=len(in_window),
    )
