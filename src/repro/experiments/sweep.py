"""Sweep-cell orchestration: schedule independent experiment cells.

Every figure and table of the paper is a *grid* of independent cells —
one (configuration, scale-step) point of a storage sweep, one composed
cluster study, one synthesized-log analysis.  PR 1 parallelized the
replications *inside* one cell; this module parallelizes the cells
themselves, which is where the real wall-clock of a whole-figure
regeneration lives (a Figure 2 run is 50 cells of 8 replications each).

A :class:`SweepCell` names a module-level function plus picklable
arguments; :func:`run_sweep` executes the cells of a grid either
serially (in grid order) or across a supervised worker pool
(:func:`~repro.core.resilience.run_tasks_supervised`: per-cell
retry/backoff, worker-crash recovery, timeout watchdog, optional
``on_error="collect"`` partial results and a ``checkpoint_dir``
journal for resume-after-kill).  The determinism contract mirrors
:mod:`repro.core.parallel`:

* a cell function must be a **pure function of its arguments** — any
  randomness must come from seeds passed in the arguments (the
  regenerators derive one base seed per cell from the seed tree, e.g.
  ``base_seed + 1000 * config_index + step``), never from global state;
* therefore a cell's result does not depend on *where* or *in what
  order* cells execute, and ``run_sweep(cells, n_jobs=k)`` returns
  results **bit-identical to serial execution for any k** (asserted
  float-for-float by ``tests/test_sweep.py``);
* with more cells than workers, cells run their replications serially
  (``n_jobs=1`` inside the cell): cell-level scheduling already
  saturates the pool.  With more workers than cells (cores >> grid),
  :func:`run_sweep` splits the surplus *into* the cells — two-level
  (cells × replications) parallelism from the same grid, still
  bit-identical to serial because replication ``k`` always draws from
  stream ``k`` (see the ``nested`` parameter).

:func:`replication_cell` builds the most common cell shape — one
:class:`~repro.core.parallel.ReplicationSpec` study summarized as an
:class:`~repro.core.experiment.ExperimentResult` — and each regenerator
module exposes a ``*_cells()`` builder so whole-report runs
(:func:`repro.experiments.run_all`, ``python -m repro all --jobs -1``)
can flatten every table and figure into one grid and schedule it as a
single pool of ~60 cells.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Mapping, Sequence

from ..core.errors import SimulationError
from ..core.experiment import ExperimentResult, replicate_runs
from ..core.parallel import (
    ReplicationSpec,
    build_setup_cached,
    pool_context,
    resolve_n_jobs,
)
from ..core.resilience import (
    CellFailure,
    ChaosPolicy,
    RetryPolicy,
    run_tasks_supervised,
)

__all__ = [
    "SweepCell",
    "SweepResult",
    "cell_digest",
    "replication_cell",
    "run_sweep",
]


@dataclass(frozen=True)
class SweepCell:
    """One independent cell of an experiment grid.

    Attributes
    ----------
    key:
        Hashable identifier, unique within a grid (e.g.
        ``("figure2", config_index, step)``).  Results are addressed by
        key, so scheduling order never leaks into assembly.
    fn:
        Module-level callable executing the cell.  It must be importable
        (workers unpickle it by qualified name) and a pure function of
        its arguments — all randomness seeded through ``args``/``kwargs``.
    args / kwargs:
        Picklable call arguments.
    inner_jobs_arg:
        Name of the keyword argument through which the cell accepts
        *within-cell* parallelism (e.g. ``"n_jobs"`` for replication
        cells), or ``None`` when the cell is indivisible.  The cell's
        result must not depend on that argument's value — only its
        wall-clock does — which is what lets :func:`run_sweep` split
        surplus workers into the cells (nested parallelism) without
        perturbing results.
    """

    key: object
    fn: Callable
    args: tuple = ()
    kwargs: Mapping = field(default_factory=dict)
    inner_jobs_arg: str | None = None

    def execute(self) -> object:
        """Run the cell in the current process."""
        return self.fn(*self.args, **dict(self.kwargs))

    def with_inner_jobs(self, n_jobs: int) -> "SweepCell":
        """A copy of this cell using ``n_jobs`` within-cell workers.

        Returns ``self`` unchanged when the cell is indivisible or its
        inner parallelism was set explicitly (anything but the serial
        default) by the grid builder.
        """
        if self.inner_jobs_arg is None:
            return self
        if self.kwargs.get(self.inner_jobs_arg, 1) != 1:
            return self
        kwargs = {**dict(self.kwargs), self.inner_jobs_arg: int(n_jobs)}
        return replace(self, kwargs=kwargs)


class SweepResult(dict):
    """Results of one sweep: a dict keyed by cell key, in grid order.

    Plain mapping semantics (indexing, iteration, ``values()`` — all in
    grid order, since insertion order is grid order) with a lookup error
    that names the available cells.

    Under ``run_sweep(..., on_error="collect")`` a failed cell is stored
    as a :class:`~repro.core.resilience.CellFailure` record instead of a
    result.  Indexing a failed cell raises a
    :class:`~repro.core.errors.SimulationError` naming the underlying
    error (so assembly code cannot silently treat a failure record as
    data); iteration and ``values()`` expose the records as stored.  Use
    :attr:`failures` / :attr:`completed` to split a partial sweep.
    """

    def __getitem__(self, key: object) -> object:
        try:
            value = super().__getitem__(key)
        except KeyError:
            raise KeyError(
                f"no sweep cell {key!r}; available: {list(self)}"
            ) from None
        if isinstance(value, CellFailure):
            raise SimulationError(
                f"sweep cell {key!r} failed after {value.attempts} "
                f"attempt(s): {value.error_type}: {value.message}"
            )
        return value

    @property
    def failures(self) -> dict:
        """``key -> CellFailure`` for every cell that exhausted retries."""
        return {
            k: v
            for k, v in self.items()
            if isinstance(v, CellFailure)
        }

    @property
    def completed(self) -> dict:
        """``key -> result`` for every cell that produced a result."""
        return {
            k: v
            for k, v in self.items()
            if not isinstance(v, CellFailure)
        }


def _run_replication_cell(
    spec: ReplicationSpec,
    hours: float,
    n_replications: int,
    warmup: float,
    confidence: float,
    n_jobs: int = 1,
    stopping=None,
) -> ExperimentResult:
    """Execute one replication-study cell (in whatever process hosts it).

    The spec rebuilds the simulator/rewards/metrics — through the
    per-process setup cache
    (:func:`~repro.core.parallel.build_setup_cached`), so a worker that
    already compiled this spec's program (an earlier cell of the same
    study, or a pool that forked off it) reuses it instead of paying
    model construction + table compilation again.  Replication ``k``
    draws from stream ``(base_seed, "run", k)`` exactly as a direct
    serial :func:`~repro.core.experiment.replicate_runs` call would —
    cache reuse resets the stream counter — so the cell's samples are
    bit-identical however the cell is scheduled, wherever its setup was
    built, and for any inner ``n_jobs``.
    """
    setup, _metrics = build_setup_cached(spec)
    return replicate_runs(
        setup.simulator,
        hours,
        n_replications=n_replications,
        warmup=warmup,
        rewards=setup.rewards,
        traces_factory=setup.traces_factory,
        extra_metrics=setup.extra_metrics,
        confidence=confidence,
        n_jobs=n_jobs,
        spec=spec if n_jobs != 1 else None,
        stopping=stopping,
    )


def replication_cell(
    key: object,
    spec: ReplicationSpec,
    hours: float,
    n_replications: int,
    *,
    warmup: float = 0.0,
    confidence: float = 0.95,
    n_jobs: int = 1,
    stopping=None,
) -> SweepCell:
    """Build the standard cell: one replicated study from a picklable spec.

    The cell result is an :class:`~repro.core.experiment.ExperimentResult`
    carrying the per-replication samples of every metric the spec's
    rewards define.  ``n_jobs`` parallelizes the replications *inside*
    the cell (default serial): useful when a grid has fewer cells than
    the host has cores (e.g. the 3-cell ``calibrate`` command), since
    cell-level scheduling alone cannot use the spare workers.

    ``stopping`` (a :class:`~repro.core.stopping.StoppingRule`) makes
    the cell adaptive: replications run in deterministic rounds until
    the watched metrics' relative CI half-widths reach the rule's
    target, with ``n_replications`` as the cap.  The stopping point is
    a pure function of the cell's samples, so the cell stays
    bit-identical however it is scheduled, and its digest still
    excludes only the inner worker split.  The kwarg is added to the
    cell only when set, so grids without a rule keep their existing
    checkpoint digests (resume compatibility across versions).
    """
    kwargs: dict[str, object] = {"n_jobs": int(n_jobs)}
    if stopping is not None:
        kwargs["stopping"] = stopping
    return SweepCell(
        key,
        _run_replication_cell,
        (
            spec,
            float(hours),
            int(n_replications),
            float(warmup),
            float(confidence),
        ),
        kwargs,
        inner_jobs_arg="n_jobs",
    )


def _execute_cell(cell: SweepCell) -> object:
    """Supervised worker entry: run one cell in whatever process hosts it."""
    return cell.execute()


def cell_digest(cell: SweepCell) -> str:
    """Content digest identifying a cell's *result*, for checkpointing.

    Hashes the key, the cell function's qualified name and the seeded
    arguments — everything the result depends on — but **excludes** the
    ``inner_jobs_arg`` keyword: a cell's result is independent of its
    within-cell worker split by contract, so a grid checkpointed under
    ``--jobs 8`` resumes cleanly under ``--jobs 1`` (and vice versa).
    Argument identity goes through :mod:`pickle` (functions hash by
    qualified name, not by object address), so equal cells built by
    separate processes produce equal digests.
    """
    kwargs = dict(cell.kwargs)
    kwargs.pop(cell.inner_jobs_arg, None)
    fn = cell.fn
    payload = pickle.dumps(
        (
            "sweep-cell-v1",
            cell.key,
            f"{fn.__module__}.{getattr(fn, '__qualname__', fn.__name__)}",
            cell.args,
            sorted(kwargs.items()),
        )
    )
    return hashlib.sha256(payload).hexdigest()


class _CheckpointJournal:
    """Per-cell result journal backing ``run_sweep(checkpoint_dir=...)``.

    One file per completed cell, named by :func:`cell_digest`: a header
    line carrying the SHA-256 of the pickled payload, then the payload.
    Writes are atomic (temp file + :func:`os.replace`), so a run killed
    mid-write never leaves a truncated entry.  ``load`` verifies the
    payload digest before unpickling, so a truncated or garbled entry —
    including bit corruption that would still unpickle — is detected,
    reported with one :class:`RuntimeWarning`, and treated as absent:
    the cell recomputes, which is bit-identical by the pure-cell
    contract.  Headerless files are read as legacy plain-pickle entries
    (journals written before the digest framing).  Failed cells are
    never journaled: a resumed run retries them.
    """

    _MISS = object()
    _MAGIC = b"repro-ckpt/sha256:"

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, cell: SweepCell) -> Path:
        return self.directory / f"{cell_digest(cell)}.pkl"

    def _corrupt(self, cell: SweepCell, path: Path, reason: str) -> object:
        warnings.warn(
            f"checkpoint entry {path.name} for cell {cell.key!r} is "
            f"corrupt ({reason}); recomputing the cell",
            RuntimeWarning,
            stacklevel=4,
        )
        return self._MISS

    def load(self, cell: SweepCell) -> object:
        """The journaled result, or ``_MISS`` when absent/unreadable."""
        path = self._path(cell)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except FileNotFoundError:
            return self._MISS
        except OSError as exc:
            return self._corrupt(cell, path, f"unreadable: {exc}")
        if blob.startswith(self._MAGIC):
            header, sep, payload = blob.partition(b"\n")
            digest = header[len(self._MAGIC):].decode("ascii", "replace")
            if not sep:
                return self._corrupt(cell, path, "truncated header")
            if hashlib.sha256(payload).hexdigest() != digest:
                return self._corrupt(cell, path, "payload digest mismatch")
        else:
            payload = blob
        try:
            return pickle.loads(payload)
        except Exception as exc:
            # Unreadable entry (corrupt payload, stale class): recompute.
            return self._corrupt(
                cell, path, f"unpicklable: {type(exc).__name__}: {exc}"
            )

    def store(self, cell: SweepCell, result: object) -> None:
        path = self._path(cell)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        payload = pickle.dumps(result)
        header = self._MAGIC + hashlib.sha256(payload).hexdigest().encode()
        with open(tmp, "wb") as fh:
            fh.write(header + b"\n" + payload)
        os.replace(tmp, path)


def run_sweep(
    cells: Sequence[SweepCell],
    *,
    n_jobs: int | None = 1,
    nested: bool = True,
    on_error: str = "raise",
    retry: RetryPolicy | None = None,
    chaos: ChaosPolicy | None = None,
    checkpoint_dir: str | os.PathLike | None = None,
) -> SweepResult:
    """Execute a grid of independent cells, serially or across processes.

    Parameters
    ----------
    cells:
        The grid.  Keys must be unique; cells must be picklable when
        ``n_jobs > 1`` (module-level ``fn``, picklable arguments).
    n_jobs:
        Worker processes scheduling whole cells (1 = serial in grid
        order, -1 = all cores).  Because every cell is a pure function
        of its seeded arguments, results are bit-identical for any
        value; only wall-clock changes.  Cells are dispatched one future
        at a time so a grid mixing cheap ABE points with expensive
        petascale points load-balances dynamically.
    nested:
        Nested parallelism policy for hosts with more workers than
        cells: when ``n_jobs`` exceeds the grid size, the surplus is
        split *into* the cells — each divisible cell (one that names an
        ``inner_jobs_arg``, e.g. every :func:`replication_cell`) runs
        its replications across ``n_jobs // len(cells)`` workers of its
        own, from the same grid, while cell-level scheduling uses one
        worker per cell.  Replication ``k`` draws from stream ``k``
        whatever the split, so results stay **bit-identical to serial
        execution for any (outer, inner) division**
        (``tests/test_sweep.py``).  Pass ``nested=False`` to keep the
        historical cap of one worker per cell.
    on_error:
        ``"raise"`` (default) — the first cell that exhausts its retries
        aborts the sweep with a chained
        :class:`~repro.core.errors.SimulationError`.  ``"collect"`` —
        failed cells become :class:`~repro.core.resilience.CellFailure`
        records inside the returned :class:`SweepResult` while every
        healthy cell still completes (partial-result semantics for long
        overnight grids).
    retry:
        Per-cell :class:`~repro.core.resilience.RetryPolicy` (bounded
        retries, exponential backoff with deterministic jitter, optional
        per-attempt ``timeout_s``).  Default: 3 attempts.  Retried and
        crash-resubmitted cells reproduce the undisturbed result exactly
        (cells are pure functions of their seeded arguments).
    chaos:
        Deterministic fault injection
        (:class:`~repro.core.resilience.ChaosPolicy`) for the
        fault-injection suites; ``None`` honors the process-wide
        ``REPRO_CHAOS`` environment policy.
    checkpoint_dir:
        Directory for the per-cell checkpoint journal.  As each cell
        completes, its result is journaled (atomically) under a content
        digest of the cell; a later ``run_sweep`` over the same grid and
        the same directory loads journaled cells instead of re-executing
        them — resume-after-kill for whole-figure regenerations (CLI:
        ``--checkpoint-dir`` / ``--resume``).  The digest excludes the
        within-cell worker split, so a grid may resume under a different
        ``n_jobs``.

    Execution is supervised (:mod:`repro.core.resilience`) for every
    ``n_jobs``: a worker crash (``BrokenProcessPool``) rebuilds the pool
    and resubmits only the unfinished cells; pool-creation failure
    degrades to serial in-process execution with a ``RuntimeWarning``.
    Results — full or resumed, serial or pooled, crashed-and-recovered
    or undisturbed — are bit-identical by the pure-cell contract.
    """
    cells = list(cells)
    keys = [c.key for c in cells]
    if len(set(keys)) != len(keys):
        dupes = sorted({repr(k) for k in keys if keys.count(k) > 1})
        raise SimulationError(f"duplicate sweep cell keys: {dupes}")

    jobs = resolve_n_jobs(n_jobs)
    if nested and cells and jobs > len(cells):
        inner = jobs // len(cells)
        if inner > 1:
            cells = [c.with_inner_jobs(inner) for c in cells]

    journal = (
        _CheckpointJournal(checkpoint_dir) if checkpoint_dir is not None else None
    )
    done: dict[object, object] = {}
    todo = cells
    if journal is not None:
        todo = []
        for cell in cells:
            hit = journal.load(cell)
            if hit is _CheckpointJournal._MISS:
                todo.append(cell)
            else:
                done[cell.key] = hit

    outcomes: dict[object, object] = {}
    if todo:
        by_key = {c.key: c for c in todo}
        on_complete = (
            (lambda key, result: journal.store(by_key[key], result))
            if journal is not None
            else None
        )
        pooled = jobs > 1 and len(todo) > 1
        outcomes = run_tasks_supervised(
            [(c.key, c) for c in todo],
            _execute_cell,
            n_jobs=min(jobs, len(todo)),
            # Serial grids never build a pool; don't probe start methods
            # (and possibly warn about fork) on their behalf.
            mp_context=pool_context() if pooled else None,
            retry=retry,
            chaos=chaos,
            on_error=on_error,
            on_complete=on_complete,
            failure_cls=CellFailure,
            label="sweep cell",
        )

    return SweepResult(
        (c.key, done[c.key] if c.key in done else outcomes[c.key]) for c in cells
    )
