"""Failure taxonomy of the CFS model (Section 4.3).

"The ABE's cluster suffers from failures mainly because of 3 types of
errors: hardware errors, software errors, and transient errors."  This
module centralizes the taxonomy so model builders, reward measures and
the log generator agree on names and on which components each class
touches.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["FailureClass", "FailureSite", "OUTAGE_CAUSES"]


class FailureClass(str, Enum):
    """The paper's three error classes (plus disk media failures)."""

    HARDWARE = "hardware"
    SOFTWARE = "software"
    TRANSIENT = "transient"
    DISK = "disk"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class FailureSite(str, Enum):
    """Where a failure strikes (the Figure 1 submodels)."""

    OSS = "oss"
    OSS_SAN_NW = "oss_san_nw"
    SAN_FABRIC = "san"
    DDN_CONTROLLER = "ddn_controller"
    RAID_TIER = "raid_tier"
    CLIENT_NETWORK = "client_network"
    BATCH = "batch"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class _CauseInfo:
    """Rendering info for Table 1-style outage causes."""

    label: str
    failure_class: FailureClass


#: Map from model outage sources to the cause labels Table 1 uses.
OUTAGE_CAUSES: dict[FailureSite, _CauseInfo] = {
    FailureSite.OSS: _CauseInfo("I/O hardware", FailureClass.HARDWARE),
    FailureSite.OSS_SAN_NW: _CauseInfo("I/O hardware", FailureClass.HARDWARE),
    FailureSite.SAN_FABRIC: _CauseInfo("I/O hardware", FailureClass.HARDWARE),
    FailureSite.DDN_CONTROLLER: _CauseInfo("I/O hardware", FailureClass.HARDWARE),
    FailureSite.RAID_TIER: _CauseInfo("I/O hardware", FailureClass.DISK),
    FailureSite.CLIENT_NETWORK: _CauseInfo("Network", FailureClass.TRANSIENT),
    FailureSite.BATCH: _CauseInfo("Batch system", FailureClass.SOFTWARE),
}
