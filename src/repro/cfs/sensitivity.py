"""One-at-a-time parameter sensitivity — "informed design choices".

The paper's purpose is to tell storage architects *which* knobs matter.
This module quantifies that directly: vary each Table 5 parameter across
its documented range (keeping everything else at the preset), simulate,
and rank the parameters by how much CFS availability moves — a tornado
analysis over the design space.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from ..core.errors import ParameterError
from .cluster import ClusterModel
from .parameters import CFSParameters

__all__ = ["SensitivityEntry", "SensitivityResult", "DESIGN_KNOBS", "tornado"]


@dataclass(frozen=True)
class _Knob:
    """One design parameter with its low/high design-space settings."""

    name: str
    low: Callable[[CFSParameters], CFSParameters]
    high: Callable[[CFSParameters], CFSParameters]
    note: str = ""


def _set(**kw) -> Callable[[CFSParameters], CFSParameters]:
    def apply(p: CFSParameters) -> CFSParameters:
        return replace(p, **kw)

    return apply


#: The knobs a storage architect actually controls, with their Table 5
#: (or Section 4.3) extremes.
DESIGN_KNOBS: tuple[_Knob, ...] = (
    _Knob(
        "oss_hw_propagation_p",
        _set(oss_hw_propagation_p=0.0),
        _set(oss_hw_propagation_p=0.09),
        "correlated OSS failures (mitigable via software robustness)",
    ),
    _Knob(
        "san_fabric_failures_per_720h",
        _set(san_fabric_failures_per_720h=0.5),
        _set(san_fabric_failures_per_720h=2.0),
        "shared-fabric hardware quality",
    ),
    _Knob(
        "oss_hw_repair_hours",
        _set(oss_hw_repair_hours=(12.0, 12.0)),
        _set(oss_hw_repair_hours=(36.0, 36.0)),
        "vendor part-replacement latency",
    ),
    _Knob(
        "oss_sw_failures_per_720h",
        _set(oss_sw_failures_per_720h=0.01),
        _set(oss_sw_failures_per_720h=0.2),
        "Lustre software robustness (fsck-class errors)",
    ),
    _Knob(
        "disk_replacement_hours",
        lambda p: replace(p, raid=p.raid.with_replacement_hours(1.0)),
        lambda p: replace(p, raid=p.raid.with_replacement_hours(12.0)),
        "disk-replacement operations",
    ),
    _Knob(
        "disk_mtbf_hours",
        _set(disk_mtbf_hours=3_000_000.0),
        _set(disk_mtbf_hours=100_000.0),
        "disk quality (AFR 0.29% .. 8.76%)",
    ),
)


@dataclass(frozen=True)
class SensitivityEntry:
    """Effect of one knob on the chosen metric."""

    name: str
    note: str
    metric_low: float
    metric_high: float
    baseline: float

    @property
    def swing(self) -> float:
        """|metric(high) − metric(low)| — the tornado bar length."""
        return abs(self.metric_high - self.metric_low)


@dataclass(frozen=True)
class SensitivityResult:
    """Tornado analysis outcome, sorted by swing (largest first)."""

    baseline: float
    metric: str
    entries: tuple[SensitivityEntry, ...]

    def ranked(self) -> tuple[SensitivityEntry, ...]:
        """Entries sorted by descending swing."""
        return tuple(sorted(self.entries, key=lambda e: -e.swing))

    def format(self) -> str:
        """Render the tornado as aligned text."""
        lines = [f"baseline {self.metric} = {self.baseline:.4f}"]
        for e in self.ranked():
            lines.append(
                f"  {e.name:<30} {e.metric_low:.4f} .. {e.metric_high:.4f}"
                f"  (swing {e.swing:.4f})  {e.note}"
            )
        return "\n".join(lines)


def tornado(
    params: CFSParameters,
    knobs: Sequence[_Knob] = DESIGN_KNOBS,
    metric: str = "cfs_availability",
    hours: float = 8760.0,
    n_replications: int = 4,
    base_seed: int = 1777,
) -> SensitivityResult:
    """One-at-a-time sensitivity of ``metric`` to each design knob."""
    if n_replications < 2:
        raise ParameterError("n_replications must be >= 2 for CI estimates")

    def measure(p: CFSParameters, seed: int) -> float:
        model = ClusterModel(p, base_seed=seed)
        return model.simulate(hours=hours, n_replications=n_replications).estimate(
            metric
        ).mean

    baseline = measure(params, base_seed)
    entries = []
    for i, knob in enumerate(knobs):
        low = measure(knob.low(params), base_seed + 10 * i + 1)
        high = measure(knob.high(params), base_seed + 10 * i + 2)
        entries.append(
            SensitivityEntry(
                name=knob.name,
                note=knob.note,
                metric_low=low,
                metric_high=high,
                baseline=baseline,
            )
        )
    return SensitivityResult(baseline=baseline, metric=metric, entries=tuple(entries))
