"""Scaling schedules from ABE to the petascale design point.

The figures scale three linked axes:

* **Figure 2** — storage size in TB, 96 TB (ABE) → 12 PB (Blue Waters);
* **Figure 3** — number of disks, 480 → 4800;
* **Figure 4** — the whole machine: DDN units 2 → 20, OSS pairs 9 → 81,
  compute nodes 1200 → 32000.

Disk counts grow 10× while storage grows 128×: the difference is the
33 %/yr disk-capacity growth the paper assumes (Table 5).  We tie the two
axes together by assigning each scale step a deployment-year offset so
that step ``k`` of ``n`` has per-disk capacity ``0.25 TB · 1.33^(y(k))``
with ``y`` interpolating from 0 (ABE, 2007 disks) to the horizon that
makes 4800 disks hold ≈ 12 PB raw (~8.2 years).
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Iterator

from ..core.errors import ParameterError
from .parameters import CFSParameters, abe_parameters

__all__ = [
    "CAPACITY_GROWTH_PER_YEAR",
    "disk_capacity_tb",
    "scale_step",
    "scaling_series",
    "storage_axis_tb",
]

#: "Annual growth rate of disk capacity 33%" (Table 5).
CAPACITY_GROWTH_PER_YEAR = 0.33

#: ABE per-disk capacity (250 GB SATA drives).
_BASE_DISK_TB = 0.25

#: Raw petascale target at the right edge of Figure 2 (12 PB).
_TARGET_RAW_TB = 12_288.0

#: Fleet growth factor at the petascale point (480 → 4800 disks).
_MAX_FLEET_FACTOR = 10


def _horizon_years() -> float:
    """Deployment horizon that makes 4800 grown disks hold ~12 PB raw."""
    per_disk = _TARGET_RAW_TB / (480.0 * _MAX_FLEET_FACTOR)
    return math.log(per_disk / _BASE_DISK_TB) / math.log(1.0 + CAPACITY_GROWTH_PER_YEAR)


def disk_capacity_tb(years_from_abe: float) -> float:
    """Per-disk capacity after ``years_from_abe`` years of 33 %/yr growth."""
    if years_from_abe < 0.0:
        raise ParameterError(f"years_from_abe must be >= 0, got {years_from_abe}")
    return _BASE_DISK_TB * (1.0 + CAPACITY_GROWTH_PER_YEAR) ** years_from_abe


def scale_step(k: int, n_steps: int = 10, base: CFSParameters | None = None) -> CFSParameters:
    """Parameter set for scale step ``k`` (1 = ABE, ``n_steps`` = petascale).

    Linear interpolation of component counts between the ABE and petascale
    design points, with disk capacity following the growth schedule:

    ======================  =========  ==============
    quantity                k = 1      k = n_steps
    ======================  =========  ==============
    DDN units               2          20
    disks                   480        4800
    OSS pairs               9          81
    compute nodes           1200       32000
    per-disk TB             0.25       ≈ 2.56
    ======================  =========  ==============
    """
    if not 1 <= k <= n_steps:
        raise ParameterError(f"need 1 <= k <= n_steps, got k={k}, n_steps={n_steps}")
    if n_steps < 2:
        raise ParameterError(f"n_steps must be >= 2, got {n_steps}")
    base = base if base is not None else abe_parameters()
    frac = (k - 1) / (n_steps - 1)
    fleet_factor = 1 + (_MAX_FLEET_FACTOR - 1) * frac
    n_ddn = max(1, round(base.n_ddn_units * fleet_factor))
    n_pairs = round(9 + (81 - 9) * frac)
    n_nodes = round(1200 + (32_000 - 1200) * frac)
    years = _horizon_years() * frac
    name = base.name if k == 1 else f"{base.name}-x{fleet_factor:.2g}"
    return replace(
        base,
        name=name,
        n_ddn_units=n_ddn,
        n_oss_pairs=n_pairs,
        n_compute_nodes=n_nodes,
        disk_capacity_tb=disk_capacity_tb(years),
    )


def scaling_series(
    n_steps: int = 10, base: CFSParameters | None = None
) -> Iterator[CFSParameters]:
    """Yield the full ABE → petascale parameter series."""
    for k in range(1, n_steps + 1):
        yield scale_step(k, n_steps, base)


def storage_axis_tb(n_steps: int = 10, base: CFSParameters | None = None) -> list[float]:
    """Raw-storage x-axis values (TB) for the Figure 2 sweep."""
    return [p.raw_storage_tb for p in scaling_series(n_steps, base)]
