"""Model parameters (the paper's Table 5) and the ABE / petascale presets.

Parameter provenance, following Table 5's footnotes:

* ``(1)`` log-file analysis — disk Weibull shape (Table 4), job rates
  (Table 3), transient rates (Tables 2–3), component counts;
* ``(2)`` data specifications from literature and hardware white papers —
  MTBF/AFR ranges, disk-capacity growth (33 %/yr);
* ``(3)`` discussions with NCSA cluster administrators — repair times
  (disks 1–12 h, hardware 12–36 h, software 2–6 h).

Calibration notes (see DESIGN.md §5 and EXPERIMENTS.md): the split between
*shared* outage sources (core SAN fabric, whose failures take the whole
CFS down regardless of scale) and *per-OSS-pair* sources (hardware faults
escaping fail-over via correlated propagation, Lustre software errors
needing fsck) is chosen so the composed model reproduces both Figure 4
anchors — CFS availability ≈ 0.972 at ABE scale and ≈ 0.909 at the
petascale design point — and Table 1's outage mix.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..core.distributions import HOURS_PER_YEAR, Weibull
from ..core.errors import ParameterError
from ..raid.config import RAID6_8P2, RAIDConfig

__all__ = ["CFSParameters", "abe_parameters", "petascale_parameters", "TABLE5_RANGES"]


#: Table 5 validation ranges: parameter -> (min, max) in model units.
TABLE5_RANGES: dict[str, tuple[float, float]] = {
    "disk_mtbf_hours": (100_000.0, 3_000_000.0),
    "disk_afr": (0.0029, 0.0876),  # 0.29%..8.76% (the paper prints 0.40-8.6)
    "disk_weibull_shape": (0.5, 1.0),
    "n_ddn_units": (1, 20),
    "n_compute_nodes": (1200, 32_000),
    "disk_replacement_hours": (1.0, 12.0),
    "hardware_repair_hours": (12.0, 36.0),
    "software_repair_hours": (2.0, 6.0),
    "job_rate_per_hour": (12.0, 15.0),
    "hardware_failures_per_720h": (0.05, 2.0),
    "software_failures_per_720h": (0.01, 2.0),
    "n_oss_pairs": (2, 81),
}


@dataclass(frozen=True)
class CFSParameters:
    """Complete parameterization of the cluster-file-system model.

    Times are hours; rates are per hour unless the name says otherwise.
    """

    name: str = "ABE"

    # ----- storage hardware (DDN units, Section 3.2) ------------------
    raid: RAIDConfig = RAID6_8P2
    disk_weibull_shape: float = 0.7
    disk_mtbf_hours: float = 300_000.0  # AFR 2.92%, the Section 5.1 fit
    n_ddn_units: int = 2
    tiers_per_ddn: int = 24  # 8 FC ports x 3 tiers (S2A9550)
    disk_capacity_tb: float = 0.25
    ddn_ctrl_failures_per_720h: float = 0.1  # per controller member
    ddn_ctrl_repair_hours: tuple[float, float] = (12.0, 36.0)
    ddn_ctrl_propagation_p: float = 0.005
    disk_propagation_p: float = 0.05  # intra-tier correlated disk faults
    equilibrium_start: bool = True

    # ----- OSS layer (metadata + file servers, Section 3.1) -----------
    n_oss_pairs: int = 9  # 1 metadata pair + 8 scratch pairs
    oss_hw_failures_per_720h: float = 0.25  # per pair member (srv + HBA/ports)
    oss_hw_repair_hours: tuple[float, float] = (12.0, 36.0)
    oss_hw_propagation_p: float = 0.045
    oss_sw_failures_per_720h: float = 0.05  # per pair: Lustre fsck-class
    oss_sw_repair_hours: tuple[float, float] = (2.0, 6.0)

    # ----- OSS <-> DDN network (OSS_SAN_NW) and SAN fabric ------------
    oss_san_nw_failures_per_720h: float = 0.25  # per redundant switch member
    oss_san_nw_repair_hours: tuple[float, float] = (12.0, 36.0)
    oss_san_nw_propagation_p: float = 0.02
    san_fabric_failures_per_720h: float = 1.17  # shared fabric / system-level
    san_fabric_repair_hours: tuple[float, float] = (8.0, 16.0)

    # ----- client side (CLIENT submodel) -------------------------------
    n_compute_nodes: int = 1200
    nodes_per_switch: int = 75
    switch_transient_per_720h: float = 4.0  # calibrated to Table 3 (2.8% kills)
    switch_transient_minutes: tuple[float, float] = (3.0, 10.0)
    spine_transient_per_720h: float = 1.0
    spine_transient_minutes: tuple[float, float] = (3.0, 10.0)

    # ----- workload (Table 3) ------------------------------------------
    job_rate_per_hour: float = 13.0
    job_mean_duration_hours: float = 4.0
    job_io_exposure_hours: float = 1.6  # time per job vulnerable to CFS loss

    # ----- standby-spare OSS option (Figure 4's 4th curve) -------------
    n_spare_oss: int = 0
    spare_swap_hours: float = 4.0  # re-provision spare into the Lustre config

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check every parameter against its documented Table 5 range."""
        checks = {
            "disk_mtbf_hours": self.disk_mtbf_hours,
            "disk_afr": self.disk_afr,
            "disk_weibull_shape": self.disk_weibull_shape,
            "n_ddn_units": self.n_ddn_units,
            "n_compute_nodes": self.n_compute_nodes,
            "disk_replacement_hours": self.raid.disk_replacement_hours,
            "hardware_repair_hours": sum(self.oss_hw_repair_hours) / 2.0,
            "software_repair_hours": sum(self.oss_sw_repair_hours) / 2.0,
            "job_rate_per_hour": self.job_rate_per_hour,
            "hardware_failures_per_720h": self.oss_hw_failures_per_720h,
            "software_failures_per_720h": self.oss_sw_failures_per_720h,
            "n_oss_pairs": self.n_oss_pairs,
        }
        for key, value in checks.items():
            lo, hi = TABLE5_RANGES[key]
            if not lo <= value <= hi:
                raise ParameterError(
                    f"{self.name}: {key}={value} outside Table 5 range [{lo}, {hi}]"
                )
        for pair_name, (lo, hi) in {
            "oss_hw_repair_hours": self.oss_hw_repair_hours,
            "oss_sw_repair_hours": self.oss_sw_repair_hours,
            "ddn_ctrl_repair_hours": self.ddn_ctrl_repair_hours,
            "oss_san_nw_repair_hours": self.oss_san_nw_repair_hours,
            "san_fabric_repair_hours": self.san_fabric_repair_hours,
            "switch_transient_minutes": self.switch_transient_minutes,
            "spine_transient_minutes": self.spine_transient_minutes,
        }.items():
            if not 0.0 < lo <= hi:
                raise ParameterError(f"{self.name}: {pair_name}=({lo}, {hi}) invalid")
        for prob_name, p in {
            "oss_hw_propagation_p": self.oss_hw_propagation_p,
            "ddn_ctrl_propagation_p": self.ddn_ctrl_propagation_p,
            "oss_san_nw_propagation_p": self.oss_san_nw_propagation_p,
            "disk_propagation_p": self.disk_propagation_p,
        }.items():
            if not 0.0 <= p <= 1.0:
                raise ParameterError(f"{self.name}: {prob_name}={p} not a probability")
        if self.n_spare_oss < 0:
            raise ParameterError(f"{self.name}: n_spare_oss must be >= 0")
        if self.nodes_per_switch < 1:
            raise ParameterError(f"{self.name}: nodes_per_switch must be >= 1")

    # ----- derived quantities ------------------------------------------
    @property
    def disk_afr(self) -> float:
        """Annualized disk failure rate implied by the MTBF."""
        return HOURS_PER_YEAR / self.disk_mtbf_hours

    @property
    def disk_lifetime(self) -> Weibull:
        """The Weibull lifetime law: Table 4 shape, Section 5.1 MTBF."""
        return Weibull.from_mtbf(self.disk_weibull_shape, self.disk_mtbf_hours)

    @property
    def n_disks(self) -> int:
        """Total disks in the scratch partition."""
        return self.n_ddn_units * self.tiers_per_ddn * self.raid.tier_size

    @property
    def usable_storage_tb(self) -> float:
        """Usable capacity (data disks only), in TB."""
        data_fraction = self.raid.data_disks / self.raid.tier_size
        return self.n_disks * self.disk_capacity_tb * data_fraction

    @property
    def raw_storage_tb(self) -> float:
        """Raw capacity (all spindles), in TB."""
        return self.n_disks * self.disk_capacity_tb

    @property
    def n_switches(self) -> int:
        """Leaf switches in the compute fabric."""
        return max(1, math.ceil(self.n_compute_nodes / self.nodes_per_switch))

    # ----- variants -----------------------------------------------------
    def with_spare_oss(self, n_spares: int = 1, swap_hours: float | None = None) -> "CFSParameters":
        """Copy with a standby-spare OSS pool (Figure 4's 4th curve)."""
        kwargs: dict = {"n_spare_oss": n_spares, "name": f"{self.name}+spare"}
        if swap_hours is not None:
            kwargs["spare_swap_hours"] = swap_hours
        return replace(self, **kwargs)

    def with_disks(
        self,
        shape: float | None = None,
        afr: float | None = None,
        raid: RAIDConfig | None = None,
        replacement_hours: float | None = None,
    ) -> "CFSParameters":
        """Copy with a different disk-failure configuration (Figure 2 tuples)."""
        kwargs: dict = {}
        label_bits = []
        if shape is not None:
            kwargs["disk_weibull_shape"] = shape
            label_bits.append(f"b={shape}")
        if afr is not None:
            kwargs["disk_mtbf_hours"] = HOURS_PER_YEAR / afr
            label_bits.append(f"afr={100*afr:.2f}%")
        new_raid = raid if raid is not None else self.raid
        if replacement_hours is not None:
            new_raid = new_raid.with_replacement_hours(replacement_hours)
        kwargs["raid"] = new_raid
        if label_bits:
            kwargs["name"] = f"{self.name}({','.join(label_bits)})"
        return replace(self, **kwargs)


def abe_parameters() -> CFSParameters:
    """The calibrated ABE preset (Sections 3–4, Table 5 column "ABE")."""
    return CFSParameters()


def petascale_parameters() -> CFSParameters:
    """The petascale (Blue Waters-class) design point.

    Table 5's upper bounds: 20 DDN units, 80 scratch OSS pairs (+1
    metadata), 32000 compute nodes, 4800 disks.  Disk capacity reflects
    the 33 %/yr growth over the deployment horizon (≈ 2.56 TB/disk, giving
    ≈ 12 PB raw — the right edge of Figure 2).
    """
    return replace(
        abe_parameters(),
        name="petascale",
        n_ddn_units=20,
        n_oss_pairs=81,
        n_compute_nodes=32_000,
        disk_capacity_tb=2.56,
    )
