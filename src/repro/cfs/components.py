"""SAN builders for the CFS submodels of Figure 1.

* ``OSS`` — fail-over pairs of metadata/file servers: hardware faults with
  fail-over + correlated propagation, plus Lustre software errors (fsck)
  that take the pair down regardless of fail-over;
* ``OSS_SAN_NW`` — the redundant switch pair between the OSSes and the
  DDN units;
* ``SAN`` — the shared fabric whose failure takes the whole CFS down
  (the system-level "I/O hardware" outages of Table 1);
* ``CLIENT`` — the compute-side network: leaf switches and the spine,
  whose transient errors drive mount-failure storms (Table 2) and job
  kills (Table 3).

Every builder returns composition nodes exporting the shared counters the
reward measures read (see :mod:`repro.cfs.measures`).

The single-place enabling predicates declare their dependency sets
(``timed(..., reads=[...])``), so the compiled engine skips read tracking
for them — this matters most for the leaf-switch transients, which are
~97 % of all events in a petascale year.  Their effects additionally
declare their marking writes (``writes=[...]``), so those completions
run as compiled gate-write kernels — precomputed slot deltas instead of
Python gate functions (see ``docs/performance.md`` Layer 5).  Both
annotations are bit-identical to the unannotated model (pinned by
``tests/test_engine_golden.py``).
"""

from __future__ import annotations

from ..core.composition import Node, join, leaf, replicate
from ..core.distributions import Exponential, Uniform
from ..core.places import LocalView
from ..core.san import SAN
from ..raid.controller import build_failover_pair_node
from ..raid.ddn import DDNUnitSpec, build_ddn_fleet_node
from .parameters import CFSParameters

__all__ = [
    "build_oss_pair_node",
    "build_oss_layer_node",
    "build_oss_san_network_node",
    "build_san_fabric_san",
    "build_client_network_node",
    "build_storage_node",
]


def _per_720h(events: float) -> Exponential:
    return Exponential.per_period(events, 720.0)


def _uniform(bounds: tuple[float, float]) -> Uniform:
    return Uniform(*bounds)


# ----------------------------------------------------------------------
# OSS layer
# ----------------------------------------------------------------------
def build_oss_software_san(params: CFSParameters, name: str = "lustre") -> SAN:
    """Lustre software-error overlay for one OSS pair.

    Software corruption (Section 4.3) is not masked by hardware fail-over:
    the file system must be brought back to a consistent state with fsck
    (2–6 h).  The shared counter ``oss_sw_down`` counts pairs currently in
    fsck; ``oss_sw_outages_total`` accumulates events.
    """
    san = SAN(name)
    san.place("sw_down", 0)
    san.place("oss_sw_down", 0)
    san.place("oss_sw_outages_total", 0)

    def fails(m: LocalView, rng) -> None:
        m["sw_down"] = 1
        m["oss_sw_down"] += 1
        m["oss_sw_outages_total"] += 1

    def repaired(m: LocalView, rng) -> None:
        m["sw_down"] = 0
        m["oss_sw_down"] -= 1

    san.timed(
        "sw_fail",
        _per_720h(params.oss_sw_failures_per_720h),
        enabled=lambda m: m["sw_down"] == 0,
        effect=fails,
        reads=["sw_down"],
        writes=[
            ("sw_down", "set", 1),
            ("oss_sw_down", "add", 1),
            ("oss_sw_outages_total", "add", 1),
        ],
    )
    san.timed(
        "fsck",
        _uniform(params.oss_sw_repair_hours),
        enabled=lambda m: m["sw_down"] == 1,
        effect=repaired,
        reads=["sw_down"],
        writes=[("sw_down", "set", 0), ("oss_sw_down", "add", -1)],
    )
    return san


def build_oss_pair_node(params: CFSParameters, name: str = "oss_pair") -> Node:
    """One OSS fail-over pair: hardware pair + software overlay.

    Exports ``pairs_down`` / ``pair_outages_total`` (hardware outages,
    named ``oss_pairs_down`` at the layer level) and ``oss_sw_down`` /
    ``oss_sw_outages_total`` (software outages), plus ``pair_down`` and
    ``down_count`` for the standby-spare logic.
    """
    hardware = build_failover_pair_node(
        _per_720h(params.oss_hw_failures_per_720h),
        _uniform(params.oss_hw_repair_hours),
        params.oss_hw_propagation_p,
        name="hw",
        member_name="server",
    )
    software = build_oss_software_san(params)
    children: list[Node] = [_Reexport(hardware, ["pair_down", "down_count"]), software]
    shared = [
        "pairs_down",
        "pair_outages_total",
        "oss_sw_down",
        "oss_sw_outages_total",
    ]
    if params.n_spare_oss > 0:
        from .spares import build_spare_dock_san

        children.append(leaf(build_spare_dock_san(params)))
        shared += ["pair_down", "spare_free", "covered_pairs", "spare_swaps_total"]
        return join(name, *children, shared=shared)
    return join(name, *children, shared=shared, exports=["pair_down", "down_count"])


class _Reexport(Node):
    """Passes extra child exports up through a composition level."""

    def __init__(self, child: Node, names: list[str]) -> None:
        self.child = child
        self.name = child.name
        self.names = list(names)

    def _flatten_into(self, ctx, prefix: str) -> dict[str, int]:
        exports = self.child._flatten_into(ctx, prefix)
        missing = [n for n in self.names if n not in exports]
        if missing:
            from ..core.errors import CompositionError

            raise CompositionError(
                f"{self.child.name!r} does not export {missing}"
            )
        return exports


def build_oss_layer_node(params: CFSParameters, name: str = "oss_layer") -> Node:
    """All OSS pairs (metadata pair + scratch pairs), fleet counters shared.

    Exported: ``pairs_down``, ``pair_outages_total``, ``oss_sw_down``,
    ``oss_sw_outages_total``.
    """
    pair = build_oss_pair_node(params)
    shared = [
        "pairs_down",
        "pair_outages_total",
        "oss_sw_down",
        "oss_sw_outages_total",
    ]
    if params.n_spare_oss > 0:
        shared += ["spare_free", "covered_pairs", "spare_swaps_total"]
    return replicate(name, pair, params.n_oss_pairs, shared=shared)


# ----------------------------------------------------------------------
# networks
# ----------------------------------------------------------------------
def build_oss_san_network_node(params: CFSParameters, name: str = "oss_san_nw") -> Node:
    """The redundant switch pair between OSSes and DDN units (``OSS_SAN_NW``).

    Exports the pair counters under network-specific names
    (``nw_pairs_down`` / ``nw_pair_outages_total``).
    """
    pair = build_failover_pair_node(
        _per_720h(params.oss_san_nw_failures_per_720h),
        _uniform(params.oss_san_nw_repair_hours),
        params.oss_san_nw_propagation_p,
        name="switchpair",
        member_name="switch",
    )
    return _Rename(
        join(name, pair, shared=["pairs_down", "pair_outages_total"]),
        {"pairs_down": "nw_pairs_down", "pair_outages_total": "nw_pair_outages_total"},
    )


class _Rename(Node):
    """Renames exported places of a child node."""

    def __init__(self, child: Node, renames: dict[str, str]) -> None:
        self.child = child
        self.name = child.name
        self.renames = dict(renames)

    def _flatten_into(self, ctx, prefix: str) -> dict[str, int]:
        exports = self.child._flatten_into(ctx, prefix)
        out = dict(exports)
        for old, new in self.renames.items():
            if old not in exports:
                from ..core.errors import CompositionError

                raise CompositionError(
                    f"rename source {old!r} not exported by {self.child.name!r}"
                )
            out[new] = out.pop(old)
        return out


def build_san_fabric_san(params: CFSParameters, name: str = "san_fabric") -> SAN:
    """The shared SAN fabric (``SAN`` in Figure 1).

    A non-redundant, system-level resource: its hardware failures are the
    Table 1 "I/O hardware" outages that take the whole file system down
    for 8–16 h while parts are replaced.  Does not scale with the number
    of OSS/DDN units — this is what keeps petascale availability at 0.909
    rather than collapsing linearly.
    """
    san = SAN(name)
    san.place("fabric_down", 0)
    san.place("fabric_outages_total", 0)

    def fails(m: LocalView, rng) -> None:
        m["fabric_down"] = 1
        m["fabric_outages_total"] += 1

    san.timed(
        "hw_fail",
        _per_720h(params.san_fabric_failures_per_720h),
        enabled=lambda m: m["fabric_down"] == 0,
        effect=fails,
        reads=["fabric_down"],
        writes=[("fabric_down", "set", 1), ("fabric_outages_total", "add", 1)],
    )
    san.timed(
        "hw_repair",
        _uniform(params.san_fabric_repair_hours),
        enabled=lambda m: m["fabric_down"] == 1,
        effect=lambda m, rng: m.__setitem__("fabric_down", 0),
        reads=["fabric_down"],
        writes=[("fabric_down", "set", 0)],
    )
    return san


# ----------------------------------------------------------------------
# client network (CLIENT submodel)
# ----------------------------------------------------------------------
def build_leaf_switch_san(params: CFSParameters, name: str = "switch") -> SAN:
    """One leaf switch serving ``nodes_per_switch`` compute nodes.

    Transient errors (Section 4.3: "temporary, but hard to diagnose ...
    causes a few minutes of unavailability") take the switch down for
    3–10 minutes; attached nodes perceive the CFS as unreachable.
    """
    san = SAN(name)
    san.place("sw_up", 1)
    san.place("switches_down", 0)
    san.place("switch_transients_total", 0)
    lo, hi = params.switch_transient_minutes

    def transient(m: LocalView, rng) -> None:
        m["sw_up"] = 0
        m["switches_down"] += 1
        m["switch_transients_total"] += 1

    def recovered(m: LocalView, rng) -> None:
        m["sw_up"] = 1
        m["switches_down"] -= 1

    san.timed(
        "transient",
        _per_720h(params.switch_transient_per_720h),
        enabled=lambda m: m["sw_up"] == 1,
        effect=transient,
        reads=["sw_up"],
        writes=[
            ("sw_up", "set", 0),
            ("switches_down", "add", 1),
            ("switch_transients_total", "add", 1),
        ],
    )
    san.timed(
        "recover",
        Uniform(lo / 60.0, hi / 60.0),
        enabled=lambda m: m["sw_up"] == 0,
        effect=recovered,
        reads=["sw_up"],
        writes=[("sw_up", "set", 1), ("switches_down", "add", -1)],
    )
    return san


def build_spine_san(params: CFSParameters, name: str = "spine") -> SAN:
    """The spine/aggregation layer between compute nodes and the CFS.

    A spine transient disconnects a large slice of the cluster at once —
    the big mount-failure storms of Table 2 (hundreds of nodes on one day).
    """
    san = SAN(name)
    san.place("spine_up", 1)
    san.place("spine_transients_total", 0)
    lo, hi = params.spine_transient_minutes

    def transient(m: LocalView, rng) -> None:
        m["spine_up"] = 0
        m["spine_transients_total"] += 1

    san.timed(
        "transient",
        _per_720h(params.spine_transient_per_720h),
        enabled=lambda m: m["spine_up"] == 1,
        effect=transient,
        reads=["spine_up"],
        writes=[("spine_up", "set", 0), ("spine_transients_total", "add", 1)],
    )
    san.timed(
        "recover",
        Uniform(lo / 60.0, hi / 60.0),
        enabled=lambda m: m["spine_up"] == 0,
        effect=lambda m, rng: m.__setitem__("spine_up", 1),
        reads=["spine_up"],
        writes=[("spine_up", "set", 1)],
    )
    return san


def build_client_network_node(params: CFSParameters, name: str = "client") -> Node:
    """The CLIENT submodel: replicated leaf switches + the spine.

    Exports ``switches_down``, ``switch_transients_total``, ``spine_up``,
    ``spine_transients_total``.
    """
    switches = replicate(
        "switches",
        build_leaf_switch_san(params),
        params.n_switches,
        shared=["switches_down", "switch_transients_total"],
    )
    spine = build_spine_san(params)
    return join(
        name,
        switches,
        spine,
        shared=["switches_down", "switch_transients_total"],
        exports=["spine_up", "spine_transients_total"],
    )


# ----------------------------------------------------------------------
# storage (DDN fleet)
# ----------------------------------------------------------------------
def build_storage_node(params: CFSParameters, name: str = "ddn_units") -> Node:
    """The DDN fleet, parameterized from :class:`CFSParameters`."""
    spec = DDNUnitSpec(
        raid=params.raid,
        tiers_per_unit=params.tiers_per_ddn,
        disk_lifetime=params.disk_lifetime,
        controller_failure=_per_720h(params.ddn_ctrl_failures_per_720h),
        controller_repair=_uniform(params.ddn_ctrl_repair_hours),
        controller_propagation=params.ddn_ctrl_propagation_p,
        disk_propagation_p=params.disk_propagation_p,
        disk_capacity_tb=params.disk_capacity_tb,
        equilibrium_start=params.equilibrium_start,
    )
    return build_ddn_fleet_node(spec, params.n_ddn_units, name=name)
