"""The composed cluster model (Figure 1) and its simulation facade.

Composition tree, mirroring the paper exactly::

    CLUSTER
    ├── CLIENT            leaf switches (replicated) + spine
    └── CFS_UNIT
        ├── OSS           metadata + file-server fail-over pairs (replicated)
        ├── OSS_SAN_NW    redundant switch pair between OSS and DDN
        ├── SAN           shared fabric
        └── DDN_UNITS     DDN units (replicated): controller pair +
                          RAID6 tiers (replicated) of disks (replicated)

:class:`ClusterModel` flattens the tree once and exposes
:meth:`ClusterModel.simulate`, which runs replications and returns the
paper's measures with confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.composition import FlatModel, Node, flatten, join
from ..core.experiment import Estimate, ExperimentResult, replicate_runs
from ..core.parallel import ReplicationSetup, ReplicationSpec
from ..core.simulation import Simulator
from .components import (
    build_client_network_node,
    build_oss_layer_node,
    build_oss_san_network_node,
    build_san_fabric_san,
    build_storage_node,
)
from .measures import build_measures, build_storage_measures
from .parameters import CFSParameters

__all__ = [
    "ClusterModel",
    "StorageModel",
    "ClusterResult",
    "build_cluster_node",
    "build_storage_only_model",
    "DEFAULT_HOURS",
]

#: Default observation window per replication (one simulated year).
DEFAULT_HOURS = 8760.0


def build_cluster_node(params: CFSParameters) -> Node:
    """Build the full CLUSTER composition tree from parameters."""
    cfs_unit = join(
        "cfs",
        build_oss_layer_node(params),
        build_oss_san_network_node(params),
        build_san_fabric_san(params),
        build_storage_node(params),
    )
    client = build_client_network_node(params)
    return join("cluster", client, cfs_unit)


def build_storage_only_model(params: CFSParameters) -> FlatModel:
    """Flatten only the DDN fleet (Figures 2 and 3 isolate the storage:
    "we evaluate the DDN_UNITS models ... in isolation from failures of
    other components of the SAN")."""
    return flatten(build_storage_node(params))


def _make_cluster_simulator(model: FlatModel, base_seed: int) -> Simulator:
    """The cluster/storage studies' simulator configuration, in one place.

    ``batch_dynamic=True``: the disk fleet draws its lifetimes through a
    marking-dependent callable (equilibrium residual for in-service
    disks, fresh Weibull after replacement), so block-serving dynamic
    draws is where the petascale model's sampling time lives.  Serial
    and parallel runs must agree bit-for-bit, so every path that builds
    a cluster or storage simulator — :class:`ClusterModel`,
    :class:`StorageModel` and the worker-side :func:`_cluster_setup` /
    :func:`_storage_setup` — goes through this helper.
    """
    return Simulator(model, base_seed=base_seed, batch_dynamic=True)


def _cluster_setup(
    params: CFSParameters,
    base_seed: int,
    availability_probes: tuple[float, ...] | None = None,
) -> ReplicationSetup:
    """Module-level factory so parallel workers can rebuild the study."""
    model = flatten(build_cluster_node(params))
    measures = build_measures(
        model, params, availability_probes=availability_probes
    )
    return ReplicationSetup(
        _make_cluster_simulator(model, base_seed),
        measures.rewards,
        measures.traces_factory,
        measures.extra_metrics,
    )


def _storage_setup(params: CFSParameters, base_seed: int) -> ReplicationSetup:
    """Module-level factory for the storage-isolation study."""
    model = build_storage_only_model(params)
    measures = build_storage_measures(model)
    return ReplicationSetup(
        _make_cluster_simulator(model, base_seed),
        measures.rewards,
        None,
        measures.extra_metrics,
    )


@dataclass(frozen=True)
class ClusterResult:
    """Replicated-measure estimates for one cluster configuration."""

    params: CFSParameters
    experiment: ExperimentResult

    def estimate(self, metric: str) -> Estimate:
        """Student-t estimate for any collected metric."""
        return self.experiment.estimate(metric)

    @property
    def storage_availability(self) -> Estimate:
        """Fraction of time all tiers and DDN controllers are up."""
        return self.estimate("storage_availability")

    @property
    def cfs_availability(self) -> Estimate:
        """The paper's CFS-availability (Figure 4, middle curves)."""
        return self.estimate("cfs_availability")

    @property
    def cluster_utility(self) -> Estimate:
        """The paper's CU (Figure 4, lowest curve)."""
        return self.estimate("cluster_utility")

    @property
    def disks_replaced_per_week(self) -> Estimate:
        """Figure 3's reward."""
        return self.estimate("disks_replaced_per_week")

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"{self.params.name}: {self.params.usable_storage_tb:.0f} TB usable"]
        available = set(self.experiment.metrics)
        for metric in (
            "storage_availability",
            "cfs_availability",
            "perceived_availability",
            "cluster_utility",
            "disks_replaced_per_week",
        ):
            if metric in available:
                lines.append(f"  {metric:<26} {self.experiment.estimate(metric)}")
        return "\n".join(lines)


class ClusterModel:
    """Flattened, simulate-ready cluster model.

    Parameters
    ----------
    params:
        Full model parameterization (see :class:`CFSParameters`).
    base_seed:
        Root RNG entropy; replications derive independent streams.
    """

    def __init__(self, params: CFSParameters, base_seed: int = 2008) -> None:
        self.params = params
        self.base_seed = int(base_seed)
        self.model = flatten(build_cluster_node(params))
        self.simulator = _make_cluster_simulator(self.model, base_seed)
        self.measures = build_measures(self.model, params)

    @staticmethod
    def spec(
        params: CFSParameters,
        base_seed: int,
        availability_probes: tuple[float, ...] | None = None,
    ) -> ReplicationSpec:
        """Picklable study recipe *without* building the model locally.

        Sweep-cell builders use this to describe a grid of cluster
        studies cheaply: flattening the composed model (~10 ms for ABE,
        ~120 ms at petascale) happens once in whichever process executes
        the cell, never in the scheduling parent.
        """
        return ReplicationSpec(
            _cluster_setup, (params, int(base_seed), availability_probes)
        )

    def replication_spec(
        self, availability_probes: tuple[float, ...] | None = None
    ) -> ReplicationSpec:
        """Picklable recipe for rebuilding this study in worker processes."""
        return ClusterModel.spec(self.params, self.base_seed, availability_probes)

    def simulate(
        self,
        hours: float = DEFAULT_HOURS,
        n_replications: int = 10,
        warmup: float = 0.0,
        n_jobs: int | None = 1,
        availability_probes=None,
        stopping=None,
    ) -> ClusterResult:
        """Run replications and collect the paper's measures.

        ``n_jobs`` runs replications across processes (-1 = all cores);
        results are bit-identical to serial execution for any value.
        ``availability_probes`` adds instant-of-time CFS-availability
        samples at the given hours; each probe becomes a
        ``cfs_availability@t`` metric, so the result carries a CI'd
        availability timeline A(t).  ``stopping`` (a
        :class:`~repro.core.stopping.StoppingRule`) stops replicating as
        soon as the watched metrics reach their relative-CI target,
        with ``n_replications`` as the cap.
        """
        if availability_probes is not None:
            probes = tuple(float(t) for t in availability_probes)
            measures = build_measures(
                self.model, self.params, availability_probes=probes
            )
            spec = self.replication_spec(probes)
        else:
            measures = self.measures
            spec = self.replication_spec()
        experiment = replicate_runs(
            self.simulator,
            hours,
            n_replications=n_replications,
            warmup=warmup,
            rewards=measures.rewards,
            traces_factory=measures.traces_factory,
            extra_metrics=measures.extra_metrics,
            n_jobs=n_jobs,
            spec=spec,
            stopping=stopping,
        )
        return ClusterResult(self.params, experiment)

    def summary(self) -> str:
        """Structural description of the flattened model."""
        return self.model.summary()


class StorageModel:
    """Flattened DDN fleet for the storage-isolation experiments.

    Uses the same simulator configuration as :class:`ClusterModel`
    (``batch_dynamic=True``): the disk fleet draws its lifetimes through
    a marking-dependent callable, so block-serving those draws is where
    the storage sweeps' sampling time lives.  The switch changes the
    default-mode stream consumption, so the ``storage_measures`` entries
    of ``tests/data/reward_golden.json`` were intentionally re-recorded
    with it (PR 5; per-draw entries were unaffected — ``sample_batch=
    None`` ignores ``batch_dynamic``).
    """

    def __init__(self, params: CFSParameters, base_seed: int = 96) -> None:
        self.params = params
        self.base_seed = int(base_seed)
        self.model = build_storage_only_model(params)
        self.simulator = _make_cluster_simulator(self.model, base_seed)
        self.measures = build_storage_measures(self.model)

    @staticmethod
    def spec(params: CFSParameters, base_seed: int) -> ReplicationSpec:
        """Picklable study recipe without building the model locally
        (see :meth:`ClusterModel.spec`)."""
        return ReplicationSpec(_storage_setup, (params, int(base_seed)))

    def replication_spec(self) -> ReplicationSpec:
        """Picklable recipe for rebuilding this study in worker processes."""
        return StorageModel.spec(self.params, self.base_seed)

    def simulate(
        self,
        hours: float = DEFAULT_HOURS,
        n_replications: int = 10,
        warmup: float = 0.0,
        n_jobs: int | None = 1,
        stopping=None,
    ) -> ClusterResult:
        """Run replications of the storage-only model.

        ``n_jobs`` runs replications across processes (-1 = all cores);
        results are bit-identical to serial execution for any value.
        ``stopping`` stops replicating at the rule's relative-CI
        target, with ``n_replications`` as the cap.
        """
        experiment = replicate_runs(
            self.simulator,
            hours,
            n_replications=n_replications,
            warmup=warmup,
            rewards=self.measures.rewards,
            extra_metrics=self.measures.extra_metrics,
            n_jobs=n_jobs,
            spec=self.replication_spec(),
            stopping=stopping,
        )
        return ClusterResult(self.params, experiment)
