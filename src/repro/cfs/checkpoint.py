"""Checkpoint/restart analysis — the paper's motivating storage workload.

The introduction motivates the whole study with checkpointing: "Long et
al. ... were able to estimate that more than half the computation time
would be spent checkpointing the application state due to the time spent
in transferring the application state to the persistent storage."  This
module quantifies that coupling between the CFS and application goodput:

* :class:`CheckpointModel` — the classic exponential-failure renewal
  model of periodic checkpointing.  For failure rate ``λ = 1/MTBF``,
  checkpoint write time ``δ`` and restart cost ``R``, the expected wall
  time to commit one segment of ``T`` hours of useful work is exact
  (Daly 2006):

      E[wall per segment] = e^(λR) (e^(λ(T+δ)) − 1) / λ

  Efficiency is ``T / E[wall]``; the optimal ``T`` is found numerically
  and agrees with Young's ``√(2δ·MTBF)`` in the small-overhead limit.
* :func:`checkpoint_write_hours` — the I/O-side of the story: writing the
  aggregate application state through the CFS's sustainable bandwidth.
* :func:`efficiency_at_scale` — combines the calibrated cluster model's
  simulated failure behaviour with the I/O model to reproduce the
  motivating claim: at petascale, naive checkpointing eats a large
  fraction of the machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import optimize

from ..core.errors import ParameterError
from .parameters import CFSParameters

__all__ = [
    "CheckpointModel",
    "checkpoint_write_hours",
    "efficiency_at_scale",
    "young_interval",
]


def young_interval(checkpoint_hours: float, mtbf_hours: float) -> float:
    """Young's first-order optimum ``√(2δM)`` (small-overhead limit)."""
    if checkpoint_hours <= 0.0 or mtbf_hours <= 0.0:
        raise ParameterError("checkpoint time and MTBF must be positive")
    return math.sqrt(2.0 * checkpoint_hours * mtbf_hours)


@dataclass(frozen=True)
class CheckpointModel:
    """Periodic checkpointing under exponential failures.

    Attributes
    ----------
    mtbf_hours:
        Mean time between job-killing failures of the platform (for this
    paper's purposes: CFS outages plus transient network errors).
    checkpoint_hours:
        Time to write one checkpoint through the CFS (``δ``).
    restart_hours:
        Time to detect the failure, restore the last checkpoint and resume
        (``R``).
    """

    mtbf_hours: float
    checkpoint_hours: float
    restart_hours: float = 0.5

    def __post_init__(self) -> None:
        if self.mtbf_hours <= 0.0:
            raise ParameterError(f"mtbf_hours must be positive, got {self.mtbf_hours}")
        if self.checkpoint_hours <= 0.0:
            raise ParameterError(
                f"checkpoint_hours must be positive, got {self.checkpoint_hours}"
            )
        if self.restart_hours < 0.0:
            raise ParameterError(
                f"restart_hours must be >= 0, got {self.restart_hours}"
            )

    # ------------------------------------------------------------------
    def expected_wall_per_segment(self, interval_hours: float) -> float:
        """Exact expected wall-clock hours to commit ``interval_hours`` of
        useful work followed by one checkpoint."""
        if interval_hours <= 0.0:
            raise ParameterError("interval must be positive")
        lam = 1.0 / self.mtbf_hours
        tau = interval_hours + self.checkpoint_hours
        return math.exp(lam * self.restart_hours) * math.expm1(lam * tau) / lam

    def efficiency(self, interval_hours: float) -> float:
        """Fraction of wall-clock time spent on useful work."""
        return interval_hours / self.expected_wall_per_segment(interval_hours)

    def optimal_interval(self) -> float:
        """Efficiency-maximizing checkpoint interval (hours), numeric."""
        young = young_interval(self.checkpoint_hours, self.mtbf_hours)
        result = optimize.minimize_scalar(
            lambda t: -self.efficiency(t),
            bounds=(young / 50.0, young * 50.0),
            method="bounded",
            options={"xatol": 1e-8},
        )
        return float(result.x)

    def optimal_efficiency(self) -> float:
        """Efficiency at the optimal interval."""
        return self.efficiency(self.optimal_interval())

    def overhead_fraction(self) -> float:
        """1 − optimal efficiency: the machine share lost to resilience."""
        return 1.0 - self.optimal_efficiency()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CheckpointModel(mtbf={self.mtbf_hours:.1f}h, "
            f"delta={self.checkpoint_hours:.3f}h, R={self.restart_hours:.2f}h)"
        )


def checkpoint_write_hours(
    n_compute_nodes: int,
    memory_per_node_gb: float,
    checkpoint_fraction: float,
    io_bandwidth_gb_per_s: float,
) -> float:
    """Hours to write one application checkpoint through the CFS.

    ``state = nodes × memory × fraction``; the CFS's sustainable aggregate
    bandwidth bounds the drain rate.  ABE's S2A9550 pair sustained a few
    GB/s; petascale designs aim for tens of GB/s — but application state
    grows with node count, which is exactly why the paper's intro flags
    checkpointing as the petascale pain point.
    """
    if min(n_compute_nodes, memory_per_node_gb, io_bandwidth_gb_per_s) <= 0:
        raise ParameterError("node count, memory, and bandwidth must be positive")
    if not 0.0 < checkpoint_fraction <= 1.0:
        raise ParameterError(
            f"checkpoint_fraction must be in (0, 1], got {checkpoint_fraction}"
        )
    state_gb = n_compute_nodes * memory_per_node_gb * checkpoint_fraction
    return state_gb / io_bandwidth_gb_per_s / 3600.0


def efficiency_at_scale(
    params: CFSParameters,
    failure_mtbf_hours: float,
    memory_per_node_gb: float = 8.0,
    checkpoint_fraction: float = 0.35,
    io_bandwidth_gb_per_s: float | None = None,
    restart_hours: float = 0.5,
) -> CheckpointModel:
    """Build the checkpoint model for a cluster design point.

    ``failure_mtbf_hours`` should come from the simulated cluster (e.g.
    ``8760 / cfs_outage_onsets_per_year``, optionally combined with the
    transient job-kill rate).  Bandwidth defaults to 1 GB/s per DDN unit —
    roughly the sustained write throughput of an S2A9550-class controller
    couplet of the period.
    """
    if io_bandwidth_gb_per_s is None:
        io_bandwidth_gb_per_s = 1.0 * params.n_ddn_units
    delta = checkpoint_write_hours(
        params.n_compute_nodes,
        memory_per_node_gb,
        checkpoint_fraction,
        io_bandwidth_gb_per_s,
    )
    return CheckpointModel(
        mtbf_hours=failure_mtbf_hours,
        checkpoint_hours=delta,
        restart_hours=restart_hours,
    )
