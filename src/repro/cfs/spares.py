"""Standby-spare OSS policy (Figure 4's "CFS-Availability-spare-OSS").

"Improving upon ABE's design, the architect could provide an additional
standby-spare OSS that can replace the failed OSS.  Our evaluation shows
that this approach can improve the availability by 3%."  (Section 5.2.)

The spare pool is global: when an OSS pair suffers a *hardware* double
fault (both members down), a free spare is swapped in after
``spare_swap_hours`` and the pair serves again while its members repair in
the background; the spare returns to the pool once a member comes back.
Software (fsck) outages are not covered — a spare server cannot fix an
inconsistent file system.

Implementation: each OSS pair carries a ``spare_dock`` SAN sharing the
pair-local ``pair_down`` place and the *global* ``spare_free`` pool
(unified across all pairs by the composition tree).  The dock never
mutates the pair's own bookkeeping; it maintains a parallel global
``covered_pairs`` counter, and the availability measure treats a pair as
serving when it is either up or covered (``pairs_down − covered_pairs``).
"""

from __future__ import annotations

from ..core.distributions import Deterministic
from ..core.places import LocalView
from ..core.san import SAN
from .parameters import CFSParameters

__all__ = ["build_spare_dock_san"]


def build_spare_dock_san(params: CFSParameters, name: str = "spare_dock") -> SAN:
    """Spare hand-off logic for one OSS pair.

    Shared places: ``pair_down`` (with the pair), ``spare_free`` (global
    pool, initial = ``n_spare_oss``), ``covered_pairs`` (global count of
    pairs currently served by a spare), and ``spare_swaps_total``.
    """
    san = SAN(name)
    san.place("pair_down", 0)
    san.place("covered", 0)
    san.place("covered_pairs", 0)
    san.place("spare_free", params.n_spare_oss)
    san.place("spare_swaps_total", 0)

    def swap_in(m: LocalView, rng) -> None:
        m["spare_free"] -= 1
        m["covered"] = 1
        m["covered_pairs"] += 1
        m["spare_swaps_total"] += 1

    san.timed(
        "spare_swap",
        Deterministic(params.spare_swap_hours),
        enabled=lambda m: (
            m["pair_down"] == 1 and m["covered"] == 0 and m["spare_free"] > 0
        ),
        effect=swap_in,
    )

    def release(m: LocalView, rng) -> None:
        m["covered"] = 0
        m["covered_pairs"] -= 1
        m["spare_free"] += 1

    # The pair's own restore logic clears pair_down when a member repairs;
    # at that moment the spare returns to the pool.
    san.instant(
        "spare_release",
        enabled=lambda m: m["covered"] == 1 and m["pair_down"] == 0,
        effect=release,
        priority=3,
    )
    return san
