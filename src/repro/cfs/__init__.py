"""The ABE cluster-file-system model and its petascale scaling."""

from .checkpoint import (
    CheckpointModel,
    checkpoint_write_hours,
    efficiency_at_scale,
    young_interval,
)
from .cluster import (
    DEFAULT_HOURS,
    ClusterModel,
    ClusterResult,
    StorageModel,
    build_cluster_node,
    build_storage_only_model,
)
from .components import (
    build_client_network_node,
    build_oss_layer_node,
    build_oss_pair_node,
    build_oss_san_network_node,
    build_san_fabric_san,
    build_storage_node,
)
from .failures import OUTAGE_CAUSES, FailureClass, FailureSite
from .measures import (
    build_measures,
    build_storage_measures,
    cfs_availability_reward,
    cfs_up_predicate,
    cluster_utility_from_run,
    disk_replacement_reward,
    perceived_availability_reward,
    storage_availability_reward,
)
from .parameters import (
    TABLE5_RANGES,
    CFSParameters,
    abe_parameters,
    petascale_parameters,
)
from .scaling import (
    CAPACITY_GROWTH_PER_YEAR,
    disk_capacity_tb,
    scale_step,
    scaling_series,
    storage_axis_tb,
)
from .sensitivity import DESIGN_KNOBS, SensitivityEntry, SensitivityResult, tornado
from .spares import build_spare_dock_san

__all__ = [
    "CheckpointModel",
    "checkpoint_write_hours",
    "efficiency_at_scale",
    "young_interval",
    "CFSParameters",
    "abe_parameters",
    "petascale_parameters",
    "TABLE5_RANGES",
    "ClusterModel",
    "StorageModel",
    "ClusterResult",
    "build_cluster_node",
    "build_storage_only_model",
    "DEFAULT_HOURS",
    "build_oss_pair_node",
    "build_oss_layer_node",
    "build_oss_san_network_node",
    "build_san_fabric_san",
    "build_client_network_node",
    "build_storage_node",
    "build_spare_dock_san",
    "tornado",
    "DESIGN_KNOBS",
    "SensitivityEntry",
    "SensitivityResult",
    "FailureClass",
    "FailureSite",
    "OUTAGE_CAUSES",
    "storage_availability_reward",
    "cfs_availability_reward",
    "perceived_availability_reward",
    "disk_replacement_reward",
    "cfs_up_predicate",
    "cluster_utility_from_run",
    "build_measures",
    "build_storage_measures",
    "scale_step",
    "scaling_series",
    "storage_axis_tb",
    "disk_capacity_tb",
    "CAPACITY_GROWTH_PER_YEAR",
]
