"""Reward measures of the CFS model (Section 4.2).

Three measures, verbatim from the paper:

* **availability of the cluster file system** — "the fraction of time when
  all the file server nodes (OSSes), the DDN, and the network interconnect
  between the OSSes and the DDN are in the working state";
* **disk replacement rate** — "the number of disks that need to be
  replaced per unit of time to sustain the maximum availability of the
  CFS";
* **cluster utility (CU)** — the availability metric from the cluster
  user's perspective: the probability that a submitted job is not killed
  by perceived CFS unavailability, a transient network error during its
  run, or a CFS outage while it has I/O in flight.

CU is computed per replication from simulated quantities:

    CU = A_perceived · exp(−λ_transient·T_job − r_outage·T_io)

where ``A_perceived`` is the time-averaged fraction of compute nodes that
see the CFS as reachable (CFS up × spine up × share of leaf switches up),
``λ_transient`` the per-job transient-kill rate (own leaf switch + spine),
``r_outage`` the simulated rate of CFS-outage onsets, ``T_job`` the mean
job duration and ``T_io`` the per-job I/O exposure window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..core.composition import FlatModel
from ..core.errors import ModelError
from ..core.experiment import MetricFn
from ..core.rewards import Affine, ImpulseReward, Indicator, RateReward
from ..core.simulation import RunResult
from ..core.trace import BinaryTrace
from .parameters import CFSParameters

__all__ = [
    "HOURS_PER_WEEK",
    "resolve_slot_path",
    "storage_availability_reward",
    "cfs_availability_reward",
    "perceived_availability_reward",
    "disk_replacement_reward",
    "cfs_up_predicate",
    "cluster_utility_from_run",
    "ClusterMeasureSet",
    "build_measures",
    "build_storage_measures",
]

HOURS_PER_WEEK = 168.0


def resolve_slot_path(model: FlatModel, pattern: str) -> str:
    """Resolve a glob to exactly one place; returns its canonical path."""
    matches = model.match(pattern)
    if len(matches) != 1:
        raise ModelError(
            f"pattern {pattern!r} resolved to {len(matches)} places "
            f"({sorted(matches)[:4]}...); expected exactly one"
        )
    return next(iter(matches))


def _storage_paths(model: FlatModel) -> tuple[str, str]:
    return (
        resolve_slot_path(model, "*/tiers_down"),
        resolve_slot_path(model, "*/ctrl_pairs_down"),
    )


def _cfs_up_paths(model: FlatModel) -> tuple[str, str, str, str, str, str, str | None]:
    """Canonical paths of every place the CFS-up condition reads."""
    tiers, ctrl = _storage_paths(model)
    oss = resolve_slot_path(model, "*/oss_layer/pairs_down")
    oss_sw = resolve_slot_path(model, "*/oss_layer/oss_sw_down")
    nw = resolve_slot_path(model, "*/oss_san_nw/pairs_down")
    fabric = resolve_slot_path(model, "*/fabric_down")
    # With a standby-spare pool, covered pairs keep serving while down.
    covered_matches = model.match("*/oss_layer/covered_pairs")
    covered = next(iter(covered_matches)) if covered_matches else None
    return tiers, ctrl, oss, oss_sw, nw, fabric, covered


def storage_availability_reward(model: FlatModel) -> RateReward:
    """1 while every RAID tier holds data and every DDN controller pair is up."""
    tiers, ctrl = _storage_paths(model)
    ts, cs = model.paths[tiers], model.paths[ctrl]

    # Declared reads let the simulator wire per-slot observer lists at
    # compile time; raw slot reads then skip name lookup and tracking.
    def up(m) -> float:
        raw = m.raw
        return 1.0 if raw[ts] == 0 and raw[cs] == 0 else 0.0

    return RateReward(
        "storage_availability",
        up,
        reads=(tiers, ctrl),
        form=Indicator(guards=[(tiers, "==", 0), (ctrl, "==", 0)]),
    )


def cfs_up_predicate(model: FlatModel) -> Callable:
    """Boolean marking function: the CFS serves its clients.

    Requires: storage up, every OSS pair up (hardware and software), the
    OSS↔DDN network up, and the shared SAN fabric up.

    This variant reads places *by path* so the simulator's tracked
    discovery sees every read — use it for traces, stop predicates and
    ad-hoc probing.  The reward built by :func:`cfs_availability_reward`
    uses the slot-resolved fast variant with a declared read set instead.
    """
    tiers, ctrl, oss, oss_sw, nw, fabric, covered = _cfs_up_paths(model)

    def up(m) -> bool:
        oss_effective = m[oss] - (m[covered] if covered is not None else 0)
        return (
            m[tiers] == 0
            and m[ctrl] == 0
            and oss_effective <= 0
            and m[oss_sw] == 0
            and m[nw] == 0
            and m[fabric] == 0
        )

    return up


def _cfs_up_fast(model: FlatModel) -> tuple[Callable, Callable, tuple[str, ...]]:
    """Slot-resolved CFS-up checks plus the read declaration covering them.

    Returns ``(up, up_raw, reads)``: ``up`` takes the view, ``up_raw``
    takes the raw values list directly (for callers that already hold it).
    """
    paths = _cfs_up_paths(model)
    tiers, ctrl, oss, oss_sw, nw, fabric, covered = paths
    idx = model.paths
    ts, cs, os_, osw, ns, fs = (
        idx[tiers], idx[ctrl], idx[oss], idx[oss_sw], idx[nw], idx[fabric]
    )
    cov = idx[covered] if covered is not None else None

    if cov is None:

        def up_raw(raw) -> bool:
            return (
                raw[ts] == 0
                and raw[cs] == 0
                and raw[os_] <= 0
                and raw[osw] == 0
                and raw[ns] == 0
                and raw[fs] == 0
            )

    else:

        def up_raw(raw) -> bool:
            return (
                raw[ts] == 0
                and raw[cs] == 0
                and raw[os_] - raw[cov] <= 0
                and raw[osw] == 0
                and raw[ns] == 0
                and raw[fs] == 0
            )

    def up(m) -> bool:
        return up_raw(m.raw)

    return up, up_raw, tuple(p for p in paths if p is not None)


def _cfs_up_guards(model: FlatModel) -> tuple:
    """The CFS-up condition as reward-form guards (same semantics as
    :func:`_cfs_up_fast`, declaratively)."""
    tiers, ctrl, oss, oss_sw, nw, fabric, covered = _cfs_up_paths(model)
    oss_guard = (
        (oss, "<=", 0) if covered is None else ((oss, covered), "<=", 0)
    )
    return (
        (tiers, "==", 0),
        (ctrl, "==", 0),
        oss_guard,
        (oss_sw, "==", 0),
        (nw, "==", 0),
        (fabric, "==", 0),
    )


def cfs_availability_reward(
    model: FlatModel, probe_times=None
) -> RateReward:
    """The paper's CFS-availability measure as a rate reward.

    ``probe_times`` adds instant-of-time availability samples (the
    probability the CFS is up at time ``t``, once averaged over
    replications).
    """
    _, up_raw, reads = _cfs_up_fast(model)
    return RateReward(
        "cfs_availability",
        lambda m: 1.0 if up_raw(m.raw) else 0.0,
        reads=reads,
        probe_times=probe_times,
        form=Indicator(guards=_cfs_up_guards(model)),
    )


def perceived_availability_reward(
    model: FlatModel, params: CFSParameters
) -> RateReward:
    """Expected fraction of compute nodes that currently see the CFS as up.

    Multiplies CFS truth by the client-network view: the spine must be up
    and the node's leaf switch must be up (averaged over leaf switches).
    """
    _, _, up_reads = _cfs_up_fast(model)
    switches_down = resolve_slot_path(model, "*/client/switches_down")
    spine_up = resolve_slot_path(model, "*/spine_up")
    sw, sp = model.paths[switches_down], model.paths[spine_up]
    n_switches = float(params.n_switches)

    # Fused CFS-up + client-view check: this reward re-evaluates on every
    # leaf-switch transient (~97 % of petascale events), so the up check
    # is inlined rather than calling up_raw — identical short-circuit
    # logic and float arithmetic, one call fewer per refresh.
    paths = _cfs_up_paths(model)
    idx = model.paths
    ts, cs, os_, osw, ns, fs = (idx[p] for p in paths[:6])
    cov = idx[paths[6]] if paths[6] is not None else None

    if cov is None:

        def perceived(m) -> float:
            raw = m.raw
            if (
                raw[ts] == 0
                and raw[cs] == 0
                and raw[os_] <= 0
                and raw[osw] == 0
                and raw[ns] == 0
                and raw[fs] == 0
                and raw[sp] != 0
            ):
                return 1.0 - raw[sw] / n_switches
            return 0.0

    else:

        def perceived(m) -> float:
            raw = m.raw
            if (
                raw[ts] == 0
                and raw[cs] == 0
                and raw[os_] - raw[cov] <= 0
                and raw[osw] == 0
                and raw[ns] == 0
                and raw[fs] == 0
                and raw[sp] != 0
            ):
                return 1.0 - raw[sw] / n_switches
            return 0.0

    # The declared form compiles to an incremental update kernel, so the
    # leaf-switch transients that dominate the petascale event stream
    # refresh this value with one guard check + one affine recompute
    # instead of re-calling the closure above.  The form's canonical
    # arithmetic ``1.0 + (-1.0 · switches_down) / n_switches`` is
    # bit-identical to the closure's ``1.0 - switches_down / n_switches``
    # (exact sign flip, sign-symmetric IEEE division), which the
    # simulator verifies against the closure at t=0 and the golden /
    # differential suites pin over full trajectories.
    return RateReward(
        "perceived_availability",
        perceived,
        reads=up_reads + (switches_down, spine_up),
        form=Affine(
            1.0,
            terms=[(switches_down, -1.0, n_switches)],
            guards=_cfs_up_guards(model) + ((spine_up, "!=", 0),),
        ),
    )


def disk_replacement_reward() -> ImpulseReward:
    """Counts disk replacements (the Figure 3 reward)."""
    return ImpulseReward("disks_replaced", "*/disks/disk[*]/replace")


def cluster_utility_from_run(
    result: RunResult, params: CFSParameters, cfs_trace_name: str = "cfs_up"
) -> float:
    """Derive CU for one replication (see module docstring for the formula)."""
    perceived = result["perceived_availability"].time_average
    trace = result.trace(cfs_trace_name)
    if not isinstance(trace, BinaryTrace):
        raise ModelError(f"{cfs_trace_name!r} must be a BinaryTrace")
    onsets = len(trace.intervals_where(False))
    duration = result.duration if result.duration > 0 else 1.0
    outage_rate = onsets / duration
    transient_rate = (
        params.switch_transient_per_720h + params.spine_transient_per_720h
    ) / 720.0
    survives_run = math.exp(
        -transient_rate * params.job_mean_duration_hours
        - outage_rate * params.job_io_exposure_hours
    )
    return perceived * survives_run


@dataclass(frozen=True)
class ClusterMeasureSet:
    """Everything :func:`repro.core.experiment.replicate_runs` needs."""

    rewards: tuple
    traces_factory: Callable[[], tuple]
    extra_metrics: dict[str, MetricFn]


def build_measures(
    model: FlatModel,
    params: CFSParameters,
    availability_probes=None,
) -> ClusterMeasureSet:
    """Wire the full measure set for a composed cluster model.

    ``availability_probes`` adds instant-of-time samples of the CFS
    availability at the given times (hours).
    """
    rewards = (
        storage_availability_reward(model),
        cfs_availability_reward(model, probe_times=availability_probes),
        perceived_availability_reward(model, params),
        disk_replacement_reward(),
    )
    up = cfs_up_predicate(model)

    def traces_factory() -> tuple:
        return (BinaryTrace("cfs_up", up),)

    extra: dict[str, MetricFn] = {
        "cluster_utility": lambda res: cluster_utility_from_run(res, params),
        "disks_replaced_per_week": (
            lambda res: res["disks_replaced"].rate * HOURS_PER_WEEK
        ),
        "cfs_outage_onsets_per_year": (
            lambda res: len(res.trace("cfs_up").intervals_where(False))
            / max(res.duration, 1e-9)
            * 8760.0
        ),
    }
    return ClusterMeasureSet(rewards, traces_factory, extra)


def build_storage_measures(model: FlatModel) -> ClusterMeasureSet:
    """Measure set for storage-in-isolation studies (Figures 2 and 3)."""
    rewards = (
        storage_availability_reward(model),
        disk_replacement_reward(),
        ImpulseReward("data_loss_events", "*/tierctl/data_loss"),
    )
    extra: dict[str, MetricFn] = {
        "disks_replaced_per_week": (
            lambda res: res["disks_replaced"].rate * HOURS_PER_WEEK
        ),
    }
    return ClusterMeasureSet(rewards, lambda: (), extra)
