"""Closed-form results for classic repairable-system structures.

These formulas anchor the simulator's validation suite: each has a SAN
twin in the tests and the two must agree within confidence intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import ModelError

__all__ = [
    "two_state_availability",
    "parallel_pair_availability",
    "k_of_n_availability",
    "failover_pair_unavailability",
]


def two_state_availability(mtbf: float, mttr: float) -> float:
    """Steady-state availability of a single repairable component.

    ``A = MTBF / (MTBF + MTTR)`` — exact for any lifetime/repair laws with
    these means (renewal-reward), not just exponential ones.
    """
    if mtbf <= 0.0 or mttr < 0.0:
        raise ModelError("MTBF must be > 0 and MTTR >= 0")
    return mtbf / (mtbf + mttr)


def parallel_pair_availability(mtbf: float, mttr: float) -> float:
    """Availability of two independent exponential units in parallel.

    The pair is up unless both units are down: ``1 - (1 - A)²``.
    Exact for independent units with independent repair crews.
    """
    a = two_state_availability(mtbf, mttr)
    return 1.0 - (1.0 - a) ** 2


def k_of_n_availability(n: int, k: int, mtbf: float, mttr: float) -> float:
    """Availability of a k-of-n system of independent exponential units.

    The system is up when at least ``k`` of ``n`` units are up; units fail
    and repair independently (one repair crew per unit).
    """
    if not (1 <= k <= n):
        raise ModelError(f"need 1 <= k <= n, got k={k}, n={n}")
    a = two_state_availability(mtbf, mttr)
    total = 0.0
    for i in range(k, n + 1):
        total += math.comb(n, i) * a**i * (1.0 - a) ** (n - i)
    return total


def failover_pair_unavailability(
    failure_rate: float,
    repair_rate: float,
    propagation_probability: float = 0.0,
) -> float:
    """Steady-state unavailability of a fail-over pair with correlated faults.

    The paper's OSS model: each member fails at ``failure_rate``; a failure
    propagates to the partner with probability *p* (taking the pair down
    immediately); otherwise the pair survives on one member and is exposed
    to a second independent failure.  Repairs proceed at ``repair_rate``
    per failed member (independent crews); the pair is down when both
    members are down.

    States: 0 = both up, 1 = one down, 2 = both down (pair outage).
    Transitions::

        0 -> 1   2λ(1-p)        1 -> 0   μ
        0 -> 2   2λp            1 -> 2   λ
                                2 -> 1   2μ

    Returns π₂, the probability of the outage state.
    """
    lam, mu, p = failure_rate, repair_rate, propagation_probability
    if lam <= 0.0 or mu <= 0.0:
        raise ModelError("rates must be positive")
    if not 0.0 <= p <= 1.0:
        raise ModelError(f"propagation probability must be in [0,1], got {p}")
    from .ctmc import CTMC

    chain = CTMC(3)
    if p < 1.0:
        chain.add_rate(0, 1, 2.0 * lam * (1.0 - p))
    if p > 0.0:
        chain.add_rate(0, 2, 2.0 * lam * p)
    chain.add_rate(1, 0, mu)
    chain.add_rate(1, 2, lam)
    chain.add_rate(2, 1, 2.0 * mu)
    return float(chain.steady_state()[2])
