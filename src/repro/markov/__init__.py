"""Analytic Markov-chain oracles used to validate the simulator."""

from .birthdeath import birth_death_ctmc, birth_death_steady_state, mm1_queue_length
from .ctmc import CTMC
from .raid_markov import RAIDTierMarkov, raid_mttdl_approximation
from .repairable import (
    failover_pair_unavailability,
    k_of_n_availability,
    parallel_pair_availability,
    two_state_availability,
)

__all__ = [
    "CTMC",
    "birth_death_ctmc",
    "birth_death_steady_state",
    "mm1_queue_length",
    "RAIDTierMarkov",
    "raid_mttdl_approximation",
    "two_state_availability",
    "parallel_pair_availability",
    "k_of_n_availability",
    "failover_pair_unavailability",
]
