"""Analytic Markov models of RAID tiers.

The simulation models disk lifetimes as Weibull (the paper's β ≈ 0.7 fit)
with deterministic replacement, which has no exact Markov representation.
Under *exponential* lifetimes and repairs, however, a RAID tier is a small
birth-death chain with an absorbing (or restorable) data-loss state, and
every quantity of interest has a numerical (and asymptotic closed-form)
solution.  The test-suite cross-validates the tier SAN against these
results in the exponential regime before trusting it in the Weibull regime.

Terminology: a tier of ``n`` disks *tolerates* ``f`` concurrent disk
failures (RAID5: f=1; the paper's RAID6 8+2: f=2; Blue Waters' 8+3: f=3);
the (f+1)-th concurrent failure loses the tier's data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ModelError
from .ctmc import CTMC

__all__ = ["RAIDTierMarkov", "raid_mttdl_approximation"]


@dataclass(frozen=True)
class RAIDTierMarkov:
    """Exponential-world RAID tier.

    Parameters
    ----------
    n_disks:
        Disks in the tier (data + parity), e.g. 10 for (8+2).
    fault_tolerance:
        Concurrent disk failures survived (2 for RAID6).
    disk_failure_rate:
        Per-disk failure rate λ (per hour).
    disk_repair_rate:
        Per-failed-disk replacement rate μ (per hour); replacement crews
        work in parallel (state ``i`` repairs at rate ``i·μ``).
    restore_rate:
        Rate of restoring a lost tier from backup (per hour); only used by
        the availability model.
    """

    n_disks: int
    fault_tolerance: int
    disk_failure_rate: float
    disk_repair_rate: float
    restore_rate: float = 1.0 / 24.0

    def __post_init__(self) -> None:
        if self.n_disks < 2:
            raise ModelError(f"tier needs >= 2 disks, got {self.n_disks}")
        if not 1 <= self.fault_tolerance < self.n_disks:
            raise ModelError(
                f"fault tolerance must be in [1, n_disks), got {self.fault_tolerance}"
            )
        if min(self.disk_failure_rate, self.disk_repair_rate, self.restore_rate) <= 0.0:
            raise ModelError("all rates must be positive")

    # ------------------------------------------------------------------
    def absorbing_chain(self) -> CTMC:
        """States 0..f+1 failed disks; data loss (f+1) absorbing."""
        f = self.fault_tolerance
        lam, mu = self.disk_failure_rate, self.disk_repair_rate
        chain = CTMC(f + 2)
        for i in range(f + 1):
            chain.add_rate(i, i + 1, (self.n_disks - i) * lam)
            if i > 0:
                chain.add_rate(i, i - 1, i * mu)
        return chain

    def availability_chain(self) -> CTMC:
        """Same chain with data loss repaired (restored) at ``restore_rate``."""
        f = self.fault_tolerance
        chain = self.absorbing_chain()
        chain.add_rate(f + 1, 0, self.restore_rate)
        return chain

    # ------------------------------------------------------------------
    def mttdl(self) -> float:
        """Mean time to data loss starting from all disks healthy."""
        return self.absorbing_chain().mean_time_to_absorption(0)

    def availability(self) -> float:
        """Steady-state fraction of time the tier's data is accessible."""
        pi = self.availability_chain().steady_state()
        return float(1.0 - pi[self.fault_tolerance + 1])

    def data_loss_frequency(self) -> float:
        """Long-run data-loss events per hour (flow into the loss state)."""
        f = self.fault_tolerance
        chain = self.availability_chain()
        pi = chain.steady_state()
        return float(pi[f] * (self.n_disks - f) * self.disk_failure_rate)

    def expected_replacements_per_hour(self) -> float:
        """Long-run disk replacements per hour (repair flow)."""
        chain = self.availability_chain()
        pi = chain.steady_state()
        mu = self.disk_repair_rate
        return float(sum(pi[i] * i * mu for i in range(1, self.fault_tolerance + 2)))


def raid_mttdl_approximation(
    n_disks: int, fault_tolerance: int, disk_failure_rate: float, disk_repair_rate: float
) -> float:
    """Classic rare-failure MTTDL approximation.

    For λ ≪ μ the mean time to data loss is approximately::

        MTTDL ≈ (f! · μ^f) / (Π_{i=0..f} (n-i)λ)

    which generalizes the familiar RAID5/RAID6 formulas.  Useful as an
    order-of-magnitude sanity check on :meth:`RAIDTierMarkov.mttdl`.
    """
    if not 1 <= fault_tolerance < n_disks:
        raise ModelError("fault tolerance must be in [1, n_disks)")
    if min(disk_failure_rate, disk_repair_rate) <= 0.0:
        raise ModelError("rates must be positive")
    import math

    numerator = math.factorial(fault_tolerance) * disk_repair_rate**fault_tolerance
    denominator = 1.0
    for i in range(fault_tolerance + 1):
        denominator *= (n_disks - i) * disk_failure_rate
    return numerator / denominator
