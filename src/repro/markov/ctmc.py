"""Continuous-time Markov chain solver.

Used as the exact-numerical oracle for the simulator: small dependability
models (repairable components, RAID tiers, fail-over pairs) are expressed
as CTMCs here and as SANs in :mod:`repro.core`, and the two must agree.

Solutions implemented:

* steady-state distribution (null space of the generator, dense);
* transient distribution via uniformization (numerically robust, no
  matrix exponential overflow);
* mean time to absorption and absorption probabilities;
* reward-weighted expectations (steady-state availability etc.).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.errors import ModelError

__all__ = ["CTMC"]


class CTMC:
    """A finite CTMC built incrementally from transition rates.

    States are integers ``0..n-1``.  Rates between the same ordered pair
    accumulate, so parallel transitions can be added independently.
    """

    def __init__(self, n_states: int) -> None:
        if n_states < 1:
            raise ModelError(f"CTMC needs at least one state, got {n_states}")
        self.n = int(n_states)
        self._rates: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_rate(self, source: int, target: int, rate: float) -> "CTMC":
        """Add a transition; returns self for chaining."""
        if not (0 <= source < self.n and 0 <= target < self.n):
            raise ModelError(
                f"transition ({source}->{target}) outside state range 0..{self.n - 1}"
            )
        if source == target:
            raise ModelError("self-loop rates are not allowed in a CTMC")
        if rate < 0.0:
            raise ModelError(f"negative rate {rate} for ({source}->{target})")
        if rate > 0.0:
            key = (source, target)
            self._rates[key] = self._rates.get(key, 0.0) + float(rate)
        return self

    @property
    def transitions(self) -> dict[tuple[int, int], float]:
        """Accumulated (source, target) → rate map."""
        return dict(self._rates)

    def generator(self) -> np.ndarray:
        """Dense generator matrix Q (rows sum to zero)."""
        q = np.zeros((self.n, self.n))
        for (s, t), r in self._rates.items():
            q[s, t] += r
            q[s, s] -= r
        return q

    # ------------------------------------------------------------------
    # steady state
    # ------------------------------------------------------------------
    def steady_state(self) -> np.ndarray:
        """Stationary distribution π with πQ = 0, Σπ = 1.

        Requires the chain to have a single recurrent class reachable from
        everywhere (checked indirectly: the linear system must have a
        unique solution).
        """
        q = self.generator()
        # Replace one balance equation with the normalization constraint.
        a = q.T.copy()
        a[-1, :] = 1.0
        b = np.zeros(self.n)
        b[-1] = 1.0
        try:
            pi = np.linalg.solve(a, b)
        except np.linalg.LinAlgError as exc:
            raise ModelError(
                "steady-state system is singular; the chain likely has "
                "multiple recurrent classes or absorbing states"
            ) from exc
        if np.any(pi < -1e-9):
            raise ModelError("steady-state solution has negative probabilities")
        pi = np.clip(pi, 0.0, None)
        return pi / pi.sum()

    def steady_state_reward(self, reward: Sequence[float]) -> float:
        """Expected steady-state value of a per-state rate reward."""
        r = np.asarray(reward, dtype=float)
        if r.shape != (self.n,):
            raise ModelError(f"reward vector must have length {self.n}")
        return float(self.steady_state() @ r)

    # ------------------------------------------------------------------
    # transient analysis (uniformization)
    # ------------------------------------------------------------------
    def transient(
        self, initial: Sequence[float] | int, t: float, tol: float = 1e-12
    ) -> np.ndarray:
        """State distribution at time ``t`` from an initial distribution.

        Uses uniformization: ``p(t) = Σ_k Poisson(Λt; k) · p0 Pᵏ`` with
        ``P = I + Q/Λ``; the series is truncated when the remaining Poisson
        mass falls below ``tol``.
        """
        if t < 0.0:
            raise ModelError(f"time must be >= 0, got {t}")
        p0 = self._as_distribution(initial)
        if t == 0.0:
            return p0
        q = self.generator()
        lam = float(max(-np.diag(q).min(), 1e-300))
        p_matrix = np.eye(self.n) + q / lam
        # Poisson series over k.
        mean = lam * t
        result = np.zeros(self.n)
        term_vec = p0.copy()
        log_weight = -mean  # log Poisson(mean; 0)
        weight = math.exp(log_weight) if log_weight > -700 else 0.0
        cumulative = weight
        result += weight * term_vec
        k = 0
        max_k = int(mean + 12.0 * math.sqrt(mean) + 50)
        while cumulative < 1.0 - tol and k < max_k:
            k += 1
            term_vec = term_vec @ p_matrix
            if weight == 0.0:
                log_weight += math.log(mean) - math.log(k)
                weight = math.exp(log_weight) if log_weight > -700 else 0.0
            else:
                weight *= mean / k
            result += weight * term_vec
            cumulative += weight
        # Renormalize the truncated series.
        s = result.sum()
        if s <= 0.0:
            raise ModelError("uniformization series vanished; check rates")
        return result / s

    def transient_reward(
        self, initial: Sequence[float] | int, t: float, reward: Sequence[float]
    ) -> float:
        """Expected instantaneous reward at time ``t``."""
        r = np.asarray(reward, dtype=float)
        return float(self.transient(initial, t) @ r)

    def interval_reward(
        self,
        initial: Sequence[float] | int,
        t: float,
        reward: Sequence[float],
        tol: float = 1e-12,
    ) -> float:
        """Time-averaged expected reward over ``[0, t]``.

        ``(1/t) E[∫₀ᵗ r(X_s) ds]`` via the uniformization identity
        ``∫₀ᵗ p(s) ds = (1/Λ) Σ_k (p₀Pᵏ) P(N(Λt) > k)`` where ``N`` is
        Poisson with mean ``Λt``.  This is the *interval-of-time* reward
        of the Möbius formalism — exactly what a simulation run over
        ``[0, t]`` estimates, warm-up excluded.
        """
        if t <= 0.0:
            raise ModelError(f"interval length must be positive, got {t}")
        r = np.asarray(reward, dtype=float)
        if r.shape != (self.n,):
            raise ModelError(f"reward vector must have length {self.n}")
        p0 = self._as_distribution(initial)
        q = self.generator()
        lam = float(max(-np.diag(q).min(), 1e-300))
        p_matrix = np.eye(self.n) + q / lam
        mean = lam * t
        # survivor function of the Poisson: P(N > k)
        max_k = int(mean + 12.0 * math.sqrt(mean) + 50)
        integral = 0.0
        vec = p0.copy()
        log_pmf = -mean
        pmf = math.exp(log_pmf) if log_pmf > -700 else 0.0
        survivor = 1.0 - pmf
        k = 0
        while k <= max_k and survivor > tol:
            integral += float(vec @ r) * survivor
            vec = vec @ p_matrix
            k += 1
            if pmf == 0.0:
                log_pmf += math.log(mean) - math.log(k)
                pmf = math.exp(log_pmf) if log_pmf > -700 else 0.0
            else:
                pmf *= mean / k
            survivor = max(survivor - pmf, 0.0)
        return integral / lam / t

    # ------------------------------------------------------------------
    # absorption
    # ------------------------------------------------------------------
    def absorbing_states(self) -> list[int]:
        """States with no outgoing rate."""
        out = {s for (s, _t) in self._rates}
        return [s for s in range(self.n) if s not in out]

    def mean_time_to_absorption(self, initial: Sequence[float] | int) -> float:
        """Expected time to reach any absorbing state.

        Solves ``(-Q_TT) m = 1`` on the transient subset T.  The classic
        dependability use is MTTDL: mean time to the data-loss state of a
        RAID tier model.
        """
        absorbing = set(self.absorbing_states())
        if not absorbing:
            raise ModelError("chain has no absorbing states")
        transient = [s for s in range(self.n) if s not in absorbing]
        if not transient:
            return 0.0
        pos = {s: i for i, s in enumerate(transient)}
        q = self.generator()
        qtt = q[np.ix_(transient, transient)]
        ones = np.ones(len(transient))
        m = np.linalg.solve(-qtt, ones)
        p0 = self._as_distribution(initial)
        return float(sum(p0[s] * m[pos[s]] for s in transient))

    def absorption_probabilities(
        self, initial: Sequence[float] | int
    ) -> dict[int, float]:
        """Probability of ending in each absorbing state."""
        absorbing = self.absorbing_states()
        if not absorbing:
            raise ModelError("chain has no absorbing states")
        transient = [s for s in range(self.n) if s not in set(absorbing)]
        p0 = self._as_distribution(initial)
        result = {a: float(p0[a]) for a in absorbing}
        if transient:
            q = self.generator()
            qtt = q[np.ix_(transient, transient)]
            for a in absorbing:
                qta = q[np.ix_(transient, [a])].ravel()
                h = np.linalg.solve(-qtt, qta)
                result[a] += float(
                    sum(p0[s] * h[i] for i, s in enumerate(transient))
                )
        return result

    # ------------------------------------------------------------------
    def _as_distribution(self, initial: Sequence[float] | int) -> np.ndarray:
        if isinstance(initial, (int, np.integer)):
            if not 0 <= int(initial) < self.n:
                raise ModelError(f"initial state {initial} out of range")
            p0 = np.zeros(self.n)
            p0[int(initial)] = 1.0
            return p0
        p0 = np.asarray(initial, dtype=float)
        if p0.shape != (self.n,):
            raise ModelError(f"initial distribution must have length {self.n}")
        if np.any(p0 < -1e-12) or abs(p0.sum() - 1.0) > 1e-9:
            raise ModelError("initial distribution must be a probability vector")
        return np.clip(p0, 0.0, None) / p0.sum()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CTMC(states={self.n}, transitions={len(self._rates)})"
