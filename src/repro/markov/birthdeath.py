"""Birth-death chains in closed form.

A birth-death chain has transitions only between neighbouring states
(``i -> i+1`` at rate ``λᵢ``, ``i -> i-1`` at rate ``μᵢ``).  Its stationary
distribution has the classic product form, which we use to validate both
the CTMC solver and the simulator on queues and redundancy models.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.errors import ModelError
from .ctmc import CTMC

__all__ = ["birth_death_steady_state", "birth_death_ctmc", "mm1_queue_length"]


def birth_death_steady_state(
    birth_rates: Sequence[float], death_rates: Sequence[float]
) -> np.ndarray:
    """Stationary distribution of a finite birth-death chain.

    ``birth_rates[i]`` is the rate from state i to i+1 (length n-1);
    ``death_rates[i]`` is the rate from state i+1 to i (length n-1).
    """
    births = np.asarray(birth_rates, dtype=float)
    deaths = np.asarray(death_rates, dtype=float)
    if births.shape != deaths.shape:
        raise ModelError("birth and death rate vectors must have equal length")
    if np.any(births <= 0.0) or np.any(deaths <= 0.0):
        raise ModelError("all birth and death rates must be positive")
    n = births.size + 1
    weights = np.ones(n)
    for i in range(1, n):
        weights[i] = weights[i - 1] * births[i - 1] / deaths[i - 1]
    return weights / weights.sum()


def birth_death_ctmc(
    birth_rates: Sequence[float], death_rates: Sequence[float]
) -> CTMC:
    """The same chain as a :class:`CTMC` (for cross-validation)."""
    births = list(birth_rates)
    deaths = list(death_rates)
    if len(births) != len(deaths):
        raise ModelError("birth and death rate vectors must have equal length")
    chain = CTMC(len(births) + 1)
    for i, (b, d) in enumerate(zip(births, deaths)):
        chain.add_rate(i, i + 1, b)
        chain.add_rate(i + 1, i, d)
    return chain


def mm1_queue_length(arrival_rate: float, service_rate: float, capacity: int) -> float:
    """Mean queue length of an M/M/1/K queue (birth-death special case)."""
    if capacity < 1:
        raise ModelError(f"capacity must be >= 1, got {capacity}")
    pi = birth_death_steady_state(
        [arrival_rate] * capacity, [service_rate] * capacity
    )
    return float(np.dot(np.arange(capacity + 1), pi))
