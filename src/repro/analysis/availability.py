"""Availability estimation from outage notifications.

Regenerates the Table 1 analysis: given the user-notification outage
windows of the Lustre-FS, compute the downtime per cause and the
availability of the SAN over the observation window.  The paper notes the
estimate is "between 0.97 and 0.98 depending on the dates one chooses as
the start and end times"; :func:`availability_range` quantifies exactly
that endpoint sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Iterable, Sequence

from ..core.errors import AnalysisError
from .filtering import Outage

__all__ = [
    "DowntimeRow",
    "downtime_table",
    "availability_from_outages",
    "availability_range",
    "merge_overlapping",
    "total_downtime_hours",
]


@dataclass(frozen=True)
class DowntimeRow:
    """One row of a Table 1-style outage report."""

    cause: str
    start: datetime
    end: datetime
    hours: float

    def format(self) -> str:
        """Render like the paper's Table 1 (cause, start, end, hours)."""
        fmt = "%m/%d/%y %H:%M"
        return (
            f"{self.cause:<14} {self.start.strftime(fmt)}  "
            f"{self.end.strftime(fmt)}  {self.hours:6.2f}"
        )


def downtime_table(outages: Iterable[Outage]) -> list[DowntimeRow]:
    """Tabulate outages in start order (the Table 1 regenerator)."""
    rows = [
        DowntimeRow(o.cause, o.start, o.end, o.hours)
        for o in sorted(outages, key=lambda o: o.start)
    ]
    return rows


def merge_overlapping(outages: Sequence[Outage]) -> list[Outage]:
    """Merge overlapping/adjacent outage windows (cause of the earliest wins).

    Availability must not double-count concurrent outages of different
    causes, so downtime is computed on the merged windows.
    """
    ordered = sorted(outages, key=lambda o: o.start)
    merged: list[Outage] = []
    for o in ordered:
        if merged and o.start <= merged[-1].end:
            last = merged[-1]
            if o.end > last.end:
                merged[-1] = Outage(last.cause, last.start, o.end)
        else:
            merged.append(o)
    return merged


def total_downtime_hours(outages: Sequence[Outage]) -> float:
    """Total non-overlapping downtime in hours."""
    return sum(o.hours for o in merge_overlapping(outages))


def availability_from_outages(
    outages: Sequence[Outage], window_start: datetime, window_end: datetime
) -> float:
    """Availability over ``[window_start, window_end]``.

    Outages are clipped to the window; overlaps are merged.
    """
    if window_end <= window_start:
        raise AnalysisError("window_end must be after window_start")
    clipped = [
        Outage(o.cause, max(o.start, window_start), min(o.end, window_end))
        for o in outages
        if o.end > window_start and o.start < window_end
    ]
    down = total_downtime_hours(clipped)
    span = (window_end - window_start).total_seconds() / 3600.0
    return max(0.0, 1.0 - down / span)


def availability_range(
    outages: Sequence[Outage],
    earliest_start: datetime,
    latest_end: datetime,
    step_days: int = 7,
) -> tuple[float, float]:
    """(min, max) availability over plausible window endpoint choices.

    Scans window start/end candidates on a ``step_days`` grid (plus the
    extremes) and reports the spread — reproducing the paper's remark that
    ABE's SAN availability "can be estimated to be between 0.97 and 0.98
    depending on the dates one chooses".
    """
    if latest_end <= earliest_start:
        raise AnalysisError("latest_end must be after earliest_start")
    step = timedelta(days=max(step_days, 1))
    starts: list[datetime] = []
    cursor = earliest_start
    midpoint = earliest_start + (latest_end - earliest_start) / 2
    while cursor < midpoint:
        starts.append(cursor)
        cursor += step
    ends: list[datetime] = []
    cursor = latest_end
    while cursor > midpoint:
        ends.append(cursor)
        cursor -= step
    values = [
        availability_from_outages(outages, s, e) for s in starts for e in ends
    ]
    if not values:
        raise AnalysisError("no candidate windows; widen the range")
    return min(values), max(values)
