"""Survival analysis of disk failure data.

Reproduces the Table 4 statistics: "Survival analysis of the disk failures
(n = 480) using Weibull regression (in log relative-hazard form) gives the
shape parameter as 0.6963571 with standard deviation of 0.1923109 (95%
confidence interval)".

The estimation problem is right-censored: during the observation window
most of the 480 disks *did not fail* — their (unknown) lifetimes exceed
their time in service.  We provide:

* :class:`KaplanMeier` — the nonparametric survival curve;
* :func:`fit_weibull_censored` — maximum-likelihood Weibull fit for
  right-censored data, with standard errors from the observed information
  matrix (reported for log-shape, matching the "log relative-hazard form"
  the paper quotes);
* :func:`fit_exponential_censored` — the one-parameter special case, whose
  closed form (total failures / total exposure) estimates the MTBF used in
  Section 5.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import optimize

from ..core.distributions import HOURS_PER_YEAR, Weibull
from ..core.errors import FitError

__all__ = [
    "KaplanMeier",
    "WeibullFit",
    "ExponentialFit",
    "fit_weibull_censored",
    "fit_exponential_censored",
]


class KaplanMeier:
    """Product-limit estimator of the survival function.

    Parameters
    ----------
    durations:
        Time in service of each unit (hours).
    observed:
        True where the unit failed at its duration; False where it was
        right-censored (still alive when observation stopped).
    """

    def __init__(self, durations: Sequence[float], observed: Sequence[bool]) -> None:
        t = np.asarray(durations, dtype=float)
        d = np.asarray(observed, dtype=bool)
        if t.shape != d.shape or t.ndim != 1:
            raise FitError("durations and observed must be 1-D and equal length")
        if t.size == 0:
            raise FitError("no observations")
        if np.any(t < 0.0):
            raise FitError("durations must be non-negative")
        order = np.argsort(t, kind="stable")
        t, d = t[order], d[order]

        times: list[float] = []
        survival: list[float] = []
        at_risk = t.size
        s = 1.0
        i = 0
        while i < t.size:
            j = i
            deaths = 0
            while j < t.size and t[j] == t[i]:
                deaths += int(d[j])
                j += 1
            if deaths > 0:
                s *= 1.0 - deaths / at_risk
                times.append(float(t[i]))
                survival.append(s)
            at_risk -= j - i
            i = j
        self.event_times = np.asarray(times)
        self.survival_values = np.asarray(survival)
        self.n = int(t.size)
        self.n_events = int(d.sum())

    def survival(self, t: float) -> float:
        """Estimated ``P(T > t)``."""
        if t < 0.0:
            return 1.0
        idx = int(np.searchsorted(self.event_times, t, side="right"))
        return 1.0 if idx == 0 else float(self.survival_values[idx - 1])

    def median(self) -> float:
        """Smallest event time with survival <= 0.5 (inf if never reached)."""
        below = np.nonzero(self.survival_values <= 0.5)[0]
        return float(self.event_times[below[0]]) if below.size else math.inf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KaplanMeier(n={self.n}, events={self.n_events})"


@dataclass(frozen=True)
class WeibullFit:
    """Censored Weibull MLE result.

    ``se_log_shape`` is the standard error of ``log(shape)`` — the scale on
    which the likelihood is close to quadratic and the scale implied by
    the paper's "log relative-hazard form" regression.  ``se_shape`` is the
    delta-method transform back to the shape itself.
    """

    shape: float
    scale: float
    se_shape: float
    se_log_shape: float
    se_log_scale: float
    log_likelihood: float
    n: int
    n_events: int

    @property
    def mtbf_hours(self) -> float:
        """Mean lifetime implied by the fit."""
        return Weibull(self.shape, self.scale).mean()

    @property
    def afr(self) -> float:
        """Annualized failure rate implied by the fitted mean."""
        return HOURS_PER_YEAR / self.mtbf_hours

    def shape_confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """CI for the shape, exponentiating the log-scale interval."""
        lo = self.shape * math.exp(-z * self.se_log_shape)
        hi = self.shape * math.exp(z * self.se_log_shape)
        return lo, hi

    def distribution(self) -> Weibull:
        """The fitted lifetime law."""
        return Weibull(self.shape, self.scale)


def _check_censored_inputs(
    durations: Sequence[float], observed: Sequence[bool]
) -> tuple[np.ndarray, np.ndarray]:
    t = np.asarray(durations, dtype=float)
    d = np.asarray(observed, dtype=bool)
    if t.shape != d.shape or t.ndim != 1:
        raise FitError("durations and observed must be 1-D and equal length")
    if t.size == 0:
        raise FitError("no observations")
    if np.any(t <= 0.0):
        raise FitError("durations must be positive for parametric fits")
    if not d.any():
        raise FitError("no failures observed; the likelihood is unbounded")
    return t, d


def fit_weibull_censored(
    durations: Sequence[float], observed: Sequence[bool]
) -> WeibullFit:
    """Maximum-likelihood Weibull fit for right-censored lifetimes.

    The log-likelihood, with β the shape and η the scale::

        L(β, η) = Σ_fail [ln β − β ln η + (β−1) ln t − (t/η)^β]
                  + Σ_cens [ −(t/η)^β ]

    is maximized over (ln β, ln η); standard errors come from the inverse
    of the numerically evaluated observed information matrix.
    """
    t, d = _check_censored_inputs(durations, observed)
    log_t = np.log(t)
    n_events = int(d.sum())

    def negloglik(params: np.ndarray) -> float:
        log_beta, log_eta = params
        beta = math.exp(log_beta)
        z = np.exp(np.clip(beta * (log_t - log_eta), -700.0, 700.0))
        ll_fail = np.sum(
            d * (log_beta - beta * log_eta + (beta - 1.0) * log_t)
        )
        return float(-(ll_fail - z.sum()))

    # Moment-style starting point: exponential fit for the scale.
    total_exposure = float(t.sum())
    eta0 = total_exposure / n_events
    x0 = np.array([0.0, math.log(eta0)])
    result = optimize.minimize(
        negloglik,
        x0,
        method="Nelder-Mead",
        options={"xatol": 1e-8, "fatol": 1e-10, "maxiter": 20_000, "maxfev": 20_000},
    )
    if not result.success:
        raise FitError(f"Weibull MLE failed to converge: {result.message}")
    polished = optimize.minimize(negloglik, result.x, method="BFGS")
    if polished.fun <= result.fun:
        result = polished

    log_beta, log_eta = result.x
    hessian = _numeric_hessian(negloglik, result.x)
    try:
        cov = np.linalg.inv(hessian)
    except np.linalg.LinAlgError as exc:
        raise FitError("observed information matrix is singular") from exc
    if cov[0, 0] <= 0.0 or cov[1, 1] <= 0.0:
        raise FitError("observed information matrix is not positive definite")

    beta = math.exp(log_beta)
    se_log_shape = math.sqrt(cov[0, 0])
    return WeibullFit(
        shape=beta,
        scale=math.exp(log_eta),
        se_shape=beta * se_log_shape,
        se_log_shape=se_log_shape,
        se_log_scale=math.sqrt(cov[1, 1]),
        log_likelihood=-float(result.fun),
        n=int(t.size),
        n_events=n_events,
    )


@dataclass(frozen=True)
class ExponentialFit:
    """Censored exponential MLE: rate = failures / total exposure."""

    rate: float
    se_rate: float
    n: int
    n_events: int

    @property
    def mtbf_hours(self) -> float:
        """Implied mean time between failures."""
        return 1.0 / self.rate

    @property
    def afr(self) -> float:
        """Implied annualized failure rate."""
        return HOURS_PER_YEAR * self.rate


def fit_exponential_censored(
    durations: Sequence[float], observed: Sequence[bool]
) -> ExponentialFit:
    """Closed-form censored exponential fit (λ̂ = events / exposure)."""
    t, d = _check_censored_inputs(durations, observed)
    n_events = int(d.sum())
    exposure = float(t.sum())
    rate = n_events / exposure
    return ExponentialFit(
        rate=rate,
        se_rate=rate / math.sqrt(n_events),
        n=int(t.size),
        n_events=n_events,
    )


def _numeric_hessian(fn, x: np.ndarray, rel_step: float = 1e-4) -> np.ndarray:
    """Central-difference Hessian of a scalar function of a small vector."""
    n = x.size
    h = np.maximum(np.abs(x), 1.0) * rel_step
    hess = np.zeros((n, n))
    f0 = fn(x)
    for i in range(n):
        for j in range(i, n):
            if i == j:
                xp, xm = x.copy(), x.copy()
                xp[i] += h[i]
                xm[i] -= h[i]
                hess[i, i] = (fn(xp) - 2.0 * f0 + fn(xm)) / (h[i] ** 2)
            else:
                xpp, xpm, xmp, xmm = x.copy(), x.copy(), x.copy(), x.copy()
                xpp[[i, j]] += [h[i], h[j]]
                xpm[i] += h[i]
                xpm[j] -= h[j]
                xmp[i] -= h[i]
                xmp[j] += h[j]
                xmm[[i, j]] -= [h[i], h[j]]
                hess[i, j] = hess[j, i] = (
                    fn(xpp) - fn(xpm) - fn(xmp) + fn(xmm)
                ) / (4.0 * h[i] * h[j])
    return hess
