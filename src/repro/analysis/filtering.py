"""Temporal and causal event filtering.

The paper: "To extract accurate failure event information, we filter
failure logs based on temporal and causal relationships between events."
Concretely, three preprocessing steps are needed before rates can be
estimated:

* **episode coalescing** — a single fault floods the log with repeated
  error lines; events from the same source/type within a gap threshold
  are one *episode* (one failure, not fifty);
* **outage pairing** — ``outage_start`` / ``outage_end`` notifications are
  matched into :class:`Outage` windows (Table 1's rows);
* **storm detection** — correlated bursts across many sources within a
  short window (Table 2's mount-failure storms, where one switch fault
  produces hundreds of per-node errors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, datetime, timedelta
from typing import Callable, Hashable

from ..core.errors import AnalysisError
from .events import EventLog, LogEvent

__all__ = [
    "Episode",
    "Outage",
    "Storm",
    "coalesce_episodes",
    "pair_outages",
    "detect_storms",
    "mount_failures_by_day",
]


@dataclass(frozen=True)
class Episode:
    """A coalesced burst of related events from one source."""

    key: Hashable
    start: datetime
    end: datetime
    events: tuple[LogEvent, ...]

    @property
    def n_events(self) -> int:
        """Raw log lines collapsed into this episode."""
        return len(self.events)

    @property
    def duration_hours(self) -> float:
        """Hours from first to last event in the episode."""
        return (self.end - self.start).total_seconds() / 3600.0


@dataclass(frozen=True)
class Outage:
    """A service outage window with its cause (a Table 1 row)."""

    cause: str
    start: datetime
    end: datetime

    @property
    def hours(self) -> float:
        """Outage length in hours."""
        return (self.end - self.start).total_seconds() / 3600.0


@dataclass(frozen=True)
class Storm:
    """A correlated burst of events across many sources."""

    start: datetime
    end: datetime
    sources: frozenset[str]
    events: tuple[LogEvent, ...]

    @property
    def n_sources(self) -> int:
        """Distinct nodes affected by the storm."""
        return len(self.sources)


def coalesce_episodes(
    log: EventLog,
    gap_hours: float = 1.0,
    key: Callable[[LogEvent], Hashable] | None = None,
) -> list[Episode]:
    """Collapse repeated events into episodes.

    Events sharing ``key(event)`` (default: ``(source, event_type)``) whose
    inter-arrival gap is at most ``gap_hours`` belong to one episode.
    """
    if gap_hours < 0.0:
        raise AnalysisError(f"gap_hours must be >= 0, got {gap_hours}")
    key_fn = key if key is not None else (lambda e: (e.source, e.event_type))
    gap = timedelta(hours=gap_hours)
    open_groups: dict[Hashable, list[LogEvent]] = {}
    episodes: list[Episode] = []

    def close(k: Hashable) -> None:
        group = open_groups.pop(k)
        episodes.append(
            Episode(k, group[0].timestamp, group[-1].timestamp, tuple(group))
        )

    for event in log:
        k = key_fn(event)
        group = open_groups.get(k)
        if group is not None and event.timestamp - group[-1].timestamp > gap:
            close(k)
            group = None
        if group is None:
            open_groups[k] = [event]
        else:
            group.append(event)
    for k in list(open_groups):
        close(k)
    episodes.sort(key=lambda ep: ep.start)
    return episodes


def pair_outages(
    log: EventLog,
    start_type: str = "outage_start",
    end_type: str = "outage_end",
    cause_attr: str = "cause",
    window_end: datetime | None = None,
) -> list[Outage]:
    """Match start/end notifications from each source into outage windows.

    Start/end events are matched per ``(source, cause)`` stream: outages
    of different causes may overlap in the log (an fsck can start while an
    I/O-hardware outage is still open) and must not steal each other's
    end notifications.

    Unmatched ``start`` events are closed at ``window_end`` when given,
    otherwise they raise — a dangling outage usually means the analysis
    window was cut mid-outage and the caller must decide how to treat it.
    Duplicate starts of the same stream extend the open outage (logs
    often re-announce ongoing outages).
    """
    open_by_stream: dict[tuple[str, str], LogEvent] = {}
    outages: list[Outage] = []
    for event in log.types(start_type, end_type):
        stream = (event.source, event.attr(cause_attr) or event.component)
        if event.event_type == start_type:
            open_by_stream.setdefault(stream, event)
        else:
            started = open_by_stream.pop(stream, None)
            if started is None:
                raise AnalysisError(
                    f"outage_end without start for {stream!r} at "
                    f"{event.timestamp.isoformat()}"
                )
            cause = started.attr(cause_attr) or started.component
            outages.append(Outage(cause, started.timestamp, event.timestamp))
    if open_by_stream:
        if window_end is None:
            dangling = sorted(open_by_stream)
            raise AnalysisError(
                f"unclosed outage(s) for {dangling}; pass window_end to "
                "truncate them at the analysis boundary"
            )
        for started in open_by_stream.values():
            cause = started.attr(cause_attr) or started.component
            outages.append(Outage(cause, started.timestamp, window_end))
    outages.sort(key=lambda o: o.start)
    return outages


def detect_storms(
    log: EventLog,
    gap_hours: float = 0.5,
    min_sources: int = 2,
) -> list[Storm]:
    """Group events (any source) separated by at most ``gap_hours`` into
    storms touching at least ``min_sources`` distinct nodes.

    This is the Table 2 preprocessing: a switch transient produces mount
    failures on every attached compute node within minutes; the storm — not
    each node-level line — is the failure event.
    """
    if min_sources < 1:
        raise AnalysisError(f"min_sources must be >= 1, got {min_sources}")
    gap = timedelta(hours=gap_hours)
    storms: list[Storm] = []
    current: list[LogEvent] = []
    for event in log:
        if current and event.timestamp - current[-1].timestamp > gap:
            if len({e.source for e in current}) >= min_sources:
                storms.append(_storm_from(current))
            current = []
        current.append(event)
    if current and len({e.source for e in current}) >= min_sources:
        storms.append(_storm_from(current))
    return storms


def _storm_from(events: list[LogEvent]) -> Storm:
    return Storm(
        start=events[0].timestamp,
        end=events[-1].timestamp,
        sources=frozenset(e.source for e in events),
        events=tuple(events),
    )


def mount_failures_by_day(
    log: EventLog, event_type: str = "mount_failure"
) -> dict[date, int]:
    """Distinct compute nodes reporting mount failures, per day.

    This is exactly Table 2's aggregation: "Lustre mount failure
    notification by compute nodes ... number of compute nodes that
    experienced mount failure", aggregated per day.
    """
    per_day = log.types(event_type).daily_sources()
    return {day: len(sources) for day, sources in sorted(per_day.items())}
