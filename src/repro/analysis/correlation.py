"""Workload-failure correlation analysis.

The paper leans on the finding (Schroeder & Gibson, DSN'06) that "failure
rates are ... highly correlated with the type and intensity of the
workload running on it".  This module provides the corresponding log
analysis: bucket a period into fixed windows, count workload intensity
(job submissions) and failure events per window, and report rank and
linear correlation with a permutation significance test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Sequence

import numpy as np
from scipy import stats

from ..core.errors import AnalysisError
from .events import EventLog
from .jobs import JobRecord

__all__ = ["CorrelationResult", "bucket_counts", "workload_failure_correlation"]


@dataclass(frozen=True)
class CorrelationResult:
    """Correlation between two bucketed count series."""

    pearson_r: float
    spearman_rho: float
    p_value: float
    n_buckets: int
    workload_counts: tuple[int, ...]
    failure_counts: tuple[int, ...]

    @property
    def is_significant(self) -> bool:
        """Permutation p-value below 0.05."""
        return self.p_value < 0.05


def bucket_counts(
    times: Sequence[datetime],
    start: datetime,
    end: datetime,
    bucket_hours: float,
) -> np.ndarray:
    """Count events per fixed-width bucket over ``[start, end)``."""
    if end <= start:
        raise AnalysisError("end must be after start")
    if bucket_hours <= 0.0:
        raise AnalysisError("bucket_hours must be positive")
    span_hours = (end - start).total_seconds() / 3600.0
    n = max(1, int(math.ceil(span_hours / bucket_hours)))
    counts = np.zeros(n, dtype=int)
    for t in times:
        if start <= t < end:
            idx = int((t - start).total_seconds() / 3600.0 / bucket_hours)
            counts[min(idx, n - 1)] += 1
    return counts


def workload_failure_correlation(
    jobs: Sequence[JobRecord],
    failures: EventLog,
    bucket_hours: float = 24.0,
    n_permutations: int = 2000,
    seed: int = 0,
) -> CorrelationResult:
    """Correlate job-submission intensity with failure-event counts.

    The permutation test shuffles the failure series relative to the
    workload series and reports the fraction of shuffles whose |Spearman
    rho| is at least the observed one.
    """
    if not jobs:
        raise AnalysisError("no jobs supplied")
    if len(failures) == 0:
        raise AnalysisError("no failure events supplied")
    start = min(min(j.submit_time for j in jobs), failures.start)
    end = max(max(j.submit_time for j in jobs), failures.end) + timedelta(seconds=1)

    workload = bucket_counts([j.submit_time for j in jobs], start, end, bucket_hours)
    failure = bucket_counts(
        [e.timestamp for e in failures], start, end, bucket_hours
    )
    if workload.size < 3:
        raise AnalysisError("need at least 3 buckets; shrink bucket_hours")

    if workload.std() == 0.0 or failure.std() == 0.0:
        pearson = 0.0
        rho = 0.0
    else:
        pearson = float(np.corrcoef(workload, failure)[0, 1])
        rho = float(stats.spearmanr(workload, failure).statistic)

    rng = np.random.default_rng(seed)
    observed = abs(rho)
    hits = 0
    shuffled = failure.copy()
    for _ in range(n_permutations):
        rng.shuffle(shuffled)
        if shuffled.std() == 0.0 or workload.std() == 0.0:
            sample = 0.0
        else:
            sample = abs(float(stats.spearmanr(workload, shuffled).statistic))
        if sample >= observed - 1e-12:
            hits += 1
    p_value = (hits + 1) / (n_permutations + 1)

    return CorrelationResult(
        pearson_r=pearson,
        spearman_rho=rho,
        p_value=p_value,
        n_buckets=int(workload.size),
        workload_counts=tuple(int(x) for x in workload),
        failure_counts=tuple(int(x) for x in failure),
    )
