"""Parsing of the syslog-like operational log format.

The canonical line format written by :mod:`repro.loggen` (and accepted
here) is::

    2007-07-21T23:03:00 host=oss-03 comp=san sev=ERROR type=io_hw_failure \
        msg="RAID controller fault on port 3" tier=12 port=3

i.e. an ISO-8601 timestamp followed by space-separated ``key=value``
tokens; values containing spaces are double-quoted (with ``\\"`` and
``\\\\`` escapes).  ``host``, ``comp``, ``sev`` and ``type`` are required;
``msg`` is optional; every other key lands in ``attrs``.

Real logs are messy, so the parser supports a lenient mode (the default is
strict) that skips malformed lines and reports them instead of raising —
mirroring the preprocessing step the paper describes ("we filter failure
logs based on temporal and causal relationships between events").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from pathlib import Path
from typing import Iterable

from ..core.errors import ParseError
from .events import SEVERITIES, EventLog, LogEvent

__all__ = ["parse_line", "parse_lines", "parse_file", "format_event", "ParseReport"]

_REQUIRED_KEYS = ("host", "comp", "sev", "type")


def _tokenize(body: str, lineno: int) -> list[tuple[str, str]]:
    """Split ``key=value`` tokens, honouring double quotes in values."""
    pairs: list[tuple[str, str]] = []
    i, n = 0, len(body)
    while i < n:
        while i < n and body[i] == " ":
            i += 1
        if i >= n:
            break
        eq = body.find("=", i)
        if eq < 0:
            raise ParseError(f"line {lineno}: token without '=': {body[i:i+40]!r}")
        key = body[i:eq]
        if not key or " " in key:
            raise ParseError(f"line {lineno}: malformed key {key!r}")
        i = eq + 1
        if i < n and body[i] == '"':
            i += 1
            chars: list[str] = []
            while i < n:
                c = body[i]
                if c == "\\" and i + 1 < n:
                    chars.append(body[i + 1])
                    i += 2
                    continue
                if c == '"':
                    i += 1
                    break
                chars.append(c)
                i += 1
            else:
                raise ParseError(f"line {lineno}: unterminated quote for {key!r}")
            value = "".join(chars)
        else:
            j = body.find(" ", i)
            if j < 0:
                j = n
            value = body[i:j]
            i = j
        pairs.append((key, value))
    return pairs


def parse_line(line: str, lineno: int = 0) -> LogEvent:
    """Parse one log line into a :class:`LogEvent`.

    Raises :class:`~repro.core.errors.ParseError` on malformed input.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        raise ParseError(f"line {lineno}: empty or comment line")
    try:
        ts_text, _, body = stripped.partition(" ")
        timestamp = datetime.fromisoformat(ts_text)
    except ValueError as exc:
        raise ParseError(f"line {lineno}: bad timestamp {stripped[:30]!r}") from exc
    pairs = _tokenize(body, lineno)
    fields = dict(pairs)
    if len(fields) != len(pairs):
        raise ParseError(f"line {lineno}: duplicate keys")
    missing = [k for k in _REQUIRED_KEYS if k not in fields]
    if missing:
        raise ParseError(f"line {lineno}: missing required keys {missing}")
    severity = fields.pop("sev")
    if severity not in SEVERITIES:
        raise ParseError(f"line {lineno}: unknown severity {severity!r}")
    host = fields.pop("host")
    component = fields.pop("comp")
    event_type = fields.pop("type")
    message = fields.pop("msg", "")
    return LogEvent(
        timestamp=timestamp,
        source=host,
        component=component,
        severity=severity,
        event_type=event_type,
        message=message,
        attrs=fields,
    )


@dataclass
class ParseReport:
    """Outcome of a lenient parse: the events plus skipped-line diagnostics."""

    log: EventLog
    errors: list[tuple[int, str]] = field(default_factory=list)

    @property
    def n_skipped(self) -> int:
        """Number of lines that failed to parse."""
        return len(self.errors)


def parse_lines(lines: Iterable[str], strict: bool = True) -> ParseReport:
    """Parse many lines.

    In strict mode the first malformed line raises; in lenient mode
    malformed lines are recorded in :attr:`ParseReport.errors` (blank lines
    and ``#`` comments are skipped silently in both modes).
    """
    events: list[LogEvent] = []
    errors: list[tuple[int, str]] = []
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            events.append(parse_line(stripped, lineno))
        except ParseError as exc:
            if strict:
                raise
            errors.append((lineno, str(exc)))
    return ParseReport(EventLog(events), errors)


def parse_file(path: str | Path, strict: bool = True) -> ParseReport:
    """Parse a log file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_lines(fh, strict=strict)


def _quote(value: str) -> str:
    # Quote on any whitespace (not just ASCII space): parse_line strips
    # the ends of the line with str.strip(), which removes all Unicode
    # whitespace, so e.g. a trailing non-breaking space in the last field
    # would be lost if left unquoted.
    if (
        value
        and '"' not in value
        and "\\" not in value
        and not any(ch.isspace() for ch in value)
    ):
        return value
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def format_event(event: LogEvent) -> str:
    """Render a :class:`LogEvent` back to the canonical line format.

    ``parse_line(format_event(e))`` round-trips (timestamps at second
    precision or finer are preserved by ISO format).
    """
    parts = [
        event.timestamp.isoformat(),
        f"host={_quote(event.source)}",
        f"comp={_quote(event.component)}",
        f"sev={event.severity}",
        f"type={_quote(event.event_type)}",
    ]
    if event.message:
        parts.append(f"msg={_quote(event.message)}")
    for key in sorted(event.attrs):
        if key in ("host", "comp", "sev", "type", "msg"):
            raise ParseError(f"attribute key {key!r} collides with a reserved field")
        parts.append(f"{key}={_quote(str(event.attrs[key]))}")
    return " ".join(parts)
