"""Log event records and containers.

The paper works from two operational logs of the ABE cluster —
*compute-logs* (05/03/2007–10/02/2007) and *SAN-logs*
(09/05/2007–11/30/2007) — in which "events are reported with the node IP
addresses and the event time appended to the log information".  This
module defines the in-memory representation of such logs: a
:class:`LogEvent` per line and an :class:`EventLog` container with the
window/category queries the analyses in Section 3 need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, datetime, timedelta
from typing import Callable, Iterable, Iterator, Mapping

from ..core.errors import AnalysisError

__all__ = ["LogEvent", "EventLog", "SEVERITIES"]

SEVERITIES = ("DEBUG", "INFO", "WARN", "ERROR", "FATAL")


@dataclass(frozen=True, order=True)
class LogEvent:
    """One log line, normalized.

    Attributes
    ----------
    timestamp:
        Event time (naive local time, like syslog).
    source:
        Emitting node, e.g. ``oss-03``, ``compute-0412``, ``ddn-0``.
    component:
        Subsystem: ``san``, ``oss``, ``network``, ``disk``, ``batch``,
        ``filesystem``, ``job``, ...
    severity:
        One of :data:`SEVERITIES`.
    event_type:
        Machine-readable type, e.g. ``io_hw_failure``, ``outage_end``,
        ``mount_failure``, ``disk_replaced``, ``job_end``.
    message:
        Human-readable text.
    attrs:
        Additional key=value payload (job status, disk slot, ...).
    """

    timestamp: datetime
    source: str = field(compare=False)
    component: str = field(compare=False)
    severity: str = field(compare=False)
    event_type: str = field(compare=False)
    message: str = field(compare=False, default="")
    attrs: Mapping[str, str] = field(compare=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise AnalysisError(
                f"unknown severity {self.severity!r}; expected one of {SEVERITIES}"
            )
        if not self.source:
            raise AnalysisError("event source must be non-empty")
        if not self.event_type:
            raise AnalysisError("event type must be non-empty")

    @property
    def day(self) -> date:
        """Calendar day of the event."""
        return self.timestamp.date()

    def attr(self, key: str, default: str | None = None) -> str | None:
        """Payload attribute with default."""
        return self.attrs.get(key, default)


class EventLog:
    """A time-sorted collection of :class:`LogEvent`.

    The container is immutable-ish: combinators return new logs, so
    analysis pipelines can be written declaratively::

        outages = log.component("san").types("outage_start", "outage_end")
    """

    def __init__(self, events: Iterable[LogEvent] = ()) -> None:
        self._events = sorted(events, key=lambda e: e.timestamp)

    # -- basic container protocol ------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[LogEvent]:
        return iter(self._events)

    def __getitem__(self, idx: int) -> LogEvent:
        return self._events[idx]

    def __add__(self, other: "EventLog") -> "EventLog":
        return EventLog(list(self._events) + list(other._events))

    @property
    def events(self) -> list[LogEvent]:
        """All events, oldest first."""
        return list(self._events)

    # -- window handling ----------------------------------------------
    @property
    def start(self) -> datetime:
        """Timestamp of the first event."""
        if not self._events:
            raise AnalysisError("empty log has no start")
        return self._events[0].timestamp

    @property
    def end(self) -> datetime:
        """Timestamp of the last event."""
        if not self._events:
            raise AnalysisError("empty log has no end")
        return self._events[-1].timestamp

    def span_hours(self) -> float:
        """Hours between first and last event."""
        return (self.end - self.start).total_seconds() / 3600.0

    def between(self, start: datetime, end: datetime) -> "EventLog":
        """Events with ``start <= timestamp < end``."""
        return EventLog(e for e in self._events if start <= e.timestamp < end)

    # -- filtering combinators -----------------------------------------
    def filter(self, predicate: Callable[[LogEvent], bool]) -> "EventLog":
        """Generic predicate filter."""
        return EventLog(e for e in self._events if predicate(e))

    def component(self, *components: str) -> "EventLog":
        """Keep events from the given subsystem(s)."""
        keep = set(components)
        return self.filter(lambda e: e.component in keep)

    def types(self, *event_types: str) -> "EventLog":
        """Keep events of the given type(s)."""
        keep = set(event_types)
        return self.filter(lambda e: e.event_type in keep)

    def severity_at_least(self, severity: str) -> "EventLog":
        """Keep events at or above a severity level."""
        if severity not in SEVERITIES:
            raise AnalysisError(f"unknown severity {severity!r}")
        threshold = SEVERITIES.index(severity)
        return self.filter(lambda e: SEVERITIES.index(e.severity) >= threshold)

    def from_sources(self, *sources: str) -> "EventLog":
        """Keep events from the given node(s)."""
        keep = set(sources)
        return self.filter(lambda e: e.source in keep)

    # -- aggregation ----------------------------------------------------
    def sources(self) -> list[str]:
        """Distinct sources, sorted."""
        return sorted({e.source for e in self._events})

    def count_by_day(self) -> dict[date, int]:
        """Events per calendar day (used for Table 2-style summaries)."""
        counts: dict[date, int] = {}
        for e in self._events:
            counts[e.day] = counts.get(e.day, 0) + 1
        return counts

    def count_by_type(self) -> dict[str, int]:
        """Events per event type."""
        counts: dict[str, int] = {}
        for e in self._events:
            counts[e.event_type] = counts.get(e.event_type, 0) + 1
        return counts

    def daily_sources(self) -> dict[date, set[str]]:
        """Distinct sources seen per day (mount-failure storm analysis)."""
        out: dict[date, set[str]] = {}
        for e in self._events:
            out.setdefault(e.day, set()).add(e.source)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._events:
            return "EventLog(empty)"
        return (
            f"EventLog({len(self._events)} events, "
            f"{self.start.isoformat()} .. {self.end.isoformat()})"
        )
