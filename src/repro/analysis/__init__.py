"""Failure-log analysis toolkit (Section 3 of the paper).

Pipeline: parse (:mod:`parsing`) → filter into episodes/outages/storms
(:mod:`filtering`) → estimate availability (:mod:`availability`), disk
survival (:mod:`survival`), and job statistics (:mod:`jobs`).
"""

from .correlation import CorrelationResult, bucket_counts, workload_failure_correlation
from .availability import (
    DowntimeRow,
    availability_from_outages,
    availability_range,
    downtime_table,
    merge_overlapping,
    total_downtime_hours,
)
from .events import SEVERITIES, EventLog, LogEvent
from .filtering import (
    Episode,
    Outage,
    Storm,
    coalesce_episodes,
    detect_storms,
    mount_failures_by_day,
    pair_outages,
)
from .jobs import (
    COMPLETED,
    FAILED_OTHER,
    FAILED_TRANSIENT,
    JobRecord,
    JobStatistics,
    job_statistics,
    jobs_from_events,
)
from .parsing import ParseReport, format_event, parse_file, parse_line, parse_lines
from .survival import (
    ExponentialFit,
    KaplanMeier,
    WeibullFit,
    fit_exponential_censored,
    fit_weibull_censored,
)

__all__ = [
    "CorrelationResult",
    "bucket_counts",
    "workload_failure_correlation",
    "LogEvent",
    "EventLog",
    "SEVERITIES",
    "parse_line",
    "parse_lines",
    "parse_file",
    "format_event",
    "ParseReport",
    "Episode",
    "Outage",
    "Storm",
    "coalesce_episodes",
    "pair_outages",
    "detect_storms",
    "mount_failures_by_day",
    "DowntimeRow",
    "downtime_table",
    "availability_from_outages",
    "availability_range",
    "merge_overlapping",
    "total_downtime_hours",
    "KaplanMeier",
    "WeibullFit",
    "ExponentialFit",
    "fit_weibull_censored",
    "fit_exponential_censored",
    "JobRecord",
    "JobStatistics",
    "job_statistics",
    "jobs_from_events",
    "COMPLETED",
    "FAILED_TRANSIENT",
    "FAILED_OTHER",
]
