"""Job-log statistics and cluster utility.

Reproduces the Table 3 analysis: from the compute-logs, classify every
submitted job as completed, killed by a transient network error, or killed
by another (file-system/software) error, and derive the *cluster utility*

    CU = 1 − failed jobs / submitted jobs

— the user-perceived availability metric of Section 4.2.  The paper's
headline: transient network errors killed 1234 of 44085 jobs, five times
the 184 killed by all other error classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Iterable, Sequence

from ..core.errors import AnalysisError
from .events import EventLog, LogEvent

__all__ = ["JobRecord", "JobStatistics", "job_statistics", "jobs_from_events"]

COMPLETED = "completed"
FAILED_TRANSIENT = "failed_transient"
FAILED_OTHER = "failed_other"
_STATUSES = (COMPLETED, FAILED_TRANSIENT, FAILED_OTHER)


@dataclass(frozen=True)
class JobRecord:
    """One batch job's outcome."""

    job_id: str
    submit_time: datetime
    duration_hours: float
    status: str

    def __post_init__(self) -> None:
        if self.status not in _STATUSES:
            raise AnalysisError(
                f"job {self.job_id!r}: unknown status {self.status!r}; "
                f"expected one of {_STATUSES}"
            )
        if self.duration_hours < 0.0:
            raise AnalysisError(f"job {self.job_id!r}: negative duration")


@dataclass(frozen=True)
class JobStatistics:
    """Aggregated job outcomes (the Table 3 regenerator)."""

    total: int
    completed: int
    failed_transient: int
    failed_other: int

    @property
    def failed(self) -> int:
        """All failed jobs."""
        return self.failed_transient + self.failed_other

    @property
    def cluster_utility(self) -> float:
        """CU = 1 − failed/total."""
        if self.total == 0:
            raise AnalysisError("no jobs")
        return 1.0 - self.failed / self.total

    @property
    def transient_to_other_ratio(self) -> float:
        """How many times likelier a transient kill is than any other kill.

        The paper reports ≈ 5 for ABE (1234 vs 184... their text says "5
        times more likely"; 1234/184 ≈ 6.7 — we report the raw ratio and
        let callers round).
        """
        if self.failed_other == 0:
            raise AnalysisError("no non-transient failures; ratio undefined")
        return self.failed_transient / self.failed_other

    def format(self) -> str:
        """Render the three Table 3 rows."""
        return "\n".join(
            [
                f"Total jobs submitted                       {self.total:>6}",
                f"Total failures due to transient network    {self.failed_transient:>6}",
                f"Total failures due to other/file system    {self.failed_other:>6}",
            ]
        )


def job_statistics(jobs: Iterable[JobRecord]) -> JobStatistics:
    """Aggregate job records into :class:`JobStatistics`."""
    total = completed = transient = other = 0
    for job in jobs:
        total += 1
        if job.status == COMPLETED:
            completed += 1
        elif job.status == FAILED_TRANSIENT:
            transient += 1
        else:
            other += 1
    if total == 0:
        raise AnalysisError("no jobs to aggregate")
    return JobStatistics(total, completed, transient, other)


def jobs_from_events(log: EventLog, end_type: str = "job_end") -> list[JobRecord]:
    """Extract job records from ``job_end`` events.

    Expected attributes on each event: ``job`` (id), ``status`` (one of
    ``completed`` / ``failed_transient`` / ``failed_other``), and
    ``hours`` (run time).
    """
    jobs: list[JobRecord] = []
    for event in log.types(end_type):
        job_id = event.attr("job")
        status = event.attr("status")
        hours = event.attr("hours")
        if job_id is None or status is None or hours is None:
            raise AnalysisError(
                f"malformed {end_type!r} event at {event.timestamp.isoformat()}: "
                "needs job=, status=, hours="
            )
        jobs.append(
            JobRecord(
                job_id=job_id,
                submit_time=event.timestamp,
                duration_hours=float(hours),
                status=status,
            )
        )
    return jobs
