"""repro — dependability analysis of petascale cluster file systems.

A from-scratch reproduction of *"Scaling File Systems to Support Petascale
Clusters: A Dependability Analysis to Support Informed Design Choices"*
(Gaonkar, Rozier, Tong, Sanders; DSN 2008).

Subpackages
-----------
``repro.core``
    Stochastic activity network formalism, composition, simulation,
    rewards, experiments (the Möbius stand-in).
``repro.markov``
    Analytic CTMC oracles (steady-state, transient, MTTDL).
``repro.analysis``
    Failure-log analysis: parsing, episode filtering, availability,
    censored Weibull survival fits, job statistics.
``repro.loggen``
    Synthetic operational-log generation from simulation traces.
``repro.raid``
    Disk / RAID-tier / controller / DDN-unit SAN submodels.
``repro.cfs``
    The ABE cluster file system model and its petascale scaling.
``repro.experiments``
    Regenerators for every table and figure in the paper.
"""

__version__ = "1.0.0"

from . import core

__all__ = ["core", "__version__"]
