"""Deterministic random-number stream management.

Simulation studies need reproducibility (the same seed must yield the same
trajectory) and *independence across replications* (replication ``i`` must
not share a stream with replication ``j``).  Both are provided by a seed
tree built on :class:`numpy.random.SeedSequence`:

>>> root = SeedTree(1234)
>>> rep0 = root.child("replication", 0).generator()
>>> rep1 = root.child("replication", 1).generator()

Children are derived from the parent entropy plus a stable hash of the
key path, so adding a new named stream never perturbs existing ones —
unlike ``SeedSequence.spawn`` whose children depend on spawn order.
"""

from __future__ import annotations

import zlib
from typing import Iterable

import numpy as np

__all__ = ["SeedTree", "make_generator", "derive_seed"]


def _key_to_int(key: object) -> int:
    """Map an arbitrary hashable key to a stable 32-bit integer.

    Python's builtin ``hash`` is salted per process for strings, so it is
    unsuitable for reproducible seeding; we use CRC32 of the repr instead.
    """
    if isinstance(key, (int, np.integer)):
        return int(key) & 0xFFFFFFFF
    return zlib.crc32(repr(key).encode("utf-8")) & 0xFFFFFFFF


def derive_seed(base_seed: int, *path: object) -> np.random.SeedSequence:
    """Derive a :class:`numpy.random.SeedSequence` for a key path.

    Parameters
    ----------
    base_seed:
        Root entropy for the whole experiment.
    path:
        Arbitrary hashable keys identifying the stream (e.g.
        ``("replication", 3)``).
    """
    keys = [_key_to_int(k) for k in path]
    return np.random.SeedSequence(entropy=base_seed, spawn_key=tuple(keys))


def make_generator(base_seed: int, *path: object) -> np.random.Generator:
    """Create an independent :class:`numpy.random.Generator` for a key path."""
    return np.random.default_rng(derive_seed(base_seed, *path))


class SeedTree:
    """A node in a reproducible seed tree.

    Each node is identified by the root seed plus the path of keys leading
    to it.  Sibling nodes yield statistically independent generators, and
    the mapping from path to stream is stable across runs and process
    boundaries.
    """

    __slots__ = ("_base_seed", "_path")

    def __init__(self, base_seed: int, _path: tuple[object, ...] = ()) -> None:
        self._base_seed = int(base_seed)
        self._path = _path

    @property
    def base_seed(self) -> int:
        """Root entropy of the tree."""
        return self._base_seed

    @property
    def path(self) -> tuple[object, ...]:
        """Key path from the root to this node."""
        return self._path

    def child(self, *keys: object) -> "SeedTree":
        """Return the child node at ``keys`` below this node."""
        return SeedTree(self._base_seed, self._path + tuple(keys))

    def children(self, prefix: object, count: int) -> Iterable["SeedTree"]:
        """Yield ``count`` numbered children ``child(prefix, 0..count-1)``."""
        for i in range(count):
            yield self.child(prefix, i)

    def seed_sequence(self) -> np.random.SeedSequence:
        """Materialize this node as a :class:`numpy.random.SeedSequence`."""
        return derive_seed(self._base_seed, *self._path)

    def generator(self) -> np.random.Generator:
        """Materialize this node as a fresh :class:`numpy.random.Generator`."""
        return np.random.default_rng(self.seed_sequence())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedTree(base_seed={self._base_seed}, path={self._path!r})"
