"""Places and markings — the state variables of a stochastic activity network.

A *place* holds a non-negative integer token count; the vector of all place
values is the *marking* (the model state).  During simulation every
predicate, gate function, and reward function accesses the marking through
a :class:`LocalView`, which binds the *local* place names of one submodel
to slots of the shared global :class:`MarkingVector`.

The view instruments accesses:

* reads are recorded (when tracking is enabled) so the simulator can build
  the place → activity dependency map used for incremental enabling checks;
* writes are always recorded into the vector's ``changed`` set so the
  simulator knows which dependencies to re-evaluate after a firing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from .errors import ModelError, SimulationError

__all__ = ["Place", "MarkingVector", "LocalView", "FrozenView"]


@dataclass(frozen=True)
class Place:
    """Definition of a state variable in a leaf SAN.

    Attributes
    ----------
    name:
        Local name, unique within its SAN.
    initial:
        Initial token count (non-negative integer).
    """

    name: str
    initial: int = 0

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ModelError(
                f"place name must be non-empty and must not contain '/': {self.name!r}"
            )
        if self.initial < 0 or self.initial != int(self.initial):
            raise ModelError(
                f"place {self.name!r}: initial marking must be a non-negative "
                f"integer, got {self.initial!r}"
            )


class MarkingVector:
    """The global marking: one integer slot per flattened place.

    The vector also carries the bookkeeping shared by all views:
    ``changed`` (slots written since the simulator last drained it) and
    ``reads`` (slots read while tracking is on).
    """

    __slots__ = ("values", "changed", "reads", "tracking")

    def __init__(self, initial_values: list[int]) -> None:
        self.values: list[int] = list(initial_values)
        self.changed: set[int] = set()
        self.reads: set[int] = set()
        self.tracking: bool = False

    def reset(self, initial_values: list[int]) -> None:
        """Restore the initial marking (for a new replication)."""
        if len(initial_values) != len(self.values):
            raise SimulationError("initial marking length mismatch on reset")
        self.values[:] = initial_values
        self.changed.clear()
        self.reads.clear()
        self.tracking = False

    def drain_changed(self) -> set[int]:
        """Return and clear the set of slots written since the last drain."""
        changed = self.changed
        self.changed = set()
        return changed

    def begin_tracking(self) -> None:
        """Start recording read slots into ``reads``.

        The ``reads`` set object is reused (cleared, not reallocated) so
        views and the simulator can hold direct references to it.
        """
        self.reads.clear()
        self.tracking = True

    def end_tracking(self) -> set[int]:
        """Stop recording reads and return the recorded slot set.

        The returned set is the live scratch buffer: it is only valid
        until the next :meth:`begin_tracking`; copy it to keep it.
        """
        self.tracking = False
        return self.reads

    def __len__(self) -> int:
        return len(self.values)


class LocalView:
    """Name-addressed window onto the global marking for one submodel.

    Predicates and gate functions receive a view and use mapping syntax::

        def enabled(m):
            return m["up"] == 1 and m["tier_down"] == 0

        def effect(m, rng):
            m["up"] = 0
            m["failed_count"] += 1

    Values are non-negative integers; writing a negative value raises
    :class:`SimulationError` immediately, which turns modeling bugs into
    loud failures rather than silently corrupt markings.
    """

    __slots__ = ("_vector", "_index", "_values", "_known")

    def __init__(
        self,
        vector: MarkingVector,
        index: Mapping[str, int],
        known: set[int] | None = None,
    ) -> None:
        self._vector = vector
        self._index = index
        # The values list identity is stable (reset() assigns in place),
        # so caching the reference saves an attribute hop per access.
        self._values = vector.values
        # Optional filter for read tracking: slots already present in
        # ``known`` are not re-recorded into ``vector.reads``.  The
        # simulator binds each activity's discovered-dependency set here,
        # so once discovery converges, tracked evaluations leave ``reads``
        # empty and dependency registration short-circuits.
        self._known = known

    @property
    def names(self) -> tuple[str, ...]:
        """Local place names visible through this view."""
        return tuple(self._index)

    @property
    def raw(self) -> list[int]:
        """The underlying marking values (read-only by convention).

        Fast path for reward functions with a *declared* read set:
        resolve slots once with :meth:`slot` and index this list
        directly, bypassing name lookup and read tracking.  Only valid
        when every read is declared (``RateReward(..., reads=[...])``):
        raw reads are invisible to dependency discovery, so an
        undeclared raw read would silently miss marking updates.
        """
        return self._values

    def slot(self, name: str) -> int:
        """Global slot index for a local place name."""
        try:
            return self._index[name]
        except KeyError:
            raise SimulationError(
                f"unknown place {name!r}; visible places: {sorted(self._index)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._index)

    def __getitem__(self, name: str) -> int:
        try:
            slot = self._index[name]
        except KeyError:
            raise SimulationError(
                f"unknown place {name!r}; visible places: {sorted(self._index)}"
            ) from None
        vec = self._vector
        if vec.tracking:
            known = self._known
            if known is None or slot not in known:
                vec.reads.add(slot)
        return self._values[slot]

    def __setitem__(self, name: str, value: int) -> None:
        try:
            slot = self._index[name]
        except KeyError:
            raise SimulationError(
                f"unknown place {name!r}; visible places: {sorted(self._index)}"
            ) from None
        ivalue = value if type(value) is int else int(value)
        if ivalue < 0:
            raise SimulationError(
                f"attempt to set place {name!r} to negative value {value!r}"
            )
        values = self._values
        if values[slot] != ivalue:
            values[slot] = ivalue
            self._vector.changed.add(slot)

    def get(self, name: str, default: int | None = None) -> int | None:
        """Mapping-style ``get`` with optional default."""
        if name in self._index:
            return self[name]
        return default

    def as_dict(self) -> dict[str, int]:
        """Snapshot of all visible places (reads are tracked)."""
        return {name: self[name] for name in self._index}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalView({self.as_dict()!r})"


class FrozenView(LocalView):
    """A :class:`LocalView` whose reads never record, tracking or not.

    The compiled engine hands this view to the enabling predicates (and
    verified distribution callables) of activities with *declared* read
    sets: their dependencies are wired at compile time, so read tracking
    is pure overhead — this view drops the tracking branch from every
    ``__getitem__`` and lets the event loops leave the vector's tracking
    flag untouched around declared evaluations.  Writes behave exactly
    like :class:`LocalView` (recorded into ``changed``), so even a
    misbehaving predicate cannot corrupt the marking silently.
    """

    __slots__ = ()

    def __getitem__(self, name: str) -> int:
        try:
            return self._values[self._index[name]]
        except KeyError:
            raise SimulationError(
                f"unknown place {name!r}; visible places: {sorted(self._index)}"
            ) from None
