"""Model-integrity sanitizer: declaration cross-checking and model lint.

The compiled engine's speedups all rest on *declared* activity reads and
writes, case branches and reward forms being truthful, but declarations
are only verified on an activity's first completion — a declaration that
is wrong on a later path silently produces wrong numbers.  This module
is the TSan/ASan analogue for that contract:

* :func:`sanitized_run` (reached through ``Simulator(sanitize=True)`` or
  ``engine="sanitize"``) executes a run on a fully instrumented
  interpreting event loop: every place access and marking write is
  shadow-tracked and cross-checked against the declarations on **every**
  evaluation and **every** firing, not just the first.  Violations are
  collected with full provenance (activity, place path, event index,
  simulated time) into a :class:`SanitizerReport` attached to the
  :class:`~repro.core.simulation.RunResult`.  The instrumented loop
  consumes the RNG stream exactly like
  ``Simulator(model, sample_batch=None, engine="reference")`` — on a
  clean model its trajectory and results are bit-identical to that
  per-draw reference run, which is the differential contract pinned by
  ``tests/test_sanitizer.py``.

* :func:`lint_model` statically checks a model (a bare SAN, a
  composition node, a :class:`~repro.core.composition.FlatModel`, or a
  facade exposing ``.model``) without simulating: declaration coverage,
  unresolved place names, undeclared reads visible on the initial
  marking, distribution-parameter NaN guards and sampling sanity,
  marking-dependent case probability sums, instant-chain cycle
  candidates, unreachable activities and dead places.

See ``docs/robustness.md`` ("Model integrity") for the full semantics
and the mutation-testing harness that proves both layers effective.
"""

from __future__ import annotations

import heapq
import math
import operator
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .composition import FlatModel, Node, flatten
from .distributions import Distribution
from .errors import (
    InstantaneousLoopError,
    SanitizerError,
    SimulationBudgetError,
    SimulationError,
)
from .gates import _noop
from .places import LocalView
from .rewards import Affine, ImpulseReward, RateReward, RewardResult
from .san import SAN, TIMED
from .trace import BinaryTrace, EventTrace

__all__ = [
    "SanitizerViolation",
    "SanitizerReport",
    "sanitized_run",
    "LintFinding",
    "LintReport",
    "lint_model",
]

_CMP_FNS = {
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
    ">=": operator.ge,
    ">": operator.gt,
}


# ----------------------------------------------------------------------
# report structures
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SanitizerViolation:
    """One declaration violation observed by the instrumented run.

    Attributes
    ----------
    kind:
        Violation class: ``"undeclared-read"``, ``"undeclared-write"``,
        ``"write-mismatch"``, ``"rng-in-declared-effect"``,
        ``"case-sum"``, ``"form-mismatch"``, ``"non-finite-reward"``,
        ``"unresolved-read"``, ``"unresolved-write"``,
        ``"unresolved-guard"``, ``"unresolved-reward-read"``,
        ``"unresolved-form-place"``.
    subject:
        Activity path or reward name the violation belongs to.
    place:
        Offending place path when one is identifiable, else ``None``.
    message:
        Human-readable description.
    event_index:
        Number of events executed when the violation was first observed
        (0 for violations detected at initialization).
    sim_time:
        Simulated time at first observation.
    """

    kind: str
    subject: str
    place: str | None
    message: str
    event_index: int
    sim_time: float

    def __str__(self) -> str:  # pragma: no cover - convenience
        where = f" [{self.place}]" if self.place else ""
        return (
            f"{self.kind}: {self.subject}{where} at event "
            f"{self.event_index}, t={self.sim_time:.6g}: {self.message}"
        )


@dataclass
class SanitizerReport:
    """Outcome of one instrumented (``engine="sanitize"``) run.

    ``violations`` holds one entry per distinct ``(kind, subject,
    place)`` triple with the provenance of its *first* observation;
    ``checks`` counts how many cross-checks of each class actually ran,
    so a clean report is distinguishable from a report that checked
    nothing.
    """

    model: str
    n_events: int = 0
    final_time: float = 0.0
    violations: list[SanitizerViolation] = field(default_factory=list)
    checks: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the run recorded no violations."""
        return not self.violations

    def format(self) -> str:
        """Multi-line human-readable summary."""
        head = (
            f"sanitizer: model {self.model!r}, {self.n_events} events to "
            f"t={self.final_time:g}, "
            f"{sum(self.checks.values())} checks, "
            f"{len(self.violations)} violation(s)"
        )
        lines = [head]
        for v in self.violations:
            lines.append(f"  - {v}")
        return "\n".join(lines)


class _RecordingRng:
    """Delegating rng proxy that flags any use.

    Declared-writes effects must never touch the rng (the compiled
    kernels do not), so the sanitizer wraps the stream around them with
    this proxy: every attribute access is recorded but delegated, which
    keeps the draw stream identical to the plain Python path while still
    detecting the contract breach.
    """

    __slots__ = ("_rng", "used")

    def __init__(self, rng) -> None:
        self._rng = rng
        self.used = False

    def __getattr__(self, name: str):
        object.__setattr__(self, "used", True)
        return getattr(object.__getattribute__(self, "_rng"), name)


# ----------------------------------------------------------------------
# instrumented execution
# ----------------------------------------------------------------------
def sanitized_run(
    sim,
    until: float,
    *,
    warmup: float = 0.0,
    rewards: Sequence[RateReward | ImpulseReward] = (),
    traces: Sequence[BinaryTrace | EventTrace] = (),
    rng: np.random.Generator,
    stop_predicate: Callable[[LocalView], bool] | None = None,
    initial_marking: Sequence[int] | None = None,
):
    """Execute one instrumented run for ``sim`` (a Simulator).

    Called by :meth:`Simulator.run` when ``engine="sanitize"``; the rng
    has already been resolved (so stream selection matches the other
    engines run-for-run).  Returns a
    :class:`~repro.core.simulation.RunResult` whose
    ``sanitizer_report`` field carries the violation record; with
    ``sim.strict`` a non-clean report raises
    :class:`~repro.core.errors.SanitizerError` instead.
    """
    from .simulation import RunResult  # cycle: simulation imports us lazily

    model: FlatModel = sim.model
    acts = model.activities
    n_acts = len(acts)
    n_places = model.n_places
    canonical = model.canonical
    max_chain = sim.max_instant_chain

    report = SanitizerReport(model=model.name)
    checks = report.checks
    for key in (
        "predicate_evals",
        "distribution_evals",
        "write_checks",
        "case_selections",
        "reward_evals",
    ):
        checks[key] = 0
    _seen: set[tuple[str, str, str | None]] = set()
    n_events = 0
    now = 0.0

    def violate(kind: str, subject: str, place: str | None, message: str) -> None:
        key = (kind, subject, place)
        if key in _seen:
            return
        _seen.add(key)
        report.violations.append(
            SanitizerViolation(kind, subject, place, message, n_events, now)
        )

    # -- marking and views ------------------------------------------------
    vector = model.new_marking()
    if initial_marking is not None:
        init_values = [int(v) for v in initial_marking]
        if len(init_values) != len(model.initial):
            raise SimulationError(
                f"initial_marking has {len(init_values)} entries, "
                f"model has {len(model.initial)} places"
            )
        if any(v < 0 for v in init_values):
            raise SimulationError("initial_marking entries must be >= 0")
    values = vector.values
    changed = vector.changed
    vreads = vector.reads
    # known=None: every tracked read is recorded — full shadow tracking.
    views = [LocalView(vector, act.index, None) for act in acts]
    gview = model.global_view(vector)
    act_paths = [act.path for act in acts]
    preds: list[Callable] = [None] * n_acts
    ig_fns: list[tuple] = [()] * n_acts
    og_fns: list[tuple] = [()] * n_acts
    cases_of = [act.definition.cases for act in acts]
    case_bounds: list[tuple | None] = [None] * n_acts
    is_timed = [act.definition.kind == TIMED for act in acts]
    priorities = [act.definition.priority for act in acts]
    reactivate = [act.definition.reactivate for act in acts]
    dists = [act.definition.distribution for act in acts]
    declared = [False] * n_acts
    declared_slots: list[set[int] | None] = [None] * n_acts
    # write_check[aid]: None, or one of the three kernel-eligible shapes
    # ("plain", ops) / ("guard", slot, cmp_fn, value, ops) /
    # ("case", branch_ops) with ops = tuple[(slot, is_add, amount)].
    write_check: list[tuple | None] = [None] * n_acts

    dep_lists: list[list[int]] = [[] for _ in range(n_places)]
    act_known: list[set[int]] = [set() for _ in range(n_acts)]

    def _ops_for(act, writes):
        ops = []
        for pname, kind, amount in writes:
            slot = act.index.get(pname)
            if slot is None:
                violate(
                    "unresolved-write",
                    act.path,
                    pname,
                    f"declared write {pname!r} is not a place of its SAN",
                )
                return None
            ops.append((slot, kind == "add", amount))
        return tuple(ops)

    for act in acts:
        aid = act.ident
        d = act.definition
        gates = d.input_gates
        if len(gates) == 1:
            preds[aid] = gates[0].predicate
        else:
            gate_preds = tuple(g.predicate for g in gates)

            def composed(m, _preds=gate_preds):
                for p_ in _preds:
                    if not p_(m):
                        return False
                return True

            preds[aid] = composed
        ig_fns[aid] = tuple(g.function for g in gates if g.function is not _noop)
        og_fns[aid] = tuple(og.function for og in d.output_gates)

        if d.reads is not None:
            slots: set[int] = set()
            resolved = True
            for pname in d.reads:
                slot = act.index.get(pname)
                if slot is None:
                    violate(
                        "unresolved-read",
                        act.path,
                        pname,
                        f"declared read {pname!r} is not a place of its SAN",
                    )
                    resolved = False
                else:
                    slots.add(slot)
            if resolved:
                declared[aid] = True
                declared_slots[aid] = slots
                for slot in slots:
                    act_known[aid].add(slot)
                    dep_lists[slot].append(aid)
            # Unresolved declarations fall back to tracked discovery so
            # the run still makes progress (the engine would refuse to
            # compile; here the violation *is* the diagnosis).

        if d.cases:
            if not any(callable(case.probability) for case in d.cases):
                acc = 0.0
                bounds = []
                for case in d.cases:
                    acc += float(case.probability)
                    bounds.append(acc)
                case_bounds[aid] = tuple(bounds)

        # Mirror the compile-time kernel-eligibility rules so the write
        # cross-check covers exactly the firings the compiled engine
        # would apply as precomputed slot ops.
        if not ig_fns[aid] and not d.cases and d.output_gates and all(
            og.writes is not None and og.when is None for og in d.output_gates
        ):
            all_ops = []
            ok = True
            for og in d.output_gates:
                ops = _ops_for(act, og.writes)
                if ops is None:
                    ok = False
                    break
                all_ops.extend(ops)
            if ok:
                write_check[aid] = ("plain", tuple(all_ops))
        elif (
            not ig_fns[aid]
            and not d.cases
            and len(d.output_gates) == 1
            and d.output_gates[0].writes is not None
            and d.output_gates[0].when is not None
        ):
            og = d.output_gates[0]
            pname, cmp, gval = og.when
            slot = act.index.get(pname)
            if slot is None:
                violate(
                    "unresolved-guard",
                    act.path,
                    pname,
                    f"write guard place {pname!r} is not a place of its SAN",
                )
            else:
                ops = _ops_for(act, og.writes)
                if ops is not None:
                    write_check[aid] = ("guard", slot, _CMP_FNS[cmp], gval, ops)
        elif (
            not ig_fns[aid]
            and d.cases
            and case_bounds[aid] is not None
            and all(case.writes is not None for case in d.cases)
            and all(
                og.writes is not None and og.when is None
                for og in d.output_gates
            )
        ):
            og_ops: list = []
            ok = True
            for og in d.output_gates:
                ops = _ops_for(act, og.writes)
                if ops is None:
                    ok = False
                    break
                og_ops.extend(ops)
            if ok:
                branch_ops = []
                for case in d.cases:
                    ops = _ops_for(act, case.writes)
                    if ops is None:
                        ok = False
                        break
                    branch_ops.append(ops + tuple(og_ops))
                if ok:
                    write_check[aid] = ("case", tuple(branch_ops))

    # -- reward / trace wiring -------------------------------------------
    rate_rewards: list[RateReward] = []
    impulse_rewards: list[ImpulseReward] = []
    for r in rewards:
        if isinstance(r, RateReward):
            rate_rewards.append(r)
        elif isinstance(r, ImpulseReward):
            impulse_rewards.append(r)
        else:
            raise SimulationError(f"unsupported reward object: {r!r}")

    results: dict[str, RewardResult] = {}
    for r in rate_rewards:
        if r.name in results:
            raise SimulationError(f"duplicate reward name {r.name!r}")
        results[r.name] = RewardResult(r.name, "rate")
    for r in impulse_rewards:
        if r.name in results:
            raise SimulationError(f"duplicate reward name {r.name!r}")
        results[r.name] = RewardResult(r.name, "impulse")

    n_rates = len(rate_rewards)
    rate_results = [results[r.name] for r in rate_rewards]
    rate_fns = [r.function for r in rate_rewards]
    rate_views = [LocalView(vector, model.paths, None) for _ in range(n_rates)]
    paths_index = model.paths
    rate_lo = [0.0] * n_rates
    rate_hi = [0.0] * n_rates
    for i, r in enumerate(rate_rewards):
        if r.window is None:
            rate_lo[i] = warmup
            rate_hi[i] = until
        else:
            w0, w1 = r.window
            rate_lo[i] = warmup if warmup > w0 else w0
            rate_hi[i] = until if until < w1 else w1

    # Declared reward read sets, resolved to slots (globs expanded).
    rate_declared_slots: list[set[int] | None] = [None] * n_rates
    for i, r in enumerate(rate_rewards):
        if r.reads is None:
            continue
        slots: set[int] = set()
        resolved = True
        for entry in r.reads:
            slot = paths_index.get(entry)
            hits = [slot] if slot is not None else list(model.match(entry).values())
            if not hits:
                violate(
                    "unresolved-reward-read",
                    r.name,
                    entry,
                    f"declared read {entry!r} matches no place",
                )
                resolved = False
            else:
                slots.update(hits)
        if resolved:
            rate_declared_slots[i] = slots

    # Declared reward forms, resolved to the canonical guard/affine
    # arithmetic the engine's form kernels compute.
    rate_forms: list[tuple | None] = [None] * n_rates

    def _form_slot(rname: str, place: str) -> int | None:
        slot = paths_index.get(place)
        if slot is not None:
            return slot
        matches = model.match(place)
        if len(matches) != 1:
            violate(
                "unresolved-form-place",
                rname,
                place,
                f"form place {place!r} resolved to {len(matches)} places; "
                "expected exactly one",
            )
            return None
        return next(iter(matches.values()))

    for i, r in enumerate(rate_rewards):
        if r.form is None:
            continue
        f = r.form
        ok = True
        terms = []
        for p_, coef, div in f.terms:
            slot = _form_slot(r.name, p_)
            if slot is None:
                ok = False
                break
            terms.append((slot, coef, div))
        guards = []
        if ok:
            for place, cmp, gval in f.guards:
                if isinstance(place, tuple):
                    sa = _form_slot(r.name, place[0])
                    sb = _form_slot(r.name, place[1])
                    if sa is None or sb is None:
                        ok = False
                        break
                else:
                    sa = _form_slot(r.name, place)
                    sb = -1
                    if sa is None:
                        ok = False
                        break
                guards.append((_CMP_FNS[cmp], gval, sa, sb))
        if ok:
            rate_forms[i] = (tuple(guards), f.base, tuple(terms))

    def form_value(i: int) -> float:
        guards, base, terms = rate_forms[i]
        for gcmp, gv, sa, sb in guards:
            if not gcmp(values[sa] if sb < 0 else values[sa] - values[sb], gv):
                return 0.0
        acc = base
        for ts_, tc, td in terms:
            acc += tc * values[ts_] / td
        return acc

    probe_list: list[tuple[float, int]] = []
    for i, r in enumerate(rate_rewards):
        if r.probe_times:
            for t in r.probe_times:
                if t > until:
                    raise SimulationError(
                        f"rate reward {r.name!r}: probe time {t} "
                        f"exceeds until={until}"
                    )
                probe_list.append((t, i))
    probe_list.sort()
    n_probes = len(probe_list)
    probe_pos = 0

    binary_traces: list[BinaryTrace] = []
    event_traces: list[EventTrace] = []
    trace_map: dict[str, BinaryTrace | EventTrace] = {}
    for tr in traces:
        if tr.name in trace_map:
            raise SimulationError(f"duplicate trace name {tr.name!r}")
        trace_map[tr.name] = tr
        tr.reset()
        if isinstance(tr, BinaryTrace):
            binary_traces.append(tr)
        elif isinstance(tr, EventTrace):
            event_traces.append(tr)
        else:
            raise SimulationError(f"unsupported trace object: {tr!r}")
    n_btraces = len(binary_traces)
    btrace_views = [
        LocalView(vector, model.paths, None) for _ in range(n_btraces)
    ]
    btrace_values = [False] * n_btraces

    impulse_by_act: list[list | None] = [None] * n_acts
    for r in impulse_rewards:
        ids = sim._matching_ids(r.activity_pattern)
        if not ids:
            raise SimulationError(
                f"impulse reward {r.name!r} matches no activity "
                f"(pattern {r.activity_pattern!r})"
            )
        ilo, ihi = r.window if r.window is not None else (0.0, float("inf"))
        entry = (
            (results[r.name], None, r.value, ilo, ihi)
            if callable(r.value)
            else (results[r.name], float(r.value), None, ilo, ihi)
        )
        for aid in ids:
            lst = impulse_by_act[aid]
            if lst is None:
                lst = impulse_by_act[aid] = []
            lst.append(entry)
    etrace_by_act: list[list[EventTrace] | None] = [None] * n_acts
    for tr in event_traces:
        ids = sim._matching_ids(tr.activity_pattern)
        if not ids:
            raise SimulationError(
                f"event trace {tr.name!r} matches no activity "
                f"(pattern {tr.activity_pattern!r})"
            )
        for aid in ids:
            lst = etrace_by_act[aid]
            if lst is None:
                lst = etrace_by_act[aid] = []
            lst.append(tr)

    rate_values = [0.0] * n_rates
    rate_integrals = [0.0] * n_rates

    def eval_rate(i: int) -> float:
        """Fully tracked evaluation with every cross-check applied."""
        checks["reward_evals"] += 1
        vector.tracking = True
        vreads.clear()
        try:
            val = float(rate_fns[i](rate_views[i]))
        finally:
            vector.tracking = False
        dslots = rate_declared_slots[i]
        if dslots is not None:
            for slot in vreads:
                if slot not in dslots:
                    violate(
                        "undeclared-read",
                        rate_rewards[i].name,
                        canonical[slot],
                        "reward function read a place outside its "
                        "declared read set",
                    )
        if rate_forms[i] is not None:
            kval = form_value(i)
            if kval != val:
                violate(
                    "form-mismatch",
                    rate_rewards[i].name,
                    None,
                    f"declared form evaluates to {kval!r} but the reward "
                    f"function returned {val!r}",
                )
        if not math.isfinite(val):
            violate(
                "non-finite-reward",
                rate_rewards[i].name,
                None,
                f"reward function returned {val!r}",
            )
        return val

    def eval_btrace(i: int) -> bool:
        vector.tracking = True
        vreads.clear()
        try:
            val = bool(binary_traces[i].function(btrace_views[i]))
        finally:
            vector.tracking = False
        return val

    # -- enabling / sampling ---------------------------------------------
    epoch = 0
    stamp = [0] * n_acts
    token = [0] * n_acts
    enabled_instant = [False] * n_acts
    inst_enabled: set[int] = set()
    heap: list[tuple[float, int, int, int]] = []
    seq = 0

    def eval_pred(aid: int) -> bool:
        checks["predicate_evals"] += 1
        vector.tracking = True
        vreads.clear()
        try:
            en = preds[aid](views[aid])
        finally:
            vector.tracking = False
        if declared[aid]:
            dslots = declared_slots[aid]
            for slot in vreads:
                if slot not in dslots:
                    violate(
                        "undeclared-read",
                        act_paths[aid],
                        canonical[slot],
                        "enabling predicate read a place outside the "
                        "declared read set",
                    )
            # Declared activities do NOT grow their dependency set: the
            # engine wires exactly the declared slots, so growing it here
            # would give the sanitizer wake-ups the engine misses and the
            # trajectories could diverge on the very models this mode is
            # meant to diagnose.
        else:
            known = act_known[aid]
            for slot in vreads:
                if slot not in known:
                    known.add(slot)
                    dep_lists[slot].append(aid)
        return bool(en)

    def draw_delay(aid: int) -> float:
        dist = dists[aid]
        if not isinstance(dist, Distribution):
            # Marking-dependent distribution callable: evaluate tracked.
            checks["distribution_evals"] += 1
            vector.tracking = True
            vreads.clear()
            try:
                dist = dist(views[aid])
            finally:
                vector.tracking = False
            if declared[aid]:
                dslots = declared_slots[aid]
                for slot in vreads:
                    if slot not in dslots:
                        violate(
                            "undeclared-read",
                            act_paths[aid],
                            canonical[slot],
                            "distribution callable read a place outside "
                            "the declared read set",
                        )
            else:
                known = act_known[aid]
                for slot in vreads:
                    if slot not in known:
                        known.add(slot)
                        dep_lists[slot].append(aid)
            if not isinstance(dist, Distribution):
                raise SimulationError(
                    f"activity {act_paths[aid]!r}: "
                    "distribution callable did not return a Distribution"
                )
        delay = dist.sample(rng)
        if not delay >= 0.0:  # also catches NaN
            raise SimulationError(
                f"activity {act_paths[aid]!r} sampled invalid delay {delay!r}"
            )
        return delay

    def update_timed(aid: int, en: bool) -> None:
        nonlocal seq
        tok = token[aid]
        if en:
            if not tok & 1:
                tok += 1
            elif reactivate[aid]:
                tok += 2
            else:
                return
            token[aid] = tok
            delay = draw_delay(aid)
            ft = now + delay
            if ft <= until:
                heapq.heappush(heap, (ft, seq, aid, tok))
            seq += 1
        elif tok & 1:
            token[aid] = tok + 1

    # -- firing with write cross-checks ----------------------------------
    def fire(aid: int) -> None:
        nonlocal n_events
        n_events += 1
        report.n_events = n_events
        view = views[aid]
        check = write_check[aid]
        ops = None
        proxy = None
        if check is not None:
            shape = check[0]
            if shape == "plain":
                ops = check[1]
            elif shape == "guard":
                _shape, gslot, gcmp, gval, gops = check
                ops = gops if gcmp(values[gslot], gval) else ()
            # "case" resolves after the uniform below
            proxy = _RecordingRng(rng)
        pre: dict[int, int] | None = None
        if ops is not None:
            pre = {slot: values[slot] for slot, _a, _v in ops}
        effect_rng = proxy if proxy is not None else rng

        for fn in ig_fns[aid]:
            fn(view, rng)
        cases = cases_of[aid]
        if cases:
            checks["case_selections"] += 1
            u = rng.uniform()
            bounds = case_bounds[aid]
            if bounds is not None:
                idx = len(bounds) - 1
                for ci, acc in enumerate(bounds):
                    if u <= acc:
                        idx = ci
                        break
            else:
                probs = [case.probability_in(view) for case in cases]
                total = sum(probs)
                if not (abs(total - 1.0) <= 1e-9):
                    violate(
                        "case-sum",
                        act_paths[aid],
                        None,
                        f"case probabilities sum to {total} at completion",
                    )
                acc = 0.0
                idx = len(cases) - 1
                for ci, p_ in enumerate(probs):
                    acc += p_
                    if u <= acc:
                        idx = ci
                        break
            if check is not None and check[0] == "case":
                ops = check[1][idx]
                pre = {slot: values[slot] for slot, _a, _v in ops}
            cases[idx].function(view, effect_rng)
        for og in og_fns[aid]:
            og(view, effect_rng)

        if ops is not None:
            checks["write_checks"] += 1
            predicted: dict[int, int] = {}
            for slot, is_add, amount in ops:
                cur = predicted.get(slot, pre[slot])
                predicted[slot] = cur + amount if is_add else amount
            for slot in changed:
                if slot not in predicted:
                    violate(
                        "undeclared-write",
                        act_paths[aid],
                        canonical[slot],
                        "effect wrote a place missing from the declared "
                        "write ops",
                    )
            for slot, v in predicted.items():
                if values[slot] != v:
                    violate(
                        "write-mismatch",
                        act_paths[aid],
                        canonical[slot],
                        f"declared ops give {v}, the effect function "
                        f"wrote {values[slot]}",
                    )
                elif v < 0:  # pragma: no cover - view rejects negatives
                    violate(
                        "write-mismatch",
                        act_paths[aid],
                        canonical[slot],
                        f"declared ops drive the place negative ({v})",
                    )
            if proxy is not None and proxy.used:
                violate(
                    "rng-in-declared-effect",
                    act_paths[aid],
                    None,
                    "an effect with fully declared writes used the rng; "
                    "the compiled kernel would not",
                )

        # impulse rewards / event traces observe the completion
        if now >= warmup:
            obs = impulse_by_act[aid]
            if obs is not None:
                for res, static, fn, ilo, ihi in obs:
                    if ilo <= now <= ihi:
                        val = static if fn is None else fn(gview)
                        if not math.isfinite(val):
                            violate(
                                "non-finite-reward",
                                res.name,
                                None,
                                f"impulse value evaluated to {val!r}",
                            )
                        res.impulse_sum += val
                        res.count += 1
        etr = etrace_by_act[aid]
        if etr is not None:
            path = act_paths[aid]
            for tr in etr:
                tr.record(now, path, gview)

    def settle(dirty: list[int]) -> None:
        nonlocal epoch
        chain = 0
        while True:
            dirty.sort()
            for aid in dirty:
                en = eval_pred(aid)
                if is_timed[aid]:
                    update_timed(aid, en)
                elif en != enabled_instant[aid]:
                    enabled_instant[aid] = en
                    if en:
                        inst_enabled.add(aid)
                    else:
                        inst_enabled.discard(aid)
            del dirty[:]
            if not inst_enabled:
                return
            best = -1
            best_pri = 0
            for iid in inst_enabled:
                pri = priorities[iid]
                if best < 0 or pri > best_pri or (pri == best_pri and iid < best):
                    best = iid
                    best_pri = pri
            chain += 1
            if chain > max_chain:
                raise InstantaneousLoopError(
                    f"more than {max_chain} instantaneous firings at "
                    f"t={now}; last activity {act_paths[best]!r}"
                )
            fire(best)
            epoch += 1
            for slot in changed:
                for d in dep_lists[slot]:
                    if stamp[d] != epoch:
                        stamp[d] = epoch
                        dirty.append(d)
            changed.clear()

    # -- initialization at t = 0 -----------------------------------------
    # Mirror the engine's two-stage initialization: the compile-time
    # pre-evaluation happens on the *model's* initial marking (it seeds
    # tracked dependency discovery and consumes no rng), then a supplied
    # initial_marking re-derives every enabling through settle().
    has_instants = any(not t for t in is_timed)
    init_en = [False] * n_acts
    for aid in range(n_acts):
        init_en[aid] = eval_pred(aid)
    if initial_marking is None:
        for aid in range(n_acts):
            if is_timed[aid]:
                if init_en[aid]:
                    token[aid] = 1
                    delay = draw_delay(aid)
                    if delay <= until:
                        heap.append((delay, seq, aid, 1))
                    seq += 1
            else:
                enabled_instant[aid] = init_en[aid]
                if init_en[aid]:
                    inst_enabled.add(aid)
        heapq.heapify(heap)
        if has_instants:
            settle([])
    else:
        vector.reset(init_values)
        settle(list(range(n_acts)))

    for i in range(n_rates):
        rate_values[i] = eval_rate(i)
    for i, tr in enumerate(binary_traces):
        btrace_values[i] = eval_btrace(i)
        tr.observe(0.0, btrace_values[i])

    last_t = 0.0
    stopped_early = False

    def integrate_to(t: float) -> None:
        nonlocal last_t
        for i in range(n_rates):
            val = rate_values[i]
            if val != 0.0:
                lo = rate_lo[i]
                hi = rate_hi[i]
                a = last_t if last_t > lo else lo
                b = t if t < hi else hi
                if b > a:
                    rate_integrals[i] += val * (b - a)
        last_t = t

    budget_events = sim.max_events
    budget_wall = sim.max_wall_s
    has_budget = budget_events is not None or budget_wall is not None
    monotonic = time.monotonic
    wall_deadline = (
        monotonic() + budget_wall if budget_wall is not None else None
    )

    def raise_budget(kind: str, limit) -> None:
        partial_rewards: dict[str, dict] = {}
        for ri in range(n_rates):
            partial_rewards[rate_rewards[ri].name] = {
                "kind": "rate",
                "integral": rate_integrals[ri],
                "value": rate_values[ri],
            }
        for r_ in impulse_rewards:
            res_ = results[r_.name]
            partial_rewards[r_.name] = {
                "kind": "impulse",
                "impulse_sum": res_.impulse_sum,
                "count": res_.count,
            }
        raise SimulationBudgetError(
            f"simulation exceeded {kind}={limit!r} after {n_events} "
            f"events at t={now:.6g} (until={until:g})",
            budget=kind,
            limit=limit,
            n_events=n_events,
            sim_time=now,
            marking={path: values[slot] for path, slot in model.paths.items()},
            rewards=partial_rewards,
        )

    # -- event loop -------------------------------------------------------
    dirty: list[int] = []
    while heap:
        ftime, _s, aid, tok = heapq.heappop(heap)
        if tok != token[aid]:
            continue
        if ftime > until:
            break
        if has_budget:
            if budget_events is not None and n_events >= budget_events:
                raise_budget("max_events", budget_events)
            if wall_deadline is not None and monotonic() >= wall_deadline:
                raise_budget("max_wall_s", budget_wall)
        while probe_pos < n_probes and probe_list[probe_pos][0] <= ftime:
            pt, pi = probe_list[probe_pos]
            rate_results[pi].instants.append((pt, rate_values[pi]))
            probe_pos += 1
        if n_rates:
            integrate_to(ftime)
        now = ftime
        token[aid] += 1

        fire(aid)
        epoch += 1
        stamp[aid] = epoch
        dirty.append(aid)
        for slot in changed:
            for d in dep_lists[slot]:
                if stamp[d] != epoch:
                    stamp[d] = epoch
                    dirty.append(d)
        changed.clear()
        settle(dirty)

        # Re-evaluate EVERY rate reward and binary trace: pure functions
        # of the marking, so the values match the engine's touched-list
        # refresh — and every evaluation is a fresh read/form check.
        for i in range(n_rates):
            rate_values[i] = eval_rate(i)
        for i in range(n_btraces):
            val = eval_btrace(i)
            if val != btrace_values[i]:
                btrace_values[i] = val
                binary_traces[i].observe(now, val)

        if stop_predicate is not None and stop_predicate(gview):
            stopped_early = True
            break

    # -- run end ----------------------------------------------------------
    end_time = now if stopped_early else until
    integrate_to(end_time)
    for i in range(n_rates):
        rate_results[i].integral = rate_integrals[i]
        if not math.isfinite(rate_integrals[i]):
            violate(
                "non-finite-reward",
                rate_rewards[i].name,
                None,
                f"accumulated integral is {rate_integrals[i]!r}",
            )
    if probe_pos < n_probes and not stopped_early:
        while probe_pos < n_probes:
            pt, pi = probe_list[probe_pos]
            rate_results[pi].instants.append((pt, rate_values[pi]))
            probe_pos += 1
    duration = max(end_time - warmup, 0.0)
    for res in results.values():
        res.duration = duration
    for i, r in enumerate(rate_rewards):
        if r.window is not None:
            lo = rate_lo[i]
            b = end_time if end_time < rate_hi[i] else rate_hi[i]
            rate_results[i].duration = b - lo if b > lo else 0.0
    for r in impulse_rewards:
        if r.window is not None:
            w0, w1 = r.window
            lo = warmup if warmup > w0 else w0
            hi = until if until < w1 else w1
            b = end_time if end_time < hi else hi
            results[r.name].duration = b - lo if b > lo else 0.0
    for tr in binary_traces:
        tr.finish(end_time)

    report.n_events = n_events
    report.final_time = end_time
    if report.violations:
        if sim.strict:
            raise SanitizerError(
                f"sanitizer found {len(report.violations)} declaration "
                f"violation(s) in model {model.name!r}:\n" + report.format(),
                report=report,
            )
        warnings.warn(
            "sanitizer violations detected (strict=False, continuing):\n"
            + report.format(),
            RuntimeWarning,
            stacklevel=3,
        )

    sim.last_loop = "sanitize"
    sim.last_kernel_effects = 0
    sim.last_case_kernels = 0
    sim.last_python_effects = n_events
    sim.last_reward_kernels = []
    sim.last_python_refresh_rewards = sorted(r.name for r in rate_rewards)

    return RunResult(
        final_time=end_time,
        duration=duration,
        n_events=n_events,
        rewards=results,
        traces=trace_map,
        stopped_early=stopped_early,
        sanitizer_report=report,
        _final_values=list(values),
        _paths=model.paths,
    )


# ----------------------------------------------------------------------
# static lint
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LintFinding:
    """One static-analysis finding.

    ``severity`` is ``"error"`` (the model contradicts its declarations
    or cannot execute) or ``"warning"`` (suspicious structure: dead
    places, unreachable activities, instant-chain cycle candidates).
    """

    code: str
    severity: str
    subject: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"[{self.severity}] {self.code}: {self.subject}: {self.message}"


@dataclass
class LintReport:
    """Outcome of :func:`lint_model`."""

    model: str
    findings: list[LintFinding] = field(default_factory=list)
    coverage: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the lint pass produced no findings at all."""
        return not self.findings

    def format(self) -> str:
        """Multi-line human-readable summary."""
        cov = self.coverage
        head = (
            f"lint: model {self.model!r} — {cov.get('n_places', 0)} places, "
            f"{cov.get('n_activities', 0)} activities "
            f"({cov.get('declared_reads', 0)} declared reads, "
            f"{cov.get('declared_effects', 0)} declared effects); "
            f"{len(self.findings)} finding(s)"
        )
        lines = [head]
        for f in self.findings:
            lines.append(f"  - {f}")
        return "\n".join(lines)


def _as_flat(model) -> FlatModel:
    if isinstance(model, FlatModel):
        return model
    if isinstance(model, (SAN, Node)):
        return flatten(model)
    inner = getattr(model, "model", None)
    if isinstance(inner, FlatModel):
        return inner
    raise SimulationError(
        f"lint_model expects a SAN, composition node, FlatModel, or an "
        f"object exposing .model; got {type(model).__name__}"
    )


def _dist_param_nans(dist: Distribution) -> list[str]:
    """Names of numeric distribution parameters that are NaN."""
    params: dict[str, object] = {}
    for klass in type(dist).__mro__:
        for s in getattr(klass, "__slots__", ()):
            try:
                params[s] = getattr(dist, s)
            except AttributeError:
                pass
    params.update(getattr(dist, "__dict__", {}))
    bad = []
    for name, val in params.items():
        if isinstance(val, float) and math.isnan(val):
            bad.append(name.lstrip("_"))
    return sorted(bad)


def _check_distribution(
    dist: Distribution, subject: str, findings: list[LintFinding]
) -> None:
    """Parameter NaN guard plus behavioral sampling sanity."""
    bad = _dist_param_nans(dist)
    if bad:
        findings.append(
            LintFinding(
                "nan-distribution-param",
                "error",
                subject,
                f"distribution parameter(s) {bad} are NaN",
            )
        )
        return
    probe = np.random.default_rng(20080604)
    try:
        draws = [float(dist.sample(probe)) for _ in range(3)]
    except Exception as exc:
        findings.append(
            LintFinding(
                "bad-distribution-params",
                "error",
                subject,
                f"sampling raised {type(exc).__name__}: {exc}",
            )
        )
        return
    for d in draws:
        if not (math.isfinite(d) and d >= 0.0):
            findings.append(
                LintFinding(
                    "bad-distribution-params",
                    "error",
                    subject,
                    f"sampling produced invalid delay {d!r}",
                )
            )
            return


def lint_model(model) -> LintReport:
    """Statically lint a model's declarations and structure.

    Accepts a bare :class:`~repro.core.san.SAN`, a composition
    :class:`~repro.core.composition.Node`, a flattened
    :class:`~repro.core.composition.FlatModel`, or any facade exposing a
    ``model`` attribute holding one (``ClusterModel``,
    ``StorageModel``).  Runs no simulation: predicates, distribution
    callables and case probabilities are evaluated once on the initial
    marking under read tracking, everything else is structural analysis.
    Paper-workload models ship lint-clean; the CI ``sanitize`` job keeps
    them that way.
    """
    flat = _as_flat(model)
    findings: list[LintFinding] = []
    acts = flat.activities
    n_places = flat.n_places
    vector = flat.new_marking()

    declared_reads = 0
    declared_effects = 0
    # Over-approximations used by reachability checks: for each activity,
    # the slots it may read (declared set, else its whole visible index)
    # and the slots it may write (declared ops, else its whole index).
    read_over: list[set[int]] = []
    write_over: list[set[int]] = []
    init_enabled: list[bool] = []

    for act in acts:
        aid = act.ident
        d = act.definition
        index = act.index

        # -- declared-name resolution ---------------------------------
        reads_resolved = True
        if d.reads is not None:
            declared_reads += 1
            for pname in d.reads:
                if pname not in index:
                    reads_resolved = False
                    findings.append(
                        LintFinding(
                            "unresolved-read",
                            "error",
                            act.path,
                            f"declared read {pname!r} is not a place of "
                            "its SAN",
                        )
                    )
        writes_all_declared = bool(d.output_gates) or bool(d.cases)
        w_over: set[int] = set()
        for og in d.output_gates:
            if og.writes is None:
                writes_all_declared = False
                w_over.update(index.values())
            else:
                for pname, _kind, _amount in og.writes:
                    slot = index.get(pname)
                    if slot is None:
                        findings.append(
                            LintFinding(
                                "unresolved-write",
                                "error",
                                act.path,
                                f"declared write {pname!r} is not a place "
                                "of its SAN",
                            )
                        )
                    else:
                        w_over.add(slot)
            if og.when is not None and og.when[0] not in index:
                findings.append(
                    LintFinding(
                        "unresolved-guard",
                        "error",
                        act.path,
                        f"write guard place {og.when[0]!r} is not a place "
                        "of its SAN",
                    )
                )
        for case in d.cases:
            if case.writes is None:
                writes_all_declared = False
                w_over.update(index.values())
            else:
                for pname, _kind, _amount in case.writes:
                    slot = index.get(pname)
                    if slot is None:
                        findings.append(
                            LintFinding(
                                "unresolved-write",
                                "error",
                                act.path,
                                f"declared case write {pname!r} is not a "
                                "place of its SAN",
                            )
                        )
                    else:
                        w_over.add(slot)
        if any(g.function is not _noop for g in d.input_gates):
            writes_all_declared = False
            w_over.update(index.values())
        if writes_all_declared and (d.output_gates or d.cases):
            declared_effects += 1
        write_over.append(w_over)

        # -- predicate on the initial marking -------------------------
        view = LocalView(vector, index, None)
        vector.tracking = True
        vector.reads.clear()
        en = False
        try:
            en = bool(ActDefPred(d)(view))
        except Exception as exc:
            findings.append(
                LintFinding(
                    "bad-predicate",
                    "error",
                    act.path,
                    f"enabling predicate raised {type(exc).__name__} on "
                    f"the initial marking: {exc}",
                )
            )
        finally:
            vector.tracking = False
        init_enabled.append(en)
        initial_reads = set(vector.reads)
        if d.reads is not None and reads_resolved:
            dslots = {index[p] for p in d.reads}
            extra = initial_reads - dslots
            if extra:
                names = sorted(flat.canonical[s] for s in extra)
                findings.append(
                    LintFinding(
                        "undeclared-read",
                        "error",
                        act.path,
                        f"enabling predicate reads undeclared places "
                        f"{names} on the initial marking",
                    )
                )
            read_over.append(dslots)
        elif d.reads is not None:
            read_over.append(set(index.values()))
        else:
            read_over.append(set(index.values()))

        # -- distribution checks --------------------------------------
        dist = d.distribution
        if isinstance(dist, Distribution):
            _check_distribution(dist, act.path, findings)
        elif callable(dist):
            vector.tracking = True
            vector.reads.clear()
            try:
                returned = dist(view)
            except Exception as exc:
                returned = None
                findings.append(
                    LintFinding(
                        "bad-distribution",
                        "error",
                        act.path,
                        f"distribution callable raised "
                        f"{type(exc).__name__} on the initial marking: "
                        f"{exc}",
                    )
                )
            finally:
                vector.tracking = False
            if d.reads is not None and reads_resolved:
                dslots = {index[p] for p in d.reads}
                extra = set(vector.reads) - dslots
                if extra:
                    names = sorted(flat.canonical[s] for s in extra)
                    findings.append(
                        LintFinding(
                            "undeclared-read",
                            "error",
                            act.path,
                            f"distribution callable reads undeclared "
                            f"places {names} on the initial marking",
                        )
                    )
            if returned is not None:
                if not isinstance(returned, Distribution):
                    findings.append(
                        LintFinding(
                            "bad-distribution",
                            "error",
                            act.path,
                            "distribution callable did not return a "
                            f"Distribution (got "
                            f"{type(returned).__name__})",
                        )
                    )
                else:
                    _check_distribution(returned, act.path, findings)

        # -- case probability sums ------------------------------------
        if d.cases and any(callable(c.probability) for c in d.cases):
            try:
                total = sum(c.probability_in(view) for c in d.cases)
            except Exception as exc:
                findings.append(
                    LintFinding(
                        "bad-case-probability",
                        "error",
                        act.path,
                        f"case probability raised {type(exc).__name__} on "
                        f"the initial marking: {exc}",
                    )
                )
            else:
                if not (abs(total - 1.0) <= 1e-9):
                    findings.append(
                        LintFinding(
                            "case-sum",
                            "error",
                            act.path,
                            f"case probabilities sum to {total} on the "
                            "initial marking",
                        )
                    )

    # -- instant-chain cycle candidates --------------------------------
    # Conservative static check over *declared* dependencies only: an
    # edge A -> B when instant A's declared writes intersect instant B's
    # declared reads.  A strongly connected component of two or more
    # instants can re-enable each other forever (the vanishing-loop
    # shape InstantaneousLoopError catches at runtime).
    inst_ids = [a.ident for a in acts if a.definition.kind != TIMED]
    edges: dict[int, list[int]] = {aid: [] for aid in inst_ids}
    for a in inst_ids:
        wa = write_over[a] if acts[a].definition.reads is None else write_over[a]
        # only declared-write instants give precise edges
        da = acts[a].definition
        if any(og.writes is None for og in da.output_gates) or any(
            c.writes is None for c in da.cases
        ) or any(g.function is not _noop for g in da.input_gates):
            continue
        for b in inst_ids:
            if b == a:
                continue
            db = acts[b].definition
            if db.reads is None:
                continue
            rb = {
                acts[b].index[p] for p in db.reads if p in acts[b].index
            }
            if wa & rb:
                edges[a].append(b)
    for comp in _sccs(edges):
        if len(comp) >= 2:
            paths = sorted(acts[a].path for a in comp)
            findings.append(
                LintFinding(
                    "instant-cycle",
                    "warning",
                    paths[0],
                    "instantaneous activities may re-enable each other "
                    f"in a cycle: {paths}",
                )
            )

    # -- unreachable activities / dead places --------------------------
    writable: set[int] = set()
    for w in write_over:
        writable |= w
    for act in acts:
        aid = act.ident
        if init_enabled[aid]:
            continue
        if not (read_over[aid] & writable):
            findings.append(
                LintFinding(
                    "unreachable-activity",
                    "warning",
                    act.path,
                    "disabled on the initial marking and no activity can "
                    "ever write a place its enabling may read",
                )
            )
    touched: set[int] = set(writable)
    for r in read_over:
        touched |= r
    for slot in range(n_places):
        if slot not in touched:
            findings.append(
                LintFinding(
                    "dead-place",
                    "warning",
                    flat.canonical[slot],
                    "no activity ever reads or writes this place",
                )
            )

    coverage = {
        "n_places": n_places,
        "n_activities": len(acts),
        "declared_reads": declared_reads,
        "declared_effects": declared_effects,
        "undeclared_reads": len(acts) - declared_reads,
    }
    return LintReport(model=flat.name, findings=findings, coverage=coverage)


class ActDefPred:
    """Conjunction of an activity definition's input-gate predicates."""

    __slots__ = ("_preds",)

    def __init__(self, definition) -> None:
        self._preds = tuple(g.predicate for g in definition.input_gates)

    def __call__(self, m) -> bool:
        for p in self._preds:
            if not p(m):
                return False
        return True


def _sccs(edges: dict[int, list[int]]) -> list[list[int]]:
    """Tarjan strongly connected components (iterative)."""
    index_of: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    out: list[list[int]] = []
    counter = [0]

    for root in edges:
        if root in index_of:
            continue
        work = [(root, 0)]
        while work:
            node, ei = work[-1]
            if ei == 0:
                index_of[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            succs = edges[node]
            while ei < len(succs):
                succ = succs[ei]
                ei += 1
                if succ not in index_of:
                    work[-1] = (node, ei)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if low[node] == index_of[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                out.append(comp)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return out
