"""Fault-tolerant execution: retries, timeouts, chaos injection, supervision.

The execution stack (replication pools in :mod:`repro.core.parallel`,
sweep grids in :mod:`repro.experiments.sweep`) is built on process pools,
and process pools fail in ways a long grid run must survive: a worker
segfaults or is OOM-killed (``BrokenProcessPool`` poisons every in-flight
future), a worker hangs forever, a single cell raises while 59 others are
healthy.  This module supplies the supervision layer those callers wrap
around every pool submission:

* :class:`RetryPolicy` — bounded retries with exponential backoff,
  **deterministic** jitter (a pure function of the task key and attempt
  number, so reruns schedule identically) and an exception allowlist, plus
  an optional per-attempt wall-clock timeout.
* :class:`ChaosPolicy` — deterministic fault injection (kill the worker
  process, raise inside the task, delay the task), injectable per call or
  process-wide through the ``REPRO_CHAOS`` environment variable.  The
  fault-injection suites use it to *prove* that recovery reproduces the
  undisturbed results bit-for-bit.
* :func:`run_tasks_supervised` — the supervised executor: submits keyed
  tasks to a process pool, applies the retry policy per task, rebuilds a
  broken pool and resubmits **only** the incomplete tasks, kills and
  rebuilds the pool when a task exceeds its timeout, and degrades to
  in-process serial execution (with a structured warning) when a pool
  cannot be created at all.

Recovery is bit-identical by construction, not best effort: every task in
this codebase is a pure function of its payload (replication ``k`` draws
from seed-tree stream ``k``; a sweep cell seeds itself from its
arguments), so re-executing an interrupted task — in a rebuilt pool, a
different worker, or serially in the parent — yields exactly the result
the uninterrupted run would have produced.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from .errors import ChaosError, SimulationError, TaskTimeoutError

__all__ = [
    "CHAOS_ENV",
    "CellFailure",
    "ChaosPolicy",
    "RetryPolicy",
    "TaskFailure",
    "run_tasks_supervised",
]

CHAOS_ENV = "REPRO_CHAOS"

#: Exceptions the default policy treats as transient.  Model bugs
#: (``SimulationError`` and friends) are deliberately absent: retrying a
#: deterministic failure re-raises the identical error, so they fail fast.
DEFAULT_RETRY_ON: tuple[type[BaseException], ...] = (
    BrokenProcessPool,
    ChaosError,
    TaskTimeoutError,
    OSError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    Attributes
    ----------
    max_attempts:
        Total attempts per task (1 = no retry).
    base_delay_s / backoff / max_delay_s:
        Attempt ``n`` (n >= 2) waits ``base_delay_s * backoff**(n - 2)``
        seconds, capped at ``max_delay_s``, before resubmission.
    jitter:
        Fractional jitter applied to each delay.  The jitter is a pure
        function of ``(task key, attempt)`` — no global RNG — so a rerun
        of the same grid backs off on an identical schedule.
    timeout_s:
        Per-attempt wall-clock timeout measured from the moment a worker
        starts the task (queue time excluded).  A task that overruns is
        failed with :class:`~repro.core.errors.TaskTimeoutError` and its
        pool is killed and rebuilt (a hung worker cannot be cancelled any
        other way).  ``None`` disables the watchdog.
    retry_on:
        Exception allowlist; anything else fails the task on first raise.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    backoff: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.1
    timeout_s: float | None = None
    retry_on: tuple[type[BaseException], ...] = DEFAULT_RETRY_ON

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SimulationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise SimulationError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Whether a task that just failed its ``attempt``-th try reruns."""
        return attempt < self.max_attempts and isinstance(exc, self.retry_on)

    def delay_s(self, key: object, attempt: int) -> float:
        """Backoff before attempt ``attempt`` (2-based), jitter included.

        Deterministic: equal ``(key, attempt)`` pairs always produce the
        same delay, so recovery schedules are reproducible.
        """
        if attempt <= 1 or self.base_delay_s <= 0.0:
            return 0.0
        raw = min(
            self.base_delay_s * self.backoff ** (attempt - 2),
            self.max_delay_s,
        )
        if self.jitter:
            digest = hashlib.sha256(f"{key!r}#{attempt}".encode()).digest()
            unit = int.from_bytes(digest[:8], "big") / 2.0**64  # [0, 1)
            raw *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return raw


def _task_label(key: object) -> str:
    return key if isinstance(key, str) else str(key)


@dataclass(frozen=True)
class ChaosPolicy:
    """Deterministic fault injection for the supervised executor.

    Faults are keyed by ``str(task key)`` (the literal ``"*"`` matches
    every task).  Kill and delay faults fire only on a task's **first**
    attempt, so a policy under the default retry settings always proves
    recovery: attempt 2 of the same task runs clean and must reproduce
    the undisturbed result exactly.  ``fail`` faults raise
    :class:`~repro.core.errors.ChaosError` on the first ``n`` attempts
    (``-1`` = every attempt, for permanently poisoned tasks).

    Attributes
    ----------
    kill_tasks:
        Task labels whose first attempt hard-kills its worker process
        (``os._exit``, no cleanup — indistinguishable from a segfault or
        OOM kill, and it poisons the whole pool).  Applied serially (no
        worker process to kill), the fault raises ``ChaosError`` instead.
    fail_tasks:
        ``label -> n``: raise ``ChaosError`` on attempts ``1..n``.
    delay_tasks:
        ``label -> seconds``: sleep before the first attempt executes
        (drives the timeout watchdog in tests).
    """

    kill_tasks: frozenset = frozenset()
    fail_tasks: Mapping[str, int] = field(default_factory=dict)
    delay_tasks: Mapping[str, float] = field(default_factory=dict)

    @classmethod
    def from_env(cls, env: str = CHAOS_ENV) -> "ChaosPolicy | None":
        """Build the process-wide policy from a JSON environment variable.

        ``REPRO_CHAOS='{"kill": ["('reps', 0, 1)"], "fail": {"*": 1},
        "delay": {"cell-3": 0.2}}'`` — absent/empty means no chaos.
        """
        raw = os.environ.get(env)
        if not raw:
            return None
        try:
            spec = json.loads(raw)
        except ValueError as exc:
            raise SimulationError(f"{env} is not valid JSON: {exc}") from exc
        if not isinstance(spec, dict):
            raise SimulationError(f"{env} must be a JSON object, got {spec!r}")
        return cls(
            kill_tasks=frozenset(spec.get("kill", ())),
            fail_tasks={str(k): int(v) for k, v in spec.get("fail", {}).items()},
            delay_tasks={str(k): float(v) for k, v in spec.get("delay", {}).items()},
        )

    def _lookup(self, table: Mapping, key: object):
        label = _task_label(key)
        if label in table:
            return table[label]
        return table.get("*")

    def apply(self, key: object, attempt: int, *, in_worker: bool) -> None:
        """Inject this policy's faults for one task attempt.

        Called by the supervised executor at the start of every attempt —
        inside the worker process when pooled (``in_worker=True``), in the
        parent when executing serially.
        """
        if attempt == 1:
            delay = self._lookup(self.delay_tasks, key)
            if delay:
                time.sleep(delay)
        fail_n = self._lookup(self.fail_tasks, key)
        if fail_n is not None and (fail_n < 0 or attempt <= fail_n):
            raise ChaosError(
                f"injected failure for task {_task_label(key)!r} "
                f"(attempt {attempt})"
            )
        label = _task_label(key)
        if attempt == 1 and (label in self.kill_tasks or "*" in self.kill_tasks):
            if in_worker:
                os._exit(87)  # hard kill: no unwinding, pool breaks
            raise ChaosError(
                f"injected kill for task {label!r} (serial execution: "
                "raised instead of killing the parent process)"
            )


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of a task that exhausted its retry budget.

    Attributes
    ----------
    key:
        The task's key in its grid.
    attempts:
        Attempts consumed (a pool crash charges one attempt to every
        in-flight task — the parent cannot attribute the crash).
    error_type / message:
        Class name and text of the final causal exception.
    cause:
        The final exception object itself (kept in the parent; may be
        ``None`` after a journal round-trip).
    """

    key: object
    attempts: int
    error_type: str
    message: str
    cause: BaseException | None = None


class CellFailure(TaskFailure):
    """A failed sweep cell inside a partial :class:`SweepResult`."""


def _supervised_task(item: tuple) -> tuple:
    """Worker-side wrapper: apply chaos, then run the real task."""
    key, payload, attempt, chaos, fn = item
    if chaos is not None:
        chaos.apply(key, attempt, in_worker=True)
    return key, fn(payload)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard: hung workers never drain a graceful shutdown."""
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        try:
            proc.terminate()
        except (OSError, ValueError):  # pragma: no cover - already dead
            pass


_SERIAL_FALLBACK_WARNED = False


def _warn_serial_fallback(label: str, cause: BaseException) -> None:
    global _SERIAL_FALLBACK_WARNED
    if _SERIAL_FALLBACK_WARNED:
        return
    _SERIAL_FALLBACK_WARNED = True
    warnings.warn(
        f"worker pool unavailable ({type(cause).__name__}: {cause}); "
        f"executing remaining {label}s serially in-process.  Results are "
        "bit-identical to pooled execution — only wall-clock changes.",
        RuntimeWarning,
        stacklevel=3,
    )


def _raise_exhausted(label: str, key: object, attempts: int, exc: BaseException):
    raise SimulationError(
        f"{label} {key!r} failed after {attempts} attempt(s): "
        f"{type(exc).__name__}: {exc}"
    ) from exc


def run_tasks_supervised(
    tasks: Sequence[tuple[object, object]],
    worker_fn: Callable[[object], object],
    *,
    n_jobs: int,
    mp_context=None,
    initializer: Callable | None = None,
    initargs: tuple = (),
    retry: RetryPolicy | None = None,
    chaos: ChaosPolicy | None = None,
    on_error: str = "raise",
    on_complete: Callable[[object, object], None] | None = None,
    failure_cls: type[TaskFailure] = TaskFailure,
    label: str = "task",
) -> dict[object, object]:
    """Execute keyed tasks under retry/timeout/crash supervision.

    Parameters
    ----------
    tasks:
        ``(key, payload)`` pairs; keys must be unique.  Each task must be
        a pure function of its payload (the bit-identical-recovery
        contract: a retried or resubmitted task reproduces exactly the
        result of an undisturbed execution).
    worker_fn:
        Module-level callable ``payload -> result`` (workers unpickle it
        by name; serial execution calls it directly, unpickled).
    n_jobs:
        Worker processes; ``<= 1`` executes serially in-process (no
        pickling requirements, chaos/retry still applied).
    mp_context / initializer / initargs:
        Pool configuration, as for :class:`ProcessPoolExecutor`.
    retry:
        Policy applied per task; default :class:`RetryPolicy`.
    chaos:
        Fault injection; ``None`` falls back to the process-wide
        ``REPRO_CHAOS`` environment policy (pass an empty
        ``ChaosPolicy()`` to explicitly disable both).
    on_error:
        ``"raise"`` — first exhausted task aborts the run (pool killed,
        exception chained).  ``"collect"`` — exhausted tasks become
        ``failure_cls`` records in the result mapping and every healthy
        task still completes.
    on_complete:
        Parent-side callback ``(key, result)`` fired as each task
        completes (checkpoint journaling hook); completion order is
        scheduling-dependent even though results are not.
    failure_cls:
        Record type for collected failures (e.g. :class:`CellFailure`).
    label:
        Human noun for messages ("sweep cell", "replication chunk").

    Returns
    -------
    dict
        ``key -> result`` (or ``key -> failure_cls`` under
        ``"collect"``), one entry per task, in task order.

    Supervision semantics: a ``BrokenProcessPool`` rebuilds the pool and
    resubmits only tasks without a recorded result; a timeout kills the
    pool, charges the overdue task, and requeues in-flight innocents
    without charging them; pool creation failure degrades to serial
    execution with a one-time :class:`RuntimeWarning`.
    """
    if on_error not in ("raise", "collect"):
        raise SimulationError(
            f"on_error must be 'raise' or 'collect', got {on_error!r}"
        )
    retry = retry if retry is not None else RetryPolicy()
    if chaos is None:
        chaos = ChaosPolicy.from_env()

    tasks = list(tasks)
    keys = [key for key, _payload in tasks]
    if len(set(keys)) != len(keys):
        raise SimulationError(f"duplicate {label} keys in supervised run")
    payloads = dict(tasks)
    attempts: dict[object, int] = {key: 0 for key in keys}
    outcomes: dict[object, object] = {}

    def record_failure(key: object, exc: BaseException) -> None:
        failure = failure_cls(
            key=key,
            attempts=attempts[key],
            error_type=type(exc).__name__,
            message=str(exc),
            cause=exc,
        )
        outcomes[key] = failure

    def run_serial(serial_keys: Sequence[object]) -> None:
        if initializer is not None:
            initializer(*initargs)
        for key in serial_keys:
            while True:
                attempts[key] += 1
                try:
                    if chaos is not None:
                        chaos.apply(key, attempts[key], in_worker=False)
                    _k, result = _supervised_task(
                        (key, payloads[key], attempts[key], None, worker_fn)
                    )
                except KeyboardInterrupt:
                    raise
                except BaseException as exc:
                    if retry.should_retry(exc, attempts[key]):
                        time.sleep(retry.delay_s(key, attempts[key] + 1))
                        continue
                    if on_error == "raise":
                        _raise_exhausted(label, key, attempts[key], exc)
                    record_failure(key, exc)
                    break
                outcomes[key] = result
                if on_complete is not None:
                    on_complete(key, result)
                break

    if n_jobs <= 1 or len(tasks) <= 1:
        run_serial(keys)
        return {key: outcomes[key] for key in keys}

    timeout_s = retry.timeout_s
    monotonic = time.monotonic
    pending: deque = deque(keys)
    ready_at: dict[object, float] = {}
    inflight: dict[object, list] = {}  # future -> [key, deadline | None]
    pool: ProcessPoolExecutor | None = None

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=min(n_jobs, len(tasks)),
            mp_context=mp_context,
            initializer=initializer,
            initargs=initargs,
        )

    def drain_to_serial(cause: BaseException) -> None:
        """Pool machinery is unusable: finish everything in-process."""
        nonlocal pool
        if pool is not None:
            _terminate_pool(pool)
            pool = None
        for entry in inflight.values():
            pending.append(entry[0])
            attempts[entry[0]] -= 1  # the attempt never ran
        inflight.clear()
        _warn_serial_fallback(label, cause)
        run_serial([key for key in pending if key not in outcomes])
        pending.clear()

    def handle_exception(key: object, exc: BaseException) -> None:
        """Retry bookkeeping for one failed pooled attempt."""
        if retry.should_retry(exc, attempts[key]):
            ready_at[key] = monotonic() + retry.delay_s(key, attempts[key] + 1)
            pending.append(key)
        elif on_error == "raise":
            if pool is not None:
                _terminate_pool(pool)
            _raise_exhausted(label, key, attempts[key], exc)
        else:
            record_failure(key, exc)

    try:
        while pending or inflight:
            now = monotonic()
            # (Re)build the pool, degrading to serial when impossible.
            if pool is None and pending:
                try:
                    pool = make_pool()
                except (OSError, ValueError, ImportError) as exc:
                    drain_to_serial(exc)
                    continue
            # Submit every task whose backoff has elapsed.
            requeue = []
            while pending:
                key = pending.popleft()
                if ready_at.get(key, 0.0) > now:
                    requeue.append(key)
                    continue
                attempts[key] += 1
                item = (key, payloads[key], attempts[key], chaos, worker_fn)
                try:
                    fut = pool.submit(_supervised_task, item)
                except BaseException as exc:  # broken/unusable pool
                    attempts[key] -= 1
                    pending.appendleft(key)
                    pending.extend(requeue)
                    if isinstance(exc, BrokenProcessPool):
                        _terminate_pool(pool)
                        pool = None
                        break
                    drain_to_serial(exc)
                    break
                inflight[fut] = [key, None]
            else:
                pending.extend(requeue)
            if not inflight:
                if pending:
                    soonest = min(ready_at.get(k, 0.0) for k in pending)
                    time.sleep(max(0.0, min(soonest - monotonic(), 0.05)))
                continue

            # Wait for a completion; wake early to arm/poll deadlines or
            # to resubmit a backed-off task.
            wait_for = None
            candidates = []
            if timeout_s is not None:
                armed = [e[1] for e in inflight.values() if e[1] is not None]
                candidates.append(
                    min(armed) - now if armed else min(0.05, timeout_s / 4.0)
                )
                candidates.append(min(0.05, timeout_s / 4.0))
            if pending:
                soonest = min(ready_at.get(k, 0.0) for k in pending)
                candidates.append(soonest - now)
            if candidates:
                wait_for = max(0.0, min(candidates))
            done, _not_done = wait(
                inflight, timeout=wait_for, return_when=FIRST_COMPLETED
            )

            broken = False
            for fut in done:
                key, _deadline = inflight.pop(fut)
                try:
                    _k, result = fut.result()
                except BaseException as exc:
                    if isinstance(exc, BrokenProcessPool):
                        broken = True
                    handle_exception(key, exc)
                else:
                    outcomes[key] = result
                    if on_complete is not None:
                        on_complete(key, result)

            if broken:
                # Every surviving in-flight future is poisoned too; the
                # executor has already failed them all.  Charge each its
                # attempt, run retry bookkeeping, rebuild on next loop.
                for fut, (key, _deadline) in list(inflight.items()):
                    try:
                        _k, result = fut.result(timeout=0)
                    except BaseException as exc:
                        handle_exception(key, exc)
                    else:  # pragma: no cover - completed before the break
                        outcomes[key] = result
                        if on_complete is not None:
                            on_complete(key, result)
                inflight.clear()
                if pool is not None:
                    _terminate_pool(pool)
                    pool = None
                continue

            if timeout_s is not None and inflight:
                now = monotonic()
                overdue = []
                for fut, entry in inflight.items():
                    if entry[1] is None:
                        if fut.running():
                            entry[1] = now + timeout_s
                    elif now >= entry[1]:
                        overdue.append(fut)
                if overdue:
                    # A hung worker cannot be cancelled: kill the pool,
                    # charge the overdue tasks, requeue the innocents
                    # without charging them.
                    _terminate_pool(pool)
                    pool = None
                    overdue_set = set(overdue)
                    for fut, (key, _deadline) in list(inflight.items()):
                        if fut in overdue_set:
                            handle_exception(
                                key,
                                TaskTimeoutError(
                                    f"{label} {key!r} exceeded "
                                    f"timeout_s={timeout_s} "
                                    f"(attempt {attempts[key]})"
                                ),
                            )
                        else:
                            attempts[key] -= 1
                            pending.append(key)
                    inflight.clear()
    except KeyboardInterrupt:
        if pool is not None:
            _terminate_pool(pool)
        raise
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    return {key: outcomes[key] for key in keys}
