"""Probability distributions used by activity timing and failure models.

All distributions measure time in **hours**, the unit used throughout the
paper ("Average time to replace disks 1-12 hours", MTBF 100000-3000000 hours,
rates per 720 hours, ...).

Two constructors mirror how the paper parameterizes disk reliability:

* :meth:`Weibull.from_mtbf` — shape plus mean time between failures, e.g.
  ``Weibull.from_mtbf(shape=0.7, mtbf_hours=300_000)`` is the fitted ABE
  disk model of Section 5.1.
* :meth:`Weibull.from_afr` — shape plus annualized failure rate, using the
  paper's annualization ``AFR = 8760 / MTBF`` (so AFR 2.92 % ⇔ MTBF
  300000 h, exactly the pairing quoted in the paper).

:class:`EquilibriumResidual` provides the stationary residual-life
distribution of a renewal process, used to initialize an in-service disk
fleet: ABE's 480 disks were not factory-fresh when the observation window
opened, so their time-to-next-failure follows the renewal equilibrium
distribution rather than the bare lifetime law.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from bisect import bisect_right
from typing import Sequence

import numpy as np
from scipy import optimize, special

from .errors import ModelError

__all__ = [
    "HOURS_PER_YEAR",
    "BatchedSampler",
    "Distribution",
    "Exponential",
    "Deterministic",
    "Uniform",
    "Weibull",
    "LogNormal",
    "Gamma",
    "Erlang",
    "Empirical",
    "Shifted",
    "EquilibriumResidual",
    "afr_to_mtbf",
    "mtbf_to_afr",
]

HOURS_PER_YEAR = 8760.0


def afr_to_mtbf(afr: float) -> float:
    """Convert an annualized failure rate (fraction, e.g. 0.0292) to MTBF hours.

    Uses the simple annualization the paper uses: ``MTBF = 8760 / AFR``
    (AFR 2.92 % ⇔ MTBF 300000 h).
    """
    if not 0.0 < afr:
        raise ModelError(f"AFR must be positive, got {afr}")
    return HOURS_PER_YEAR / afr


def mtbf_to_afr(mtbf_hours: float) -> float:
    """Convert MTBF in hours to an annualized failure rate fraction."""
    if not mtbf_hours > 0.0:
        raise ModelError(f"MTBF must be positive, got {mtbf_hours}")
    return HOURS_PER_YEAR / mtbf_hours


class Distribution(ABC):
    """A positive continuous distribution for activity firing delays."""

    #: True when :meth:`sample_many` fills its whole output with a single
    #: vectorized numpy call **and** consumes the RNG stream exactly like
    #: ``size`` successive :meth:`sample` calls (stream equivalence,
    #: asserted by ``tests/test_batched_sampling.py``).  The simulator
    #: only serves a law from :class:`BatchedSampler` blocks when this is
    #: set.  The flag never survives an override silently: a subclass
    #: that redefines ``sample`` or ``sample_many`` without declaring
    #: ``batchable`` in its own body is reset to ``False`` (see
    #: ``__init_subclass__``), so only classes that explicitly vouch for
    #: their own stream equivalence are block-served.
    batchable: bool = False

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        overrides_sampling = (
            "sample" in cls.__dict__ or "sample_many" in cls.__dict__
        )
        if overrides_sampling and "batchable" not in cls.__dict__:
            cls.batchable = False

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one variate."""

    @abstractmethod
    def mean(self) -> float:
        """Expected value, in hours."""

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` i.i.d. variates (vectorized where possible)."""
        return np.array([self.sample(rng) for _ in range(size)])

    def survival(self, t: float) -> float:
        """``P(X > t)``.  Subclasses with closed forms override this."""
        raise NotImplementedError(
            f"{type(self).__name__} does not provide a survival function"
        )

    # Exponential-ness is what the state-space generator needs to know.
    @property
    def is_exponential(self) -> bool:
        """True only for the memoryless exponential distribution."""
        return False


class BatchedSampler:
    """Serves single variates from vectorized blocks of a distribution.

    One ``rng.<law>(size=n)`` call replaces ``n`` scalar draws, amortizing
    the per-call overhead of :class:`numpy.random.Generator` across a
    block.  Any law whose :meth:`Distribution.sample_many` is a single
    vectorized call (``Distribution.batchable``) can be served this way —
    including :class:`EquilibriumResidual`, whose batch is one
    ``np.interp`` over its cached quantile grid.  Because a whole block
    is consumed from the stream at refill time, trajectories differ from
    per-draw sampling (both are fully deterministic for a fixed seed);
    the simulator therefore only uses batched sampling when explicitly
    enabled.

    The buffer must be :meth:`reset` at the start of every run so that a
    run's draws come exclusively from that run's generator (this is what
    keeps replications independent and serial/parallel execution
    identical).
    """

    __slots__ = ("distribution", "batch_size", "_buffer", "_pos")

    def __init__(self, distribution: "Distribution", batch_size: int = 256) -> None:
        if batch_size < 1:
            raise ModelError(f"batch_size must be >= 1, got {batch_size}")
        self.distribution = distribution
        self.batch_size = int(batch_size)
        self._buffer: list[float] | None = None
        self._pos = 0

    def reset(self) -> None:
        """Discard buffered draws (call at the start of each run)."""
        self._buffer = None
        self._pos = 0

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one variate, refilling the block buffer as needed."""
        buf = self._buffer
        pos = self._pos
        if buf is None or pos >= self.batch_size:
            # tolist() converts to Python floats in one C pass, so the
            # per-draw path below never touches numpy scalars.
            buf = self.distribution.sample_many(rng, self.batch_size).tolist()
            self._buffer = buf
            pos = 0
        self._pos = pos + 1
        return buf[pos]


class Exponential(Distribution):
    """Exponential distribution with rate ``rate`` (events per hour)."""

    __slots__ = ("rate",)
    batchable = True

    def __init__(self, rate: float) -> None:
        if not rate > 0.0:
            raise ModelError(f"Exponential rate must be positive, got {rate}")
        self.rate = float(rate)

    @classmethod
    def from_mean(cls, mean_hours: float) -> "Exponential":
        """Construct from the mean delay in hours."""
        if not mean_hours > 0.0:
            raise ModelError(f"mean must be positive, got {mean_hours}")
        return cls(1.0 / mean_hours)

    @classmethod
    def per_period(cls, events: float, period_hours: float) -> "Exponential":
        """Construct from "N events per period", e.g. ``per_period(1.5, 720)``
        for the paper's "1-2 per 720 hours" hardware error rate."""
        if not (events > 0.0 and period_hours > 0.0):
            raise ModelError("events and period must be positive")
        return cls(events / period_hours)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(1.0 / self.rate, size=size)

    def mean(self) -> float:
        return 1.0 / self.rate

    def survival(self, t: float) -> float:
        return math.exp(-self.rate * max(t, 0.0))

    @property
    def is_exponential(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"Exponential(rate={self.rate!r})"


class Deterministic(Distribution):
    """A fixed, deterministic delay.

    The paper models disk replacement and software/hardware repair times as
    deterministic events swept over a range (Table 5).
    """

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        if value < 0.0:
            raise ModelError(f"Deterministic delay must be >= 0, got {value}")
        self.value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self.value)

    def mean(self) -> float:
        return self.value

    def survival(self, t: float) -> float:
        return 1.0 if t < self.value else 0.0

    def __repr__(self) -> str:
        return f"Deterministic({self.value!r})"


class Uniform(Distribution):
    """Uniform distribution on ``[low, high]``."""

    __slots__ = ("low", "high")
    batchable = True

    def __init__(self, low: float, high: float) -> None:
        if not 0.0 <= low <= high:
            raise ModelError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=size)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def survival(self, t: float) -> float:
        if t <= self.low:
            return 1.0
        if t >= self.high:
            return 0.0
        return (self.high - t) / (self.high - self.low)

    def __repr__(self) -> str:
        return f"Uniform({self.low!r}, {self.high!r})"


class Weibull(Distribution):
    """Weibull distribution with ``shape`` (β) and ``scale`` (η) in hours.

    Survival function ``S(t) = exp(-(t/η)^β)``.  Shape β < 1 gives a
    decreasing hazard (infant mortality), the regime the paper fits for
    ABE's disks (β ≈ 0.7, Table 4).
    """

    __slots__ = ("shape", "scale")
    batchable = True

    def __init__(self, shape: float, scale: float) -> None:
        if not shape > 0.0:
            raise ModelError(f"Weibull shape must be positive, got {shape}")
        if not scale > 0.0:
            raise ModelError(f"Weibull scale must be positive, got {scale}")
        self.shape = float(shape)
        self.scale = float(scale)

    @classmethod
    def from_mtbf(cls, shape: float, mtbf_hours: float) -> "Weibull":
        """Weibull with given shape whose **mean** equals ``mtbf_hours``.

        ``mean = η Γ(1 + 1/β)``, so ``η = MTBF / Γ(1 + 1/β)``.
        """
        if not mtbf_hours > 0.0:
            raise ModelError(f"MTBF must be positive, got {mtbf_hours}")
        scale = mtbf_hours / special.gamma(1.0 + 1.0 / shape)
        return cls(shape, scale)

    @classmethod
    def from_afr(cls, shape: float, afr: float) -> "Weibull":
        """Weibull with given shape and annualized failure rate ``afr``
        (fraction, e.g. ``0.0292`` for the paper's fitted 2.92 %)."""
        return cls.from_mtbf(shape, afr_to_mtbf(afr))

    @property
    def mtbf(self) -> float:
        """Mean time between failures implied by (shape, scale)."""
        return self.mean()

    @property
    def afr(self) -> float:
        """Annualized failure rate implied by the mean."""
        return mtbf_to_afr(self.mean())

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.scale * rng.weibull(self.shape))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size=size)

    def mean(self) -> float:
        return self.scale * special.gamma(1.0 + 1.0 / self.shape)

    def survival(self, t: float) -> float:
        if t <= 0.0:
            return 1.0
        return math.exp(-((t / self.scale) ** self.shape))

    def hazard(self, t: float) -> float:
        """Instantaneous hazard rate ``h(t) = (β/η)(t/η)^(β-1)``."""
        if t <= 0.0:
            return math.inf if self.shape < 1.0 else (
                0.0 if self.shape > 1.0 else 1.0 / self.scale
            )
        return (self.shape / self.scale) * (t / self.scale) ** (self.shape - 1.0)

    def residual_sample(self, age: float, rng: np.random.Generator) -> float:
        """Sample remaining life given survival to ``age`` (inverse-CDF).

        ``P(X > age + t | X > age) = S(age + t)/S(age)``; inverting gives
        ``t = η (( (age/η)^β - ln U )^(1/β)) - age`` for ``U ~ U(0,1)``.
        """
        if age < 0.0:
            raise ModelError(f"age must be >= 0, got {age}")
        u = rng.uniform()
        base = (age / self.scale) ** self.shape
        return float(self.scale * (base - math.log(u)) ** (1.0 / self.shape) - age)

    def __repr__(self) -> str:
        return f"Weibull(shape={self.shape!r}, scale={self.scale!r})"


class LogNormal(Distribution):
    """Log-normal distribution parameterized by the underlying normal's μ, σ."""

    __slots__ = ("mu", "sigma")
    batchable = True

    def __init__(self, mu: float, sigma: float) -> None:
        if not sigma > 0.0:
            raise ModelError(f"LogNormal sigma must be positive, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    @classmethod
    def from_mean_cv(cls, mean: float, cv: float) -> "LogNormal":
        """Construct from the distribution mean and coefficient of variation."""
        if not (mean > 0.0 and cv > 0.0):
            raise ModelError("mean and cv must be positive")
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - 0.5 * sigma2
        return cls(mu, math.sqrt(sigma2))

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=size)

    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma * self.sigma)

    def survival(self, t: float) -> float:
        if t <= 0.0:
            return 1.0
        z = (math.log(t) - self.mu) / self.sigma
        return float(special.ndtr(-z))

    def __repr__(self) -> str:
        return f"LogNormal(mu={self.mu!r}, sigma={self.sigma!r})"


class Gamma(Distribution):
    """Gamma distribution with ``shape`` k and ``scale`` θ (mean kθ)."""

    __slots__ = ("shape", "scale")
    batchable = True

    def __init__(self, shape: float, scale: float) -> None:
        if not (shape > 0.0 and scale > 0.0):
            raise ModelError("Gamma shape and scale must be positive")
        self.shape = float(shape)
        self.scale = float(scale)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self.shape, self.scale))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.gamma(self.shape, self.scale, size=size)

    def mean(self) -> float:
        return self.shape * self.scale

    def survival(self, t: float) -> float:
        if t <= 0.0:
            return 1.0
        return float(special.gammaincc(self.shape, t / self.scale))

    def __repr__(self) -> str:
        return f"Gamma(shape={self.shape!r}, scale={self.scale!r})"


class Erlang(Gamma):
    """Erlang distribution: sum of ``stages`` i.i.d. exponentials of ``rate``."""

    def __init__(self, stages: int, rate: float) -> None:
        if stages < 1 or stages != int(stages):
            raise ModelError(f"Erlang stages must be a positive integer, got {stages}")
        if not rate > 0.0:
            raise ModelError(f"Erlang rate must be positive, got {rate}")
        super().__init__(float(int(stages)), 1.0 / rate)
        self.stages = int(stages)
        self.rate = float(rate)

    def __repr__(self) -> str:
        return f"Erlang(stages={self.stages!r}, rate={self.rate!r})"


class Empirical(Distribution):
    """Resampling distribution over observed delays (bootstrap style)."""

    __slots__ = ("values",)
    batchable = True

    def __init__(self, values: Sequence[float]) -> None:
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise ModelError("Empirical distribution needs at least one value")
        if np.any(arr < 0.0):
            raise ModelError("Empirical delays must be non-negative")
        self.values = arr

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.choice(self.values))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.choice(self.values, size=size)

    def mean(self) -> float:
        return float(self.values.mean())

    def survival(self, t: float) -> float:
        return float(np.mean(self.values > t))

    def __repr__(self) -> str:
        return f"Empirical(n={self.values.size})"


class Shifted(Distribution):
    """``offset + X`` for an inner distribution ``X`` (e.g. minimum repair time)."""

    __slots__ = ("offset", "inner")

    def __init__(self, offset: float, inner: Distribution) -> None:
        if offset < 0.0:
            raise ModelError(f"Shift offset must be >= 0, got {offset}")
        self.offset = float(offset)
        self.inner = inner

    @property
    def batchable(self) -> bool:  # type: ignore[override]
        """Batchable exactly when the inner law is (the shift is free)."""
        return self.inner.batchable

    def sample(self, rng: np.random.Generator) -> float:
        return self.offset + self.inner.sample(rng)

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self.offset + self.inner.sample_many(rng, size)

    def mean(self) -> float:
        return self.offset + self.inner.mean()

    def survival(self, t: float) -> float:
        if t <= self.offset:
            return 1.0
        return self.inner.survival(t - self.offset)

    def __repr__(self) -> str:
        return f"Shifted(offset={self.offset!r}, inner={self.inner!r})"


class EquilibriumResidual(Distribution):
    """Stationary residual-life distribution of a renewal process.

    If components fail with lifetime law ``X`` (mean μ) and are renewed on
    failure, then at a random inspection time the **remaining life** of the
    in-service component has density ``S_X(t)/μ``.  Sampling inverts the
    CDF ``F_e(t) = (1/μ)∫₀ᵗ S_X(u) du`` numerically.

    This is how the ABE disk fleet is initialized: the fleet is in service,
    so time-to-first-failure per disk follows this law rather than the raw
    Weibull (using the raw law would overstate early failures for β < 1).
    """

    __slots__ = ("inner", "_mean_inner", "_quantile_grid", "_grid_lists")

    batchable = True

    #: Resolution of the cached inverse-CDF table used by :meth:`sample`.
    _TABLE_SIZE = 4096

    #: Grid interpolation serves draws only for ``u <= _EXACT_TAIL_U``;
    #: deeper upper-tail draws invert the CDF exactly.  The geometric
    #: tail refinement keeps the grid accurate to ~2e-4 relative up to
    #: this point, but between 0.999 and the last grid point the inverse
    #: CDF of heavy-tailed inner laws curves too fast for linear
    #: interpolation (observed error up to ≈1.4e-2 relative for the ABE
    #: Weibull).  Exact inversion beyond 0.999 costs one brentq per
    #: ~1e3 draws — negligible against the ~4800 initial disk draws.
    _EXACT_TAIL_U = 0.999

    def __init__(self, inner: Distribution) -> None:
        self.inner = inner
        self._mean_inner = inner.mean()
        if not self._mean_inner > 0.0:
            raise ModelError("inner distribution must have positive mean")
        # Fail fast if the inner law cannot report survival probabilities.
        inner.survival(0.0)
        self._quantile_grid: tuple[np.ndarray, np.ndarray] | None = None
        self._grid_lists: tuple[list[float], list[float]] | None = None

    def _integrated_survival(self, t: float) -> float:
        """``∫₀ᵗ S(u) du`` via adaptive quadrature (closed form for Weibull)."""
        if t <= 0.0:
            return 0.0
        inner = self.inner
        if isinstance(inner, Weibull):
            # ∫₀ᵗ exp(-(u/η)^β) du = (η/β) γ(1/β, (t/η)^β) with γ the lower
            # incomplete gamma; gammainc is the regularized form.
            beta, eta = inner.shape, inner.scale
            x = (t / eta) ** beta
            return float(
                (eta / beta) * special.gamma(1.0 / beta) * special.gammainc(1.0 / beta, x)
            )
        if isinstance(inner, Exponential):
            return (1.0 - math.exp(-inner.rate * t)) / inner.rate
        if isinstance(inner, Deterministic):
            return min(t, inner.value)
        from scipy import integrate

        value, _err = integrate.quad(inner.survival, 0.0, t, limit=200)
        return float(value)

    def cdf(self, t: float) -> float:
        """Equilibrium CDF ``F_e(t)``."""
        if t <= 0.0:
            return 0.0
        return min(1.0, self._integrated_survival(t) / self._mean_inner)

    def survival(self, t: float) -> float:
        return 1.0 - self.cdf(t)

    def sample_exact(self, rng: np.random.Generator) -> float:
        """Inverse-CDF sample via root finding (slow, arbitrarily accurate)."""
        u = rng.uniform()
        return self._invert(u * self._mean_inner)

    def _invert(self, target: float) -> float:
        def g(t: float) -> float:
            return self._integrated_survival(t) - target

        # Bracket the root: integrated survival is increasing, bounded by μ.
        hi = max(self._mean_inner, 1.0)
        while g(hi) < 0.0:
            hi *= 2.0
            if hi > 1e16:  # pragma: no cover - numerically unreachable
                return hi
        return float(optimize.brentq(g, 0.0, hi, xtol=1e-9, rtol=1e-12))

    def _build_quantile_grid(self) -> tuple[np.ndarray, np.ndarray]:
        """Tabulate the inverse CDF on a fine probability grid.

        The grid is dense near both tails; between grid points the inverse
        is interpolated linearly in t, which is accurate to well below the
        resolution any availability measure can resolve.  Upper-tail
        samples (u beyond ``_EXACT_TAIL_U``) fall back to exact
        inversion, where the inverse CDF curves too fast for the linear
        interpolant.
        """
        n = self._TABLE_SIZE
        # Uniformly spaced core plus geometrically refined tails.
        core = np.linspace(0.0, 1.0, n, endpoint=False)[1:]
        low_tail = np.geomspace(1e-7, core[0], 32, endpoint=False)
        high_tail = 1.0 - np.geomspace(1e-5, 1.0 - core[-1], 32, endpoint=False)[::-1]
        probs = np.unique(np.concatenate(([0.0], low_tail, core, high_tail)))
        quantiles = np.array([self._invert(p * self._mean_inner) for p in probs])
        return probs, quantiles

    def _grid(self) -> tuple[np.ndarray, np.ndarray]:
        """The cached quantile grid as ndarrays (built on first use)."""
        if self._quantile_grid is None:
            self._quantile_grid = self._build_quantile_grid()
        return self._quantile_grid

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Vectorized grid-interpolated draws: one ``np.interp`` per batch.

        Consumes the stream exactly like ``size`` successive
        :meth:`sample` calls (one uniform per draw, identical
        interpolation arithmetic), so per-draw and batched serving of
        this law follow the same variates given the same uniforms.
        Draws beyond ``_EXACT_TAIL_U`` fall back to exact inversion,
        as in :meth:`sample`.
        """
        probs, quantiles = self._grid()
        u = rng.uniform(size=size)
        out = np.interp(u, probs, quantiles)
        tail = u > self._EXACT_TAIL_U
        if tail.any():
            for i in np.flatnonzero(tail):
                out[i] = self._invert(u[i] * self._mean_inner)
        return out

    def sample(self, rng: np.random.Generator) -> float:
        if self._grid_lists is None:
            grid = self._grid()
            # plain-list copy for the scalar path: bisect + float indexing
            # on lists avoids numpy scalar overhead per draw
            self._grid_lists = (grid[0].tolist(), grid[1].tolist())
        probs, quantiles = self._grid_lists
        u = rng.uniform()
        if u > self._EXACT_TAIL_U:
            return self._invert(u * self._mean_inner)
        # Inline linear interpolation on the cached grid: same arithmetic
        # (and bit-identical results) as ``np.interp(u, probs, quantiles)``
        # at a fraction of the scalar-call overhead.  u is in
        # [0, _EXACT_TAIL_U] here and probs[0] == 0, so j-1 indexes the
        # grid cell containing u.
        j = bisect_right(probs, u)
        if j >= len(probs):
            return quantiles[-1]
        p0 = probs[j - 1]
        q0 = quantiles[j - 1]
        slope = (quantiles[j] - q0) / (probs[j] - p0)
        return slope * (u - p0) + q0

    def mean(self) -> float:
        """``E[X²] / (2μ)`` — closed form where the inner law allows it."""
        inner = self.inner
        if isinstance(inner, Weibull):
            second_moment = inner.scale**2 * special.gamma(1.0 + 2.0 / inner.shape)
            return float(second_moment / (2.0 * self._mean_inner))
        if isinstance(inner, Exponential):
            return 1.0 / inner.rate
        if isinstance(inner, Deterministic):
            return inner.value / 2.0
        from scipy import integrate

        # Find an upper limit where the survival mass is negligible, then
        # integrate t·S(t) on a bounded interval (the improper form is
        # numerically fragile for heavy-tailed laws).
        upper = max(self._mean_inner, 1.0)
        while inner.survival(upper) > 1e-14 and upper < 1e15:
            upper *= 2.0
        second_moment_half, _err = integrate.quad(
            lambda t: t * inner.survival(t), 0.0, upper, limit=400
        )
        return float(second_moment_half / self._mean_inner)

    def __repr__(self) -> str:
        return f"EquilibriumResidual({self.inner!r})"
