"""Batch-means steady-state estimation.

Independent replications (``repro.core.experiment``) pay the warm-up cost
once per replication.  For steady-state measures on a single long run,
the *method of batch means* is the classic alternative: split one
trajectory into ``k`` contiguous batches, treat per-batch averages as
approximately i.i.d., and form a Student-t interval.

This module implements batch means over :class:`BinaryTrace` trajectories
and over explicit (time, value) step functions, with the standard lag-1
autocorrelation diagnostic that warns when batches are too short to be
treated as independent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from .errors import SimulationError
from .experiment import Estimate
from .trace import BinaryTrace

__all__ = ["BatchMeansResult", "batch_means_from_trace", "batch_means_from_steps"]


@dataclass(frozen=True)
class BatchMeansResult:
    """Outcome of a batch-means analysis."""

    estimate: Estimate
    batch_means: tuple[float, ...]
    batch_hours: float
    lag1_autocorrelation: float

    @property
    def batches_look_independent(self) -> bool:
        """Rule of thumb: |lag-1 autocorrelation| below ~0.2."""
        return abs(self.lag1_autocorrelation) < 0.2


def _lag1_autocorrelation(values: np.ndarray) -> float:
    if values.size < 3:
        return 0.0
    centered = values - values.mean()
    denom = float(np.dot(centered, centered))
    if denom == 0.0:
        return 0.0
    return float(np.dot(centered[:-1], centered[1:]) / denom)


def batch_means_from_steps(
    times: Sequence[float],
    values: Sequence[float],
    end_time: float,
    n_batches: int = 20,
    warmup: float = 0.0,
    confidence: float = 0.95,
) -> BatchMeansResult:
    """Batch means of a piecewise-constant signal.

    ``times[i]`` is when the signal switched to ``values[i]``; the signal
    holds until the next change point (and until ``end_time`` after the
    last one).
    """
    if n_batches < 2:
        raise SimulationError(f"need at least 2 batches, got {n_batches}")
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.shape != v.shape or t.ndim != 1 or t.size == 0:
        raise SimulationError("times and values must be equal-length 1-D arrays")
    if np.any(np.diff(t) < 0.0):
        raise SimulationError("times must be non-decreasing")
    if not 0.0 <= warmup < end_time:
        raise SimulationError("warmup must lie in [0, end_time)")
    if t[0] > warmup:
        raise SimulationError(
            "the signal must be defined from the start of the window"
        )

    span = end_time - warmup
    batch_hours = span / n_batches
    edges = warmup + batch_hours * np.arange(n_batches + 1)

    # Integrate the step function over each batch.
    change_points = np.concatenate([t, [end_time]])
    means = np.empty(n_batches)
    for b in range(n_batches):
        lo, hi = edges[b], edges[b + 1]
        start_idx = int(np.searchsorted(change_points, lo, side="right") - 1)
        integral = 0.0
        idx = max(start_idx, 0)
        while idx < t.size and change_points[idx] < hi:
            seg_lo = max(change_points[idx], lo)
            seg_hi = min(change_points[idx + 1], hi)
            if seg_hi > seg_lo:
                integral += v[idx] * (seg_hi - seg_lo)
            idx += 1
        means[b] = integral / batch_hours

    mean = float(means.mean())
    std = float(means.std(ddof=1))
    if std == 0.0:
        half = 0.0
    else:
        tcrit = float(stats.t.ppf(0.5 + confidence / 2.0, df=n_batches - 1))
        half = tcrit * std / math.sqrt(n_batches)
    estimate = Estimate(mean, std, n_batches, confidence, half)
    return BatchMeansResult(
        estimate=estimate,
        batch_means=tuple(means.tolist()),
        batch_hours=batch_hours,
        lag1_autocorrelation=_lag1_autocorrelation(means),
    )


def batch_means_from_trace(
    trace: BinaryTrace,
    n_batches: int = 20,
    warmup: float = 0.0,
    confidence: float = 0.95,
) -> BatchMeansResult:
    """Batch-means availability estimate from a finished binary trace."""
    transitions = trace.transitions
    if not transitions:
        raise SimulationError(f"trace {trace.name!r} recorded no state")
    end = trace.intervals()[-1].end
    times = [t for t, _v in transitions]
    values = [1.0 if v else 0.0 for _t, v in transitions]
    return batch_means_from_steps(
        times, values, end, n_batches=n_batches, warmup=warmup, confidence=confidence
    )
