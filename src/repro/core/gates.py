"""Input gates, output gates, and cases — the SAN connectivity formalism.

In a stochastic activity network (Movaghar & Meyer; Möbius), an activity's
*enabling* and *effect* are expressed through gates:

* an **input gate** holds a *predicate* (the activity is enabled only if
  every input-gate predicate holds in the current marking) and an optional
  *function* executed when the activity completes;
* an **output gate** holds a function executed on completion;
* a **case** models a probabilistic outcome: when the activity completes,
  one case is chosen according to the case probabilities and its function
  is executed (between the input-gate and output-gate functions).

Functions receive ``(marking_view, rng)`` so that modeling code can draw
auxiliary random numbers (e.g. the paper's correlated-failure propagation
coin with probability *p*), and predicates receive the view alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .errors import ModelError
from .places import LocalView

__all__ = [
    "Predicate",
    "GateFunction",
    "InputGate",
    "OutputGate",
    "WriteOp",
    "WriteGuard",
    "Case",
    "validate_cases",
    "validate_guard",
]

Predicate = Callable[[LocalView], bool]
GateFunction = Callable[[LocalView, np.random.Generator], None]
CaseProbability = float | Callable[[LocalView], float]

#: One declared marking write: ``(place, "add", k)`` for ``m[place] += k``
#: (``k`` may be negative) or ``(place, "set", v)`` for ``m[place] = v``.
WriteOp = tuple[str, str, int]

#: A declared guard over one place: ``(place, cmp, value)`` with ``cmp``
#: one of ``<  <=  ==  !=  >=  >``.  Declared writes guarded by it apply
#: exactly when ``marking[place] cmp value`` holds at completion time.
WriteGuard = tuple[str, str, int]

_WRITE_KINDS = ("add", "set")

_GUARD_CMPS = ("<", "<=", "==", "!=", ">=", ">")


def validate_guard(when: WriteGuard, owner: str) -> WriteGuard:
    """Normalize and validate a declared write guard."""
    try:
        place, cmp, value = when
    except (TypeError, ValueError):
        raise ModelError(
            f"{owner}: when must be a (place, cmp, int) tuple, got {when!r}"
        ) from None
    if not isinstance(place, str) or not place:
        raise ModelError(
            f"{owner}: when place must be a non-empty name, got {place!r}"
        )
    if cmp not in _GUARD_CMPS:
        raise ModelError(
            f"{owner}: when comparison must be one of {_GUARD_CMPS}, "
            f"got {cmp!r}"
        )
    try:
        is_integral = value == int(value)
    except (TypeError, ValueError, OverflowError):
        is_integral = False
    if not is_integral:
        raise ModelError(
            f"{owner}: when value must be an integer, got {value!r}"
        )
    return (place, cmp, int(value))


def validate_writes(
    writes: tuple[WriteOp, ...], owner: str, allow_empty: bool = False
) -> tuple[WriteOp, ...]:
    """Normalize and validate a declared-writes tuple.

    ``allow_empty`` permits the explicit empty declaration ``()`` — "this
    function writes nothing" — used by no-op case branches; a gate or
    effect that writes nothing would simply be omitted, so gates keep
    requiring at least one op.
    """
    if not writes:
        if allow_empty:
            return ()
        raise ModelError(
            f"{owner}: writes must not be empty (omit it to keep the "
            "gate function uncompiled)"
        )
    out: list[WriteOp] = []
    for entry in writes:
        try:
            place, kind, amount = entry
        except (TypeError, ValueError):
            raise ModelError(
                f"{owner}: writes entries must be (place, 'add'|'set', int) "
                f"tuples, got {entry!r}"
            ) from None
        if not isinstance(place, str) or not place:
            raise ModelError(
                f"{owner}: writes place must be a non-empty name, got {place!r}"
            )
        if kind not in _WRITE_KINDS:
            raise ModelError(
                f"{owner}: writes kind must be 'add' or 'set', got {kind!r}"
            )
        try:
            is_integral = amount == int(amount)
        except (TypeError, ValueError, OverflowError):
            is_integral = False
        if not is_integral:
            raise ModelError(
                f"{owner}: writes amount must be an integer, got {amount!r}"
            )
        amount = int(amount)
        if kind == "add" and amount == 0:
            raise ModelError(f"{owner}: 'add' writes amount must be non-zero")
        if kind == "set" and amount < 0:
            raise ModelError(
                f"{owner}: 'set' writes amount must be >= 0, got {amount}"
            )
        out.append((place, kind, amount))
    return tuple(out)


def _noop(m: LocalView, rng: np.random.Generator) -> None:
    return None


@dataclass(frozen=True)
class InputGate:
    """Enabling predicate plus optional completion function.

    Attributes
    ----------
    predicate:
        ``predicate(m) -> bool``; the activity is enabled only when all of
        its input-gate predicates are true.
    function:
        ``function(m, rng)`` run when the activity completes, before cases.
    name:
        Optional label used in diagnostics.
    """

    predicate: Predicate
    function: GateFunction = _noop
    name: str = ""

    def __post_init__(self) -> None:
        if not callable(self.predicate):
            raise ModelError("input gate predicate must be callable")
        if not callable(self.function):
            raise ModelError("input gate function must be callable")


@dataclass(frozen=True)
class OutputGate:
    """Marking transformation executed when the activity completes.

    ``writes`` optionally *declares* the transformation as a fixed
    sequence of :data:`WriteOp` slot operations — the gate-write
    analogue of declared activity/reward ``reads``.  The contract: in
    **every** marking, running ``function`` performs exactly the
    declared writes (same places, same constant deltas / set values, in
    any order) and never touches the rng.  The compiled engine then
    applies the precomputed slot deltas instead of calling the Python
    function (see ``docs/performance.md`` Layer 5); the declaration is
    verified against the function on the activity's first completion of
    each run, and a mismatch raises
    :class:`~repro.core.errors.SimulationError`.  Marking-dependent
    amounts and rng-consuming functions cannot be declared.

    ``when`` extends the declaration to the one conditional shape the
    paper models need (the tier-restore effect): a :data:`WriteGuard`
    ``(place, cmp, value)`` stating that in every marking where the
    guard holds the function performs exactly the declared writes, and
    in every other marking it performs **no** writes.  The compiled
    engine evaluates the guard on the completion marking and applies
    the ops (or nothing); each guard branch is verified on its first
    occurrence.  ``when`` requires ``writes``.
    """

    function: GateFunction
    name: str = ""
    writes: tuple[WriteOp, ...] | None = None
    when: WriteGuard | None = None

    def __post_init__(self) -> None:
        if not callable(self.function):
            raise ModelError("output gate function must be callable")
        if self.writes is not None:
            object.__setattr__(
                self,
                "writes",
                validate_writes(
                    tuple(self.writes), f"output gate {self.name or '<anonymous>'!r}"
                ),
            )
        if self.when is not None:
            if self.writes is None:
                raise ModelError(
                    f"output gate {self.name or '<anonymous>'!r}: when "
                    "requires writes (a guard over undeclared writes is "
                    "meaningless)"
                )
            object.__setattr__(
                self,
                "when",
                validate_guard(
                    self.when, f"output gate {self.name or '<anonymous>'!r}"
                ),
            )


@dataclass(frozen=True)
class Case:
    """One probabilistic outcome of an activity completion.

    ``probability`` may be a constant or a marking-dependent callable
    ``f(m) -> float`` (Möbius allows marking-dependent case probabilities;
    the paper's propagation probability *p* is a constant case weight).

    ``writes`` optionally *declares* the case function's effect as a
    fixed :data:`WriteOp` sequence, with the same contract as
    :class:`OutputGate` writes (same places, same constant deltas in
    every marking, no rng use) — the explicit empty tuple ``()``
    declares a no-op branch.  When every case of an activity declares
    its writes (and its probabilities are constants, its gates hold no
    other Python functions), the compiled engine selects the branch
    with the same single uniform draw and applies the precomputed slot
    deltas — a **case kernel** — instead of calling the case function;
    each branch is verified against its function on its first
    selection.  See ``docs/performance.md`` Layer 6.
    """

    probability: CaseProbability
    function: GateFunction = _noop
    name: str = ""
    writes: tuple[WriteOp, ...] | None = None

    def __post_init__(self) -> None:
        if not callable(self.function):
            raise ModelError("case function must be callable")
        if not callable(self.probability):
            p = float(self.probability)
            if not (0.0 <= p <= 1.0):
                raise ModelError(f"case probability must be in [0, 1], got {p}")
        if self.writes is not None:
            object.__setattr__(
                self,
                "writes",
                validate_writes(
                    tuple(self.writes),
                    f"case {self.name or '<anonymous>'!r}",
                    allow_empty=True,
                ),
            )

    def probability_in(self, m: LocalView) -> float:
        """Evaluate the case probability in marking ``m``."""
        if callable(self.probability):
            p = float(self.probability(m))
            if not (0.0 <= p <= 1.0) or math.isnan(p):
                raise ModelError(
                    f"case {self.name!r}: marking-dependent probability {p} "
                    "is outside [0, 1]"
                )
            return p
        return float(self.probability)


def validate_cases(cases: tuple[Case, ...], activity_name: str) -> None:
    """Check that constant case probabilities sum to 1 (within tolerance).

    Marking-dependent probabilities are validated at firing time instead.
    """
    if not cases:
        return
    if any(callable(c.probability) for c in cases):
        return
    total = sum(float(c.probability) for c in cases)
    if not math.isclose(total, 1.0, rel_tol=0.0, abs_tol=1e-9):
        raise ModelError(
            f"activity {activity_name!r}: case probabilities sum to {total}, "
            "expected 1.0"
        )
