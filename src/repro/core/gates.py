"""Input gates, output gates, and cases — the SAN connectivity formalism.

In a stochastic activity network (Movaghar & Meyer; Möbius), an activity's
*enabling* and *effect* are expressed through gates:

* an **input gate** holds a *predicate* (the activity is enabled only if
  every input-gate predicate holds in the current marking) and an optional
  *function* executed when the activity completes;
* an **output gate** holds a function executed on completion;
* a **case** models a probabilistic outcome: when the activity completes,
  one case is chosen according to the case probabilities and its function
  is executed (between the input-gate and output-gate functions).

Functions receive ``(marking_view, rng)`` so that modeling code can draw
auxiliary random numbers (e.g. the paper's correlated-failure propagation
coin with probability *p*), and predicates receive the view alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .errors import ModelError
from .places import LocalView

__all__ = ["Predicate", "GateFunction", "InputGate", "OutputGate", "Case", "validate_cases"]

Predicate = Callable[[LocalView], bool]
GateFunction = Callable[[LocalView, np.random.Generator], None]
CaseProbability = float | Callable[[LocalView], float]


def _noop(m: LocalView, rng: np.random.Generator) -> None:
    return None


@dataclass(frozen=True)
class InputGate:
    """Enabling predicate plus optional completion function.

    Attributes
    ----------
    predicate:
        ``predicate(m) -> bool``; the activity is enabled only when all of
        its input-gate predicates are true.
    function:
        ``function(m, rng)`` run when the activity completes, before cases.
    name:
        Optional label used in diagnostics.
    """

    predicate: Predicate
    function: GateFunction = _noop
    name: str = ""

    def __post_init__(self) -> None:
        if not callable(self.predicate):
            raise ModelError("input gate predicate must be callable")
        if not callable(self.function):
            raise ModelError("input gate function must be callable")


@dataclass(frozen=True)
class OutputGate:
    """Marking transformation executed when the activity completes."""

    function: GateFunction
    name: str = ""

    def __post_init__(self) -> None:
        if not callable(self.function):
            raise ModelError("output gate function must be callable")


@dataclass(frozen=True)
class Case:
    """One probabilistic outcome of an activity completion.

    ``probability`` may be a constant or a marking-dependent callable
    ``f(m) -> float`` (Möbius allows marking-dependent case probabilities;
    the paper's propagation probability *p* is a constant case weight).
    """

    probability: CaseProbability
    function: GateFunction = _noop
    name: str = ""

    def __post_init__(self) -> None:
        if not callable(self.function):
            raise ModelError("case function must be callable")
        if not callable(self.probability):
            p = float(self.probability)
            if not (0.0 <= p <= 1.0):
                raise ModelError(f"case probability must be in [0, 1], got {p}")

    def probability_in(self, m: LocalView) -> float:
        """Evaluate the case probability in marking ``m``."""
        if callable(self.probability):
            p = float(self.probability(m))
            if not (0.0 <= p <= 1.0) or math.isnan(p):
                raise ModelError(
                    f"case {self.name!r}: marking-dependent probability {p} "
                    "is outside [0, 1]"
                )
            return p
        return float(self.probability)


def validate_cases(cases: tuple[Case, ...], activity_name: str) -> None:
    """Check that constant case probabilities sum to 1 (within tolerance).

    Marking-dependent probabilities are validated at firing time instead.
    """
    if not cases:
        return
    if any(callable(c.probability) for c in cases):
        return
    total = sum(float(c.probability) for c in cases)
    if not math.isclose(total, 1.0, rel_tol=0.0, abs_tol=1e-9):
        raise ModelError(
            f"activity {activity_name!r}: case probabilities sum to {total}, "
            "expected 1.0"
        )
