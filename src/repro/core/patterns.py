"""Path glob matching for place and activity paths.

Flattened models address components with bracketed replica indexes
(``cfs/ddn[0]/tier[3]/disk[7]/fail``).  Standard :mod:`fnmatch` globbing
would interpret ``[...]`` as a character class, so patterns like
``"*/tier[*]/fail"`` would not behave as users expect.  This module
implements the glob dialect used throughout the library:

* ``*`` matches any run of characters (including ``/``);
* ``?`` matches exactly one character;
* every other character — **including ``[`` and ``]``** — is literal.
"""

from __future__ import annotations

import re
from functools import lru_cache

__all__ = ["path_match", "compile_pattern"]


@lru_cache(maxsize=4096)
def compile_pattern(pattern: str) -> re.Pattern[str]:
    """Compile a path glob into an anchored regular expression."""
    out: list[str] = []
    for ch in pattern:
        if ch == "*":
            out.append(".*")
        elif ch == "?":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("".join(out) + r"\Z")


def path_match(path: str, pattern: str) -> bool:
    """True if ``path`` matches the glob ``pattern`` (brackets literal)."""
    return compile_pattern(pattern).match(path) is not None
