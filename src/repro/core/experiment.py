"""Replicated simulation experiments with confidence intervals.

The paper reports every simulation result "at 95% confidence level, with
intervals".  This module provides that workflow: run ``n`` independent
replications (independent RNG streams from the seed tree), collect one
scalar per metric per replication, and summarize with Student-t confidence
intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np
from scipy import stats

from .errors import SimulationError
from .rewards import ImpulseReward, RateReward
from .simulation import RunResult, Simulator
from .trace import BinaryTrace, EventTrace

__all__ = [
    "Estimate",
    "ExperimentResult",
    "replicate_runs",
    "build_metrics",
    "MetricFn",
]

MetricFn = Callable[[RunResult], float]


@dataclass(frozen=True)
class Estimate:
    """Point estimate with a symmetric Student-t confidence interval."""

    mean: float
    std: float
    n: int
    confidence: float
    half_width: float

    @classmethod
    def from_samples(
        cls, samples: Sequence[float], confidence: float = 0.95
    ) -> "Estimate":
        """Summarize i.i.d. replication outputs.

        With a single sample the half-width is infinite (no variance
        information); with identical samples it is zero.
        """
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise SimulationError("cannot build an estimate from zero samples")
        mean = float(arr.mean())
        if arr.size == 1:
            return cls(mean, float("nan"), 1, confidence, float("inf"))
        std = float(arr.std(ddof=1))
        if std == 0.0:
            return cls(mean, 0.0, int(arr.size), confidence, 0.0)
        tcrit = float(stats.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1))
        half = tcrit * std / math.sqrt(arr.size)
        return cls(mean, std, int(arr.size), confidence, half)

    @property
    def lo(self) -> float:
        """Lower confidence bound."""
        return self.mean - self.half_width

    @property
    def hi(self) -> float:
        """Upper confidence bound."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """True if ``value`` lies inside the confidence interval."""
        return self.lo <= value <= self.hi

    def __str__(self) -> str:
        if math.isinf(self.half_width):
            return f"{self.mean:.6g} (n=1)"
        return f"{self.mean:.6g} ± {self.half_width:.2g} ({int(self.confidence * 100)}% CI, n={self.n})"


class ExperimentResult:
    """Per-metric samples across replications, with CI summaries."""

    def __init__(
        self,
        samples: Mapping[str, Sequence[float]],
        until: float,
        warmup: float,
        confidence: float = 0.95,
    ) -> None:
        self._samples = {k: list(v) for k, v in samples.items()}
        self.until = until
        self.warmup = warmup
        self.confidence = confidence

    @property
    def metrics(self) -> list[str]:
        """Names of collected metrics."""
        return sorted(self._samples)

    @property
    def n_replications(self) -> int:
        """Number of replications recorded."""
        if not self._samples:
            return 0
        return len(next(iter(self._samples.values())))

    def samples(self, metric: str) -> list[float]:
        """Raw replication samples for a metric."""
        try:
            return list(self._samples[metric])
        except KeyError:
            raise KeyError(
                f"unknown metric {metric!r}; available: {self.metrics}"
            ) from None

    def estimate(self, metric: str) -> Estimate:
        """Student-t estimate for a metric."""
        return Estimate.from_samples(self.samples(metric), self.confidence)

    def mean(self, metric: str) -> float:
        """Convenience: mean of a metric across replications."""
        return self.estimate(metric).mean

    def as_dict(self) -> dict[str, Estimate]:
        """All metrics, estimated."""
        return {m: self.estimate(m) for m in self.metrics}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{m}={self.estimate(m)}" for m in self.metrics)
        return f"ExperimentResult(n={self.n_replications}, {parts})"


def _default_metrics(
    rewards: Sequence[RateReward | ImpulseReward],
) -> dict[str, MetricFn]:
    metrics: dict[str, MetricFn] = {}
    for r in rewards:
        name = r.name
        if isinstance(r, RateReward):
            metrics[name] = lambda res, _n=name: res[_n].time_average
            if r.probe_times:
                # Instant-of-time probes become per-time metrics, so a
                # replicated study yields a CI'd availability timeline.
                for t in r.probe_times:
                    metrics[f"{name}@{t:g}"] = (
                        lambda res, _n=name, _t=t: res[_n].instant(_t)
                    )
        else:
            metrics[name] = lambda res, _n=name: res[_n].impulse_sum
            metrics[f"{name}.per_hour"] = lambda res, _n=name: res[_n].rate
    return metrics


def build_metrics(
    rewards: Sequence[RateReward | ImpulseReward],
    extra_metrics: Mapping[str, MetricFn] | None = None,
) -> dict[str, MetricFn]:
    """Full metric table for a replication study.

    Default metrics are derived from the rewards (time average for rate
    rewards, sum and per-hour rate for impulse rewards) and merged with
    ``extra_metrics``.  Used identically by the serial path and by
    parallel workers, so metric values cannot diverge between modes.
    """
    metrics = _default_metrics(rewards)
    if extra_metrics:
        overlap = set(metrics) & set(extra_metrics)
        if overlap:
            raise SimulationError(f"extra metrics shadow defaults: {sorted(overlap)}")
        metrics.update(extra_metrics)
    if not metrics:
        raise SimulationError("experiment defines no metrics")
    return metrics


def replicate_runs(
    simulator: Simulator,
    until: float,
    *,
    n_replications: int,
    warmup: float = 0.0,
    rewards: Sequence[RateReward | ImpulseReward] = (),
    traces_factory: Callable[[], Sequence[BinaryTrace | EventTrace]] | None = None,
    extra_metrics: Mapping[str, MetricFn] | None = None,
    confidence: float = 0.95,
    on_result: Callable[[int, RunResult], None] | None = None,
    n_jobs: int | None = 1,
    spec: "ReplicationSpec | None" = None,
    retry: "RetryPolicy | None" = None,
    chaos: "ChaosPolicy | None" = None,
    serial_fallback: bool = True,
    stopping: "StoppingRule | None" = None,
) -> ExperimentResult:
    """Run independent replications and summarize metrics with CIs.

    Parameters
    ----------
    simulator:
        A reusable :class:`~repro.core.simulation.Simulator`; replication
        ``k`` uses the stream derived from its base seed and run counter.
    until / warmup:
        Observation window per replication.
    rewards:
        Reward variables observed in every replication.  Default metrics
        are derived automatically: the time average for rate rewards, the
        sum and per-hour rate for impulse rewards.
    traces_factory:
        Optional factory producing fresh trace observers per replication
        (traces are stateful, so they cannot be shared across reps when the
        caller wants to keep them; ``on_result`` receives each run).
    extra_metrics:
        Additional ``name -> f(RunResult)`` scalars to collect.
    on_result:
        Callback invoked with ``(replication_index, RunResult)``, useful for
        harvesting traces or logging progress.  Serial mode only.
    n_jobs:
        Number of worker processes (1 = serial, -1 = all cores).  Because
        replication ``k`` always uses the seed-tree stream ``k``, the
        returned samples are bit-identical for every ``n_jobs`` value.
    spec:
        Optional :class:`~repro.core.parallel.ReplicationSpec` letting
        workers rebuild the model from a picklable recipe (required on
        platforms without the ``fork`` start method; it must describe the
        same study as ``simulator``/``rewards``).
    retry / chaos / serial_fallback:
        Supervision knobs for parallel execution (see
        :mod:`repro.core.resilience` and
        :func:`~repro.core.parallel.run_replications_parallel`): retry
        policy with per-attempt timeouts, deterministic fault injection
        (``None`` honors ``REPRO_CHAOS``), and graceful degradation to
        serial execution when pools are unavailable.  Worker-crash
        recovery re-executes only incomplete replications and is
        bit-identical to an uninterrupted run.  Serial execution
        (``n_jobs=1``) runs unsupervised.
    stopping:
        Optional :class:`~repro.core.stopping.StoppingRule` enabling
        sequential stopping: replications run in deterministic rounds
        and stop as soon as the watched metrics' relative CI half-width
        (batch-means variance) reaches the rule's target —
        ``n_replications`` becomes the *cap* rather than the exact
        count.  Replication ``k`` still draws from seed-tree stream
        ``k`` and decisions happen only at round boundaries, so the
        stopping point (and every sample) is identical for serial
        execution, any ``n_jobs``, and resumed runs.  Default ``None``
        runs exactly ``n_replications`` replications, byte-identical to
        previous releases.
    """
    if n_replications < 1:
        raise SimulationError(f"n_replications must be >= 1, got {n_replications}")
    metrics = build_metrics(rewards, extra_metrics)

    from .parallel import (
        ReplicationSetup,
        resolve_n_jobs,
        run_replications_parallel,
    )

    jobs = resolve_n_jobs(n_jobs)
    if stopping is not None:
        return _replicate_adaptive(
            simulator,
            until,
            cap=n_replications,
            warmup=warmup,
            rewards=rewards,
            traces_factory=traces_factory,
            extra_metrics=extra_metrics,
            metrics=metrics,
            confidence=confidence,
            on_result=on_result,
            jobs=jobs,
            spec=spec,
            retry=retry,
            chaos=chaos,
            serial_fallback=serial_fallback,
            stopping=stopping,
        )
    if jobs > 1:
        if on_result is not None:
            raise SimulationError(
                "on_result callbacks require serial execution (n_jobs=1): "
                "RunResult objects do not cross process boundaries"
            )
        # The live setup always rides along: without a spec it is the
        # fork-inherited worker bootstrap; with one it pre-seeds the
        # per-process setup cache so forked workers reuse this
        # already-compiled program instead of rebuilding from the spec.
        setup = ReplicationSetup(simulator, rewards, traces_factory, extra_metrics)
        samples = run_replications_parallel(
            until=until,
            warmup=warmup,
            base_seed=simulator.base_seed,
            counter_base=simulator._run_counter,
            n_replications=n_replications,
            n_jobs=jobs,
            spec=spec,
            setup=setup,
            retry=retry,
            chaos=chaos,
            serial_fallback=serial_fallback,
        )
        # Keep the local counter in step so a later serial call continues
        # exactly where a serial-only sequence would have.
        simulator._run_counter += n_replications
        return ExperimentResult(samples, until, warmup, confidence)

    samples = {name: [] for name in metrics}
    for k in range(n_replications):
        traces = tuple(traces_factory()) if traces_factory is not None else ()
        result = simulator.run(
            until, warmup=warmup, rewards=rewards, traces=traces
        )
        for name, fn in metrics.items():
            samples[name].append(float(fn(result)))
        if on_result is not None:
            on_result(k, result)
    return ExperimentResult(samples, until, warmup, confidence)


def _replicate_adaptive(
    simulator: Simulator,
    until: float,
    *,
    cap: int,
    warmup: float,
    rewards,
    traces_factory,
    extra_metrics,
    metrics: Mapping[str, MetricFn],
    confidence: float,
    on_result,
    jobs: int,
    spec,
    retry,
    chaos,
    serial_fallback: bool,
    stopping,
) -> ExperimentResult:
    """Sequential-stopping body of :func:`replicate_runs`.

    Rounds follow the rule's deterministic schedule
    (:meth:`~repro.core.stopping.StoppingRule.next_round`); the decision
    after each round sees exactly the per-metric sample prefix a serial
    run would have, so serial, pooled, and resumed executions stop at
    the same replication count with float-identical samples.
    """
    from .parallel import ReplicationSetup, run_replications_adaptive

    if jobs > 1:
        if on_result is not None:
            raise SimulationError(
                "on_result callbacks require serial execution (n_jobs=1): "
                "RunResult objects do not cross process boundaries"
            )
        setup = ReplicationSetup(simulator, rewards, traces_factory, extra_metrics)
        samples, n_done = run_replications_adaptive(
            until=until,
            warmup=warmup,
            base_seed=simulator.base_seed,
            counter_base=simulator._run_counter,
            max_replications=cap,
            n_jobs=jobs,
            stopping=stopping,
            spec=spec,
            setup=setup,
            retry=retry,
            chaos=chaos,
            serial_fallback=serial_fallback,
        )
        simulator._run_counter += n_done
        return ExperimentResult(samples, until, warmup, confidence)

    samples = {name: [] for name in metrics}
    n_done = 0
    while True:
        round_n = stopping.next_round(n_done, cap)
        if round_n == 0:
            break
        for _ in range(round_n):
            traces = (
                tuple(traces_factory()) if traces_factory is not None else ()
            )
            result = simulator.run(
                until, warmup=warmup, rewards=rewards, traces=traces
            )
            for name, fn in metrics.items():
                samples[name].append(float(fn(result)))
            if on_result is not None:
                on_result(n_done, result)
            n_done += 1
        if stopping.satisfied(samples):
            break
    return ExperimentResult(samples, until, warmup, confidence)
