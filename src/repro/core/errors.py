"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
masking programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "CompositionError",
    "SimulationError",
    "SimulationBudgetError",
    "DeclarationError",
    "InstantaneousLoopError",
    "SanitizerError",
    "ChaosError",
    "TaskTimeoutError",
    "StateSpaceError",
    "AnalysisError",
    "ParseError",
    "FitError",
    "ParameterError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """A stochastic activity network definition is malformed."""


class CompositionError(ModelError):
    """A replicate/join composition tree cannot be flattened.

    Typical causes: shared place names missing from a child model,
    conflicting initial markings for a shared place, or duplicate
    submodel names within a join.
    """


class SimulationError(ReproError):
    """The discrete-event simulator reached an invalid state."""


class DeclarationError(SimulationError):
    """A declared dependency (``reads=``/``writes=``/``Case`` writes) was
    contradicted by the activity's actual behavior.

    Raised when kernel verification observes an effect, gate, or case
    branch touching the marking differently from its declaration.  The
    check runs after the Python fallback has already applied the true
    writes, so the marking is consistent when this propagates; under
    ``Simulator(verify_every=..., strict=False)`` the simulator catches
    it, quarantines the offending activity's compiled kernel, and
    continues on the Python path with a single :class:`RuntimeWarning`.
    """


class InstantaneousLoopError(SimulationError):
    """Instantaneous activities re-enabled each other without reaching a fixpoint.

    Raised after ``Simulator(max_instant_chain=...)`` zero-time firings at
    one instant, which indicates a modeling bug (a "vanishing loop" in SAN
    terms).  Raise the cap for models with legitimately deep zero-time
    cascades.
    """


class SimulationBudgetError(SimulationError):
    """A run exceeded its event or wall-clock budget.

    Raised by :meth:`~repro.core.simulation.Simulator.run` when
    ``Simulator(max_events=...)`` or ``Simulator(max_wall_s=...)`` is
    exceeded, so a runaway model terminates diagnosably instead of
    hanging.  Carries the partial trajectory state at termination:

    Attributes
    ----------
    budget:
        Which budget tripped — ``"max_events"`` or ``"max_wall_s"``.
    limit:
        The configured bound.
    n_events:
        Events executed before the budget tripped.
    sim_time:
        Simulated time reached.
    marking:
        ``place path -> value`` snapshot of the marking at termination.
    rewards:
        ``reward name -> partial state`` snapshot, consistent with
        ``sim_time``.  Rate rewards map to ``{"kind": "rate",
        "integral": ..., "value": ...}`` (the accumulated integral over
        the observed window so far and the current rate value); impulse
        rewards map to ``{"kind": "impulse", "impulse_sum": ...,
        "count": ...}``.  The snapshot is taken before the interrupting
        event executes, so it is identical whether the run used the
        compiled reward kernels or the reference loop.
    """

    def __init__(
        self,
        message: str,
        *,
        budget: str = "max_events",
        limit: float | int | None = None,
        n_events: int = 0,
        sim_time: float = 0.0,
        marking: dict | None = None,
        rewards: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.budget = budget
        self.limit = limit
        self.n_events = n_events
        self.sim_time = sim_time
        self.marking = {} if marking is None else marking
        self.rewards = {} if rewards is None else rewards


class SanitizerError(SimulationError):
    """Strict-mode sanitizer failure.

    Raised at the end of a ``Simulator(sanitize=True, strict=True)`` run
    when the instrumented execution recorded declaration violations.
    Carries the full :class:`~repro.core.sanitizer.SanitizerReport` as
    the ``report`` attribute.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class ChaosError(SimulationError):
    """A fault injected by :class:`~repro.core.resilience.ChaosPolicy`.

    Retryable by the default :class:`~repro.core.resilience.RetryPolicy`:
    the fault-injection suites use it to prove that supervised execution
    recovers to results bit-identical to an undisturbed run.
    """


class TaskTimeoutError(SimulationError):
    """A supervised task exceeded its per-attempt wall-clock timeout.

    Raised in the parent by the supervised executor
    (:func:`~repro.core.resilience.run_tasks_supervised`) after it kills
    the worker pool hosting the overdue task; retryable by default.
    """


class StateSpaceError(ReproError):
    """State-space exploration failed (non-exponential timing, explosion, ...)."""


class AnalysisError(ReproError):
    """A log-analysis operation failed."""


class ParseError(AnalysisError):
    """A log line or log file could not be parsed."""


class FitError(AnalysisError):
    """A statistical fit (e.g. censored Weibull MLE) did not converge."""


class ParameterError(ReproError):
    """A model parameter set failed validation against its documented range."""
