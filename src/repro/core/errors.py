"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
masking programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "CompositionError",
    "SimulationError",
    "InstantaneousLoopError",
    "StateSpaceError",
    "AnalysisError",
    "ParseError",
    "FitError",
    "ParameterError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """A stochastic activity network definition is malformed."""


class CompositionError(ModelError):
    """A replicate/join composition tree cannot be flattened.

    Typical causes: shared place names missing from a child model,
    conflicting initial markings for a shared place, or duplicate
    submodel names within a join.
    """


class SimulationError(ReproError):
    """The discrete-event simulator reached an invalid state."""


class InstantaneousLoopError(SimulationError):
    """Instantaneous activities re-enabled each other without reaching a fixpoint.

    Raised after a configurable number of zero-time firings at one instant,
    which indicates a modeling bug (a "vanishing loop" in SAN terms).
    """


class StateSpaceError(ReproError):
    """State-space exploration failed (non-exponential timing, explosion, ...)."""


class AnalysisError(ReproError):
    """A log-analysis operation failed."""


class ParseError(AnalysisError):
    """A log line or log file could not be parsed."""


class FitError(AnalysisError):
    """A statistical fit (e.g. censored Weibull MLE) did not converge."""


class ParameterError(ReproError):
    """A model parameter set failed validation against its documented range."""
