"""Reward variables: how measures are defined on a SAN model.

Following the Möbius reward formalism the paper relies on:

* a **rate reward** assigns a value to each *marking*; its interval-of-time
  accumulation ``∫ value(marking(t)) dt`` divided by the interval length is
  the time-averaged reward.  Availability measures are rate rewards whose
  value is 1 in "up" markings and 0 otherwise.
* an **impulse reward** assigns a value to each *activity completion*; its
  accumulation counts (or weighs) events.  The paper's disk-replacement
  rate is an impulse reward on disk-repair completions.

Reward functions are evaluated through the model's *global view*, so they
address places by full path (``"cluster/storage_tiers_down"``) or via
pre-resolved slots for speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from .patterns import path_match
from typing import Callable

from .errors import ModelError
from .places import LocalView

__all__ = ["RateReward", "ImpulseReward", "RewardResult"]


class RateReward:
    """Time-integrated function of the marking.

    Parameters
    ----------
    name:
        Result key.
    function:
        ``f(global_view) -> float`` evaluated whenever a place it reads
        changes.  The simulator discovers the read set automatically.
    """

    kind = "rate"

    def __init__(self, name: str, function: Callable[[LocalView], float]) -> None:
        if not callable(function):
            raise ModelError(f"rate reward {name!r}: function must be callable")
        self.name = name
        self.function = function

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RateReward({self.name!r})"


class ImpulseReward:
    """Accumulates a value each time a matching activity completes.

    Parameters
    ----------
    name:
        Result key.
    activity_pattern:
        :mod:`fnmatch` glob over activity paths
        (``"*/tier[*]/replace_disk"``) or a predicate over the path.
    value:
        Constant increment, or ``f(global_view) -> float`` evaluated on the
        post-completion marking.
    """

    kind = "impulse"

    def __init__(
        self,
        name: str,
        activity_pattern: str | Callable[[str], bool],
        value: float | Callable[[LocalView], float] = 1.0,
    ) -> None:
        self.name = name
        self.activity_pattern = activity_pattern
        self.value = value

    def matches(self, activity_path: str) -> bool:
        """True if this reward observes the given activity instance."""
        if callable(self.activity_pattern):
            return bool(self.activity_pattern(activity_path))
        return path_match(activity_path, self.activity_pattern)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ImpulseReward({self.name!r}, {self.activity_pattern!r})"


@dataclass
class RewardResult:
    """Accumulated outcome of one reward variable over one run.

    Attributes
    ----------
    name / kind:
        Identity of the reward.
    integral:
        For rate rewards: ``∫ value dt`` over the observation window.
    impulse_sum:
        For impulse rewards: sum of impulse values.
    count:
        For impulse rewards: number of matching completions.
    duration:
        Length of the observation window (after warm-up).
    """

    name: str
    kind: str
    integral: float = 0.0
    impulse_sum: float = 0.0
    count: int = 0
    duration: float = 0.0

    @property
    def time_average(self) -> float:
        """Mean rate-reward value over the window (rate rewards)."""
        if self.duration <= 0.0:
            return 0.0
        return self.integral / self.duration

    @property
    def rate(self) -> float:
        """Impulses per hour over the window (impulse rewards)."""
        if self.duration <= 0.0:
            return 0.0
        return self.impulse_sum / self.duration

    @property
    def value(self) -> float:
        """The headline scalar: time average for rate, sum for impulse."""
        return self.time_average if self.kind == "rate" else self.impulse_sum

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "rate":
            return f"RewardResult({self.name!r}, time_average={self.time_average:.6g})"
        return (
            f"RewardResult({self.name!r}, sum={self.impulse_sum:.6g}, "
            f"count={self.count})"
        )
