"""Reward variables: how measures are defined on a SAN model.

Following the Möbius reward formalism the paper relies on:

* a **rate reward** assigns a value to each *marking*; its interval-of-time
  accumulation ``∫ value(marking(t)) dt`` divided by the interval length is
  the time-averaged reward.  Availability measures are rate rewards whose
  value is 1 in "up" markings and 0 otherwise.
* an **impulse reward** assigns a value to each *activity completion*; its
  accumulation counts (or weighs) events.  The paper's disk-replacement
  rate is an impulse reward on disk-repair completions.

Reward functions are evaluated through the model's *global view*, so they
address places by full path (``"cluster/storage_tiers_down"``) or via
pre-resolved slots for speed.

Beyond plain interval-of-time accumulation, both reward kinds support the
other Möbius variable shapes:

* an **interval-of-time window** (``window=(start, end)``) restricts
  accumulation to the window (intersected with the run's
  ``[warmup, until]`` observation interval); the reward's ``duration`` is
  the effective window length, so ``time_average`` and ``rate`` stay
  consistent;
* **instant-of-time probes** (``probe_times=[...]`` on rate rewards)
  sample the reward value at fixed time points; results land in
  :attr:`RewardResult.instants`.
* a **declared read set** (``reads=[...]`` on rate rewards) names the
  places the function may read, letting the simulator build its per-slot
  observer lists at wiring time and skip tracked discovery entirely.
* a **declared form** (``form=Indicator(...)`` / ``form=Affine(...)`` on
  rate rewards) goes one step further: it states the reward's value as a
  guarded slot-affine expression the simulator can compile into an
  incremental update kernel — when an event writes a relevant place, the
  kernel refreshes the reward's value inline (integer guard bookkeeping
  plus a short affine recompute) instead of re-calling the Python
  expression.  The kernel is verified against the Python function on the
  first evaluation of every run, and ``engine="reference"`` never uses
  it (the differential-testing contract of the gate/case kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from .patterns import path_match
from typing import Callable, Sequence

from .errors import ModelError
from .places import LocalView

__all__ = [
    "Affine",
    "Indicator",
    "RateReward",
    "ImpulseReward",
    "RewardResult",
]

#: Comparison operators accepted in reward-form guards.
GUARD_OPS = ("<", "<=", "==", "!=", ">=", ">")


def _validate_guards(owner: str, guards) -> tuple:
    """Normalize/validate a guard list.

    Each guard is ``(place, cmp, value)`` — the guard holds when
    ``marking[place] cmp value`` — or ``((place_a, place_b), cmp, value)``
    for the difference form ``marking[place_a] - marking[place_b] cmp
    value`` (the shape the covered-pairs availability condition needs).
    Comparisons are integer-exact, so guard evaluation can never drift
    from the Python expression.
    """
    out = []
    for g in guards:
        try:
            place, cmp, value = g
        except (TypeError, ValueError):
            raise ModelError(
                f"{owner}: each guard must be (place, cmp, value), got {g!r}"
            ) from None
        if isinstance(place, (tuple, list)):
            if len(place) != 2 or not all(isinstance(p, str) for p in place):
                raise ModelError(
                    f"{owner}: a difference guard needs two place paths, "
                    f"got {place!r}"
                )
            place = (str(place[0]), str(place[1]))
        elif not isinstance(place, str):
            raise ModelError(
                f"{owner}: guard place must be a path string or a "
                f"(path, path) pair, got {place!r}"
            )
        if cmp not in GUARD_OPS:
            raise ModelError(
                f"{owner}: guard comparison must be one of {GUARD_OPS}, "
                f"got {cmp!r}"
            )
        out.append((place, cmp, float(value) if value % 1 else int(value)))
    return tuple(out)


def _validate_terms(owner: str, terms) -> tuple:
    """Normalize/validate affine terms to ``(place, coef, divisor)``.

    A term contributes ``coef * marking[place] / divisor`` (division by
    the normalized divisor ``1.0`` is exact, so the two-element shape
    ``(place, coef)`` loses nothing).
    """
    out = []
    for t in terms:
        if len(t) == 2:
            place, coef = t
            div = 1.0
        elif len(t) == 3:
            place, coef, div = t
        else:
            raise ModelError(
                f"{owner}: each term must be (place, coef) or "
                f"(place, coef, divisor), got {t!r}"
            )
        if not isinstance(place, str):
            raise ModelError(
                f"{owner}: term place must be a path string, got {place!r}"
            )
        div = float(div)
        if div == 0.0:
            raise ModelError(f"{owner}: term divisor must be nonzero")
        out.append((place, float(coef), div))
    return tuple(out)


class Affine:
    """Guarded slot-affine reward form.

    The reward's value is ``0.0`` unless every guard holds, in which case
    it is ``base + Σ coef_i · marking[place_i] / div_i`` accumulated left
    to right (the canonical arithmetic order — the compiled kernel and
    the synthesized Python function both evaluate exactly this, so they
    are bit-identical by construction).

    Parameters
    ----------
    base:
        Constant part of the value.
    terms:
        ``(place, coef)`` or ``(place, coef, divisor)`` tuples; each
        contributes ``coef * marking[place] / divisor``.
    guards:
        ``(place, cmp, value)`` or ``((place_a, place_b), cmp, value)``
        conditions (see :func:`_validate_guards`); all must hold for the
        value to be nonzero.
    """

    __slots__ = ("base", "terms", "guards")

    def __init__(self, base: float, terms=(), guards=()) -> None:
        self.base = float(base)
        self.terms = _validate_terms("Affine form", terms)
        self.guards = _validate_guards("Affine form", guards)

    def places(self) -> tuple[str, ...]:
        """Every place path the form reads, in first-mention order."""
        seen: dict[str, None] = {}
        for place, _cmp, _v in self.guards:
            for p in (place if isinstance(place, tuple) else (place,)):
                seen.setdefault(p)
        for place, _coef, _div in self.terms:
            seen.setdefault(place)
        return tuple(seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Affine(base={self.base!r}, terms={self.terms!r}, "
            f"guards={self.guards!r})"
        )


class Indicator(Affine):
    """Guarded constant reward form: ``value`` while every guard holds.

    The availability-measure shape: ``Indicator(guards=[("a", "==", 0),
    ("b", "<=", 0)])`` is 1.0 exactly when the marking satisfies every
    condition.  Equivalent to :class:`Affine` with no terms.
    """

    __slots__ = ()

    def __init__(self, guards, value: float = 1.0) -> None:
        super().__init__(base=value, terms=(), guards=guards)
        if not self.guards:
            raise ModelError("Indicator form needs at least one guard")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Indicator(guards={self.guards!r}, value={self.base!r})"


def _synthesize_form_function(form: Affine) -> Callable:
    """Build the Python evaluation of a declared form.

    Reads places by path through the view (so tracked discovery and the
    declared-reads verification see every read) and computes exactly the
    canonical guard/affine arithmetic the compiled kernel uses —
    bit-identical by construction.
    """
    guards = form.guards
    base = form.base
    terms = form.terms
    import operator as _op

    cmp_fns = {
        "<": _op.lt, "<=": _op.le, "==": _op.eq,
        "!=": _op.ne, ">=": _op.ge, ">": _op.gt,
    }
    compiled_guards = tuple(
        (place, cmp_fns[cmp], value) for place, cmp, value in guards
    )

    def evaluate(m) -> float:
        for place, cmp_fn, value in compiled_guards:
            if isinstance(place, tuple):
                lhs = m[place[0]] - m[place[1]]
            else:
                lhs = m[place]
            if not cmp_fn(lhs, value):
                return 0.0
        acc = base
        for place, coef, div in terms:
            acc += coef * m[place] / div
        return acc

    return evaluate


def _validate_window(
    name: str, window: tuple[float, float] | None
) -> tuple[float, float] | None:
    if window is None:
        return None
    try:
        start, end = window
    except (TypeError, ValueError):
        raise ModelError(
            f"reward {name!r}: window must be a (start, end) pair, got {window!r}"
        ) from None
    start, end = float(start), float(end)
    if not 0.0 <= start < end:
        raise ModelError(
            f"reward {name!r}: window must satisfy 0 <= start < end, "
            f"got ({start}, {end})"
        )
    return (start, end)


class RateReward:
    """Time-integrated function of the marking.

    Parameters
    ----------
    name:
        Result key.
    function:
        ``f(global_view) -> float`` evaluated whenever a place it reads
        changes.  The simulator discovers the read set automatically
        unless ``reads`` declares it.
    reads:
        Optional declared read set: place paths (or globs) covering
        *every* place the function may ever read.  Declared rewards are
        wired into per-slot observer lists up front and evaluated without
        read tracking; the simulator verifies the initial evaluation
        against the declaration and raises on undeclared *name-addressed*
        reads (``m["path"]``).  Raw slot reads (``m.raw[slot]``) are
        invisible to that check, so a function using them must keep its
        declaration complete by construction — pin it with a test that
        compares against a tracked path-based twin (see
        ``tests/test_properties_rewards.py::test_cluster_measure_declarations_cover_tracked_reads``).
    window:
        Optional ``(start, end)`` interval-of-time window; accumulation
        is restricted to the window intersected with ``[warmup, until]``.
    probe_times:
        Optional instant-of-time sample points (hours, ``>= 0``); each
        run records ``(time, value)`` pairs in
        :attr:`RewardResult.instants`.  The recorded value is the left
        limit: the reward value just before any event at that instant.
    form:
        Optional declared :class:`Indicator` / :class:`Affine` form.  A
        declared form is compiled by the simulator into an incremental
        update kernel: events that write one of the form's places refresh
        the reward inline (exact integer guard bookkeeping plus the
        canonical affine arithmetic) instead of re-calling ``function``.
        The kernel value is verified against ``function`` on the first
        evaluation of every run and must match bit-for-bit — pass
        ``function=None`` to have the function synthesized from the form,
        which guarantees it.  When ``reads`` is omitted, it is derived
        from the form's places.  ``engine="reference"`` ignores forms.
    """

    kind = "rate"

    def __init__(
        self,
        name: str,
        function: Callable[[LocalView], float] | None = None,
        *,
        reads: Sequence[str] | None = None,
        window: tuple[float, float] | None = None,
        probe_times: Sequence[float] | None = None,
        form: Affine | None = None,
    ) -> None:
        if form is not None and not isinstance(form, Affine):
            raise ModelError(
                f"rate reward {name!r}: form must be an Indicator or "
                f"Affine, got {form!r}"
            )
        if function is None:
            if form is None:
                raise ModelError(
                    f"rate reward {name!r}: function must be callable "
                    "(or a form declared to synthesize it from)"
                )
            function = _synthesize_form_function(form)
        elif not callable(function):
            raise ModelError(f"rate reward {name!r}: function must be callable")
        self.name = name
        self.function = function
        self.form = form
        if reads is None and form is not None:
            # A degenerate constant form (no guards, no terms) reads
            # nothing: leave reads undeclared — the value never needs a
            # refresh after t=0.
            reads = form.places() or None
        self.reads = None if reads is None else tuple(reads)
        if self.reads is not None and not self.reads:
            raise ModelError(f"rate reward {name!r}: reads must not be empty")
        self.window = _validate_window(name, window)
        if probe_times is None:
            self.probe_times = None
        else:
            times = tuple(sorted(float(t) for t in probe_times))
            if times and times[0] < 0.0:
                raise ModelError(
                    f"rate reward {name!r}: probe times must be >= 0, "
                    f"got {times[0]}"
                )
            self.probe_times = times or None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RateReward({self.name!r})"


class ImpulseReward:
    """Accumulates a value each time a matching activity completes.

    Parameters
    ----------
    name:
        Result key.
    activity_pattern:
        :mod:`fnmatch` glob over activity paths
        (``"*/tier[*]/replace_disk"``) or a predicate over the path.
    value:
        Constant increment, or ``f(global_view) -> float`` evaluated on the
        post-completion marking.
    window:
        Optional ``(start, end)`` interval-of-time window; completions are
        counted only inside the window (intersected with ``[warmup,
        until]``).
    """

    kind = "impulse"

    def __init__(
        self,
        name: str,
        activity_pattern: str | Callable[[str], bool],
        value: float | Callable[[LocalView], float] = 1.0,
        *,
        window: tuple[float, float] | None = None,
    ) -> None:
        self.name = name
        self.activity_pattern = activity_pattern
        self.value = value
        self.window = _validate_window(name, window)

    def matches(self, activity_path: str) -> bool:
        """True if this reward observes the given activity instance."""
        if callable(self.activity_pattern):
            return bool(self.activity_pattern(activity_path))
        return path_match(activity_path, self.activity_pattern)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ImpulseReward({self.name!r}, {self.activity_pattern!r})"


@dataclass
class RewardResult:
    """Accumulated outcome of one reward variable over one run.

    Attributes
    ----------
    name / kind:
        Identity of the reward.
    integral:
        For rate rewards: ``∫ value dt`` over the observation window.
    impulse_sum:
        For impulse rewards: sum of impulse values.
    count:
        For impulse rewards: number of matching completions.
    duration:
        Length of the observation window (after warm-up; for windowed
        rewards, the effective window length).
    instants:
        Instant-of-time samples, ``(time, value)`` pairs in time order
        (rate rewards with ``probe_times`` only).  Probes beyond an early
        stop are not recorded.
    """

    name: str
    kind: str
    integral: float = 0.0
    impulse_sum: float = 0.0
    count: int = 0
    duration: float = 0.0
    instants: list[tuple[float, float]] = field(default_factory=list)

    def instant(self, time: float) -> float:
        """Probed value at ``time`` (must be one of the probe times)."""
        for t, v in self.instants:
            if t == time:
                return v
        raise KeyError(
            f"reward {self.name!r}: no instant-of-time sample at t={time}; "
            f"recorded times: {[t for t, _ in self.instants]}"
        )

    @property
    def time_average(self) -> float:
        """Mean rate-reward value over the window (rate rewards)."""
        if self.duration <= 0.0:
            return 0.0
        return self.integral / self.duration

    @property
    def rate(self) -> float:
        """Impulses per hour over the window (impulse rewards)."""
        if self.duration <= 0.0:
            return 0.0
        return self.impulse_sum / self.duration

    @property
    def value(self) -> float:
        """The headline scalar: time average for rate, sum for impulse."""
        return self.time_average if self.kind == "rate" else self.impulse_sum

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "rate":
            return f"RewardResult({self.name!r}, time_average={self.time_average:.6g})"
        return (
            f"RewardResult({self.name!r}, sum={self.impulse_sum:.6g}, "
            f"count={self.count})"
        )
