"""Reward variables: how measures are defined on a SAN model.

Following the Möbius reward formalism the paper relies on:

* a **rate reward** assigns a value to each *marking*; its interval-of-time
  accumulation ``∫ value(marking(t)) dt`` divided by the interval length is
  the time-averaged reward.  Availability measures are rate rewards whose
  value is 1 in "up" markings and 0 otherwise.
* an **impulse reward** assigns a value to each *activity completion*; its
  accumulation counts (or weighs) events.  The paper's disk-replacement
  rate is an impulse reward on disk-repair completions.

Reward functions are evaluated through the model's *global view*, so they
address places by full path (``"cluster/storage_tiers_down"``) or via
pre-resolved slots for speed.

Beyond plain interval-of-time accumulation, both reward kinds support the
other Möbius variable shapes:

* an **interval-of-time window** (``window=(start, end)``) restricts
  accumulation to the window (intersected with the run's
  ``[warmup, until]`` observation interval); the reward's ``duration`` is
  the effective window length, so ``time_average`` and ``rate`` stay
  consistent;
* **instant-of-time probes** (``probe_times=[...]`` on rate rewards)
  sample the reward value at fixed time points; results land in
  :attr:`RewardResult.instants`.
* a **declared read set** (``reads=[...]`` on rate rewards) names the
  places the function may read, letting the simulator build its per-slot
  observer lists at wiring time and skip tracked discovery entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from .patterns import path_match
from typing import Callable, Sequence

from .errors import ModelError
from .places import LocalView

__all__ = ["RateReward", "ImpulseReward", "RewardResult"]


def _validate_window(
    name: str, window: tuple[float, float] | None
) -> tuple[float, float] | None:
    if window is None:
        return None
    try:
        start, end = window
    except (TypeError, ValueError):
        raise ModelError(
            f"reward {name!r}: window must be a (start, end) pair, got {window!r}"
        ) from None
    start, end = float(start), float(end)
    if not 0.0 <= start < end:
        raise ModelError(
            f"reward {name!r}: window must satisfy 0 <= start < end, "
            f"got ({start}, {end})"
        )
    return (start, end)


class RateReward:
    """Time-integrated function of the marking.

    Parameters
    ----------
    name:
        Result key.
    function:
        ``f(global_view) -> float`` evaluated whenever a place it reads
        changes.  The simulator discovers the read set automatically
        unless ``reads`` declares it.
    reads:
        Optional declared read set: place paths (or globs) covering
        *every* place the function may ever read.  Declared rewards are
        wired into per-slot observer lists up front and evaluated without
        read tracking; the simulator verifies the initial evaluation
        against the declaration and raises on undeclared *name-addressed*
        reads (``m["path"]``).  Raw slot reads (``m.raw[slot]``) are
        invisible to that check, so a function using them must keep its
        declaration complete by construction — pin it with a test that
        compares against a tracked path-based twin (see
        ``tests/test_properties_rewards.py::test_cluster_measure_declarations_cover_tracked_reads``).
    window:
        Optional ``(start, end)`` interval-of-time window; accumulation
        is restricted to the window intersected with ``[warmup, until]``.
    probe_times:
        Optional instant-of-time sample points (hours, ``>= 0``); each
        run records ``(time, value)`` pairs in
        :attr:`RewardResult.instants`.  The recorded value is the left
        limit: the reward value just before any event at that instant.
    """

    kind = "rate"

    def __init__(
        self,
        name: str,
        function: Callable[[LocalView], float],
        *,
        reads: Sequence[str] | None = None,
        window: tuple[float, float] | None = None,
        probe_times: Sequence[float] | None = None,
    ) -> None:
        if not callable(function):
            raise ModelError(f"rate reward {name!r}: function must be callable")
        self.name = name
        self.function = function
        self.reads = None if reads is None else tuple(reads)
        if self.reads is not None and not self.reads:
            raise ModelError(f"rate reward {name!r}: reads must not be empty")
        self.window = _validate_window(name, window)
        if probe_times is None:
            self.probe_times = None
        else:
            times = tuple(sorted(float(t) for t in probe_times))
            if times and times[0] < 0.0:
                raise ModelError(
                    f"rate reward {name!r}: probe times must be >= 0, "
                    f"got {times[0]}"
                )
            self.probe_times = times or None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RateReward({self.name!r})"


class ImpulseReward:
    """Accumulates a value each time a matching activity completes.

    Parameters
    ----------
    name:
        Result key.
    activity_pattern:
        :mod:`fnmatch` glob over activity paths
        (``"*/tier[*]/replace_disk"``) or a predicate over the path.
    value:
        Constant increment, or ``f(global_view) -> float`` evaluated on the
        post-completion marking.
    window:
        Optional ``(start, end)`` interval-of-time window; completions are
        counted only inside the window (intersected with ``[warmup,
        until]``).
    """

    kind = "impulse"

    def __init__(
        self,
        name: str,
        activity_pattern: str | Callable[[str], bool],
        value: float | Callable[[LocalView], float] = 1.0,
        *,
        window: tuple[float, float] | None = None,
    ) -> None:
        self.name = name
        self.activity_pattern = activity_pattern
        self.value = value
        self.window = _validate_window(name, window)

    def matches(self, activity_path: str) -> bool:
        """True if this reward observes the given activity instance."""
        if callable(self.activity_pattern):
            return bool(self.activity_pattern(activity_path))
        return path_match(activity_path, self.activity_pattern)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ImpulseReward({self.name!r}, {self.activity_pattern!r})"


@dataclass
class RewardResult:
    """Accumulated outcome of one reward variable over one run.

    Attributes
    ----------
    name / kind:
        Identity of the reward.
    integral:
        For rate rewards: ``∫ value dt`` over the observation window.
    impulse_sum:
        For impulse rewards: sum of impulse values.
    count:
        For impulse rewards: number of matching completions.
    duration:
        Length of the observation window (after warm-up; for windowed
        rewards, the effective window length).
    instants:
        Instant-of-time samples, ``(time, value)`` pairs in time order
        (rate rewards with ``probe_times`` only).  Probes beyond an early
        stop are not recorded.
    """

    name: str
    kind: str
    integral: float = 0.0
    impulse_sum: float = 0.0
    count: int = 0
    duration: float = 0.0
    instants: list[tuple[float, float]] = field(default_factory=list)

    def instant(self, time: float) -> float:
        """Probed value at ``time`` (must be one of the probe times)."""
        for t, v in self.instants:
            if t == time:
                return v
        raise KeyError(
            f"reward {self.name!r}: no instant-of-time sample at t={time}; "
            f"recorded times: {[t for t, _ in self.instants]}"
        )

    @property
    def time_average(self) -> float:
        """Mean rate-reward value over the window (rate rewards)."""
        if self.duration <= 0.0:
            return 0.0
        return self.integral / self.duration

    @property
    def rate(self) -> float:
        """Impulses per hour over the window (impulse rewards)."""
        if self.duration <= 0.0:
            return 0.0
        return self.impulse_sum / self.duration

    @property
    def value(self) -> float:
        """The headline scalar: time average for rate, sum for impulse."""
        return self.time_average if self.kind == "rate" else self.impulse_sum

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "rate":
            return f"RewardResult({self.name!r}, time_average={self.time_average:.6g})"
        return (
            f"RewardResult({self.name!r}, sum={self.impulse_sum:.6g}, "
            f"count={self.count})"
        )
