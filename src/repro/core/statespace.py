"""Exhaustive state-space generation for all-exponential SANs.

For models whose timed activities are all exponentially distributed, the
underlying stochastic process is a continuous-time Markov chain.  This
module explores the reachable tangible markings, eliminates vanishing
markings (those with enabled instantaneous activities) by following the
zero-time firing chains, and emits the CTMC generator — enabling exact
numerical solutions against which the simulator is validated.

Restrictions (checked, with clear errors):

* every timed activity's distribution must be :class:`Exponential`
  (constant or marking-dependent, evaluated per state);
* gate and case functions must not draw random numbers — randomness is
  expressible only through case *probabilities*.  The explorer passes a
  guard object that raises if a gate function touches the RNG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .composition import FlatModel
from .distributions import Distribution, Exponential
from .errors import StateSpaceError
from .places import LocalView, MarkingVector
from .san import INSTANT, TIMED

__all__ = ["StateSpace", "explore", "ForbiddenRNG"]


class ForbiddenRNG:
    """Stand-in RNG that raises if a gate function tries to use it.

    State-space generation requires deterministic gate functions; random
    branching must be modeled with cases so that probabilities are explicit.
    """

    def __getattr__(self, name: str):  # pragma: no cover - trivial
        raise StateSpaceError(
            "gate/case functions must be deterministic for state-space "
            f"generation; attempted to call rng.{name}(). Model random "
            "outcomes with activity cases instead."
        )


@dataclass(frozen=True)
class Transition:
    """One CTMC transition: ``source --rate--> target``."""

    source: int
    target: int
    rate: float


class StateSpace:
    """The explored tangible state space of an all-exponential SAN.

    Attributes
    ----------
    model:
        The flattened model that was explored.
    states:
        Tangible markings, index-aligned with CTMC state numbering;
        ``states[0]`` is the initial (settled) marking.
    transitions:
        Aggregated CTMC transitions (self-loops removed).
    """

    def __init__(
        self,
        model: FlatModel,
        states: list[tuple[int, ...]],
        transitions: list[Transition],
    ) -> None:
        self.model = model
        self.states = states
        self.transitions = transitions

    @property
    def n_states(self) -> int:
        """Number of tangible states."""
        return len(self.states)

    def reward_vector(self, function: Callable[[LocalView], float]) -> list[float]:
        """Evaluate a rate-reward function in every tangible state."""
        vector = self.model.new_marking()
        view = self.model.global_view(vector)
        out: list[float] = []
        for state in self.states:
            vector.values[:] = list(state)
            out.append(float(function(view)))
        return out

    def to_ctmc(self):
        """Build a :class:`repro.markov.ctmc.CTMC` from the transitions."""
        from ..markov.ctmc import CTMC

        ctmc = CTMC(self.n_states)
        for tr in self.transitions:
            ctmc.add_rate(tr.source, tr.target, tr.rate)
        return ctmc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StateSpace(states={self.n_states}, transitions={len(self.transitions)})"


def _case_outcomes(definition, view, rng):
    """Yield (probability, case_function) pairs for an activity completion."""
    if not definition.cases:
        return [(1.0, None)]
    probs = [c.probability_in(view) for c in definition.cases]
    total = sum(probs)
    if abs(total - 1.0) > 1e-9:
        raise StateSpaceError(
            f"case probabilities sum to {total} during exploration"
        )
    return [(p, c.function) for p, c in zip(probs, definition.cases) if p > 0.0]


def explore(model: FlatModel, max_states: int = 200_000) -> StateSpace:
    """Explore the tangible reachable markings of an all-exponential model.

    Raises
    ------
    StateSpaceError
        If a timed activity is not exponential, a vanishing loop is found,
        or ``max_states`` is exceeded.
    """
    guard = ForbiddenRNG()
    vector = model.new_marking()
    views = [LocalView(vector, act.index) for act in model.activities]
    defs = [act.definition for act in model.activities]
    timed_ids = [a.ident for a in model.activities if a.definition.kind == TIMED]
    instant_ids = [a.ident for a in model.activities if a.definition.kind == INSTANT]

    def set_state(state: tuple[int, ...]) -> None:
        vector.values[:] = list(state)
        vector.changed.clear()

    def snapshot() -> tuple[int, ...]:
        return tuple(vector.values)

    def rate_of(aid: int) -> float:
        dist = defs[aid].distribution
        if callable(dist) and not isinstance(dist, Distribution):
            dist = dist(views[aid])
        if not isinstance(dist, Exponential):
            raise StateSpaceError(
                f"activity {model.activities[aid].path!r} is not exponential "
                f"({dist!r}); state-space generation requires exponential timing"
            )
        return dist.rate

    def apply_completion(aid: int, case_fn) -> None:
        view = views[aid]
        d = defs[aid]
        for ig in d.input_gates:
            ig.function(view, guard)
        if case_fn is not None:
            case_fn(view, guard)
        for og in d.output_gates:
            og.function(view, guard)

    def settle_vanishing(state: tuple[int, ...], depth: int = 0) -> list[tuple[float, tuple[int, ...]]]:
        """Resolve instantaneous firings; return (prob, tangible_state) list."""
        if depth > 10_000:
            raise StateSpaceError("vanishing-state chain exceeded 10000 firings")
        set_state(state)
        best: int | None = None
        best_key: tuple[int, int] | None = None
        for aid in instant_ids:
            set_state(state)
            if defs[aid].is_enabled(views[aid]):
                key = (-defs[aid].priority, aid)
                if best_key is None or key < best_key:
                    best_key = key
                    best = aid
        if best is None:
            return [(1.0, state)]
        set_state(state)
        outcomes = _case_outcomes(defs[best], views[best], guard)
        results: list[tuple[float, tuple[int, ...]]] = []
        for prob, case_fn in outcomes:
            set_state(state)
            apply_completion(best, case_fn)
            results.extend(
                (prob * p2, s2) for p2, s2 in settle_vanishing(snapshot(), depth + 1)
            )
        return results

    initial_outcomes = settle_vanishing(tuple(model.initial))
    if len(initial_outcomes) != 1:
        raise StateSpaceError(
            "the initial marking settles probabilistically; exploration "
            "requires a unique tangible initial state"
        )
    initial = initial_outcomes[0][1]

    index: dict[tuple[int, ...], int] = {initial: 0}
    states: list[tuple[int, ...]] = [initial]
    agg: dict[tuple[int, int], float] = {}
    frontier = [initial]

    while frontier:
        state = frontier.pop()
        sidx = index[state]
        for aid in timed_ids:
            set_state(state)
            if not defs[aid].is_enabled(views[aid]):
                continue
            set_state(state)
            rate = rate_of(aid)
            set_state(state)
            outcomes = _case_outcomes(defs[aid], views[aid], guard)
            for prob, case_fn in outcomes:
                set_state(state)
                apply_completion(aid, case_fn)
                for p2, tangible in settle_vanishing(snapshot()):
                    tidx = index.get(tangible)
                    if tidx is None:
                        if len(states) >= max_states:
                            raise StateSpaceError(
                                f"state space exceeds max_states={max_states}"
                            )
                        tidx = len(states)
                        index[tangible] = tidx
                        states.append(tangible)
                        frontier.append(tangible)
                    if tidx != sidx:
                        key = (sidx, tidx)
                        agg[key] = agg.get(key, 0.0) + rate * prob * p2

    transitions = [Transition(s, t, r) for (s, t), r in sorted(agg.items())]
    return StateSpace(model, states, transitions)
