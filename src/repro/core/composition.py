"""Replicate/join composition of SAN templates (the Möbius composed model).

The paper's Figure 1 is a replicate/join tree: ``CLUSTER`` joins ``CLIENT``
with ``CFS_UNIT``; ``CFS_UNIT`` joins ``OSS``, ``OSS_SAN_NW``, ``SAN`` and
``DDN_UNITS``; ``DDN_UNITS`` replicates RAID6 units and controllers.  This
module provides exactly those operators:

* :func:`leaf` wraps a :class:`~repro.core.san.SAN` template;
* :func:`join` composes children, **sharing state variables by name**
  (a shared place becomes one global slot written/read by all sharers);
* :func:`replicate` instantiates ``n`` copies of a subtree, sharing the
  listed places *across* the copies.

:func:`flatten` compiles a composition tree into a :class:`FlatModel`:
a dense marking vector, path-addressed places (``cfs/ddn[0]/tier[3]/up``),
and activity instances bound to their slots.  Flattening is pure — the
same tree can be flattened once and simulated many times.
"""

from __future__ import annotations

from dataclasses import dataclass
from .patterns import path_match
from typing import Iterable, Sequence

from .errors import CompositionError
from .places import LocalView, MarkingVector
from .san import SAN, ActivityDef

__all__ = [
    "Node",
    "LeafNode",
    "JoinNode",
    "ReplicateNode",
    "leaf",
    "join",
    "replicate",
    "flatten",
    "FlatActivity",
    "FlatModel",
]


def _join_path(prefix: str, name: str) -> str:
    return f"{prefix}/{name}" if prefix else name


class Node:
    """Base class for composition-tree nodes."""

    name: str

    def _flatten_into(self, ctx: "_FlattenContext", prefix: str) -> dict[str, int]:
        raise NotImplementedError


class LeafNode(Node):
    """A leaf of the composition tree holding one SAN template."""

    def __init__(self, san: SAN) -> None:
        san.validate()
        self.san = san
        self.name = san.name

    def _flatten_into(self, ctx: "_FlattenContext", prefix: str) -> dict[str, int]:
        exports: dict[str, int] = {}
        for pname, place in self.san.places.items():
            pid = ctx.new_place(_join_path(prefix, pname), place.initial)
            exports[pname] = pid
        index = dict(exports)
        for act in self.san.activities.values():
            ctx.new_activity(_join_path(prefix, act.name), act, index)
        return exports


class JoinNode(Node):
    """Composes children, unifying places that appear in ``shared``.

    Parameters
    ----------
    name:
        Node name (used in place paths).
    children:
        Sub-nodes; their names must be unique within the join.
    shared:
        Place names to unify across every child that exports them.  Each
        shared name must be exported by at least one child; sharing a name
        exported by a single child simply re-exports it (useful for hoisting
        a counter to the top of the tree).
    exports:
        Additional child-exported names to re-export unshared; each must be
        exported by exactly one child.
    """

    def __init__(
        self,
        name: str,
        children: Sequence[Node],
        shared: Iterable[str] = (),
        exports: Iterable[str] = (),
    ) -> None:
        if not children:
            raise CompositionError(f"join {name!r} requires at least one child")
        names = [c.name for c in children]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise CompositionError(
                f"join {name!r}: duplicate child names {sorted(dupes)}; "
                "wrap duplicates in replicate() or rename the SAN templates"
            )
        self.name = name
        self.children = list(children)
        self.shared = tuple(shared)
        self.extra_exports = tuple(exports)

    def _flatten_into(self, ctx: "_FlattenContext", prefix: str) -> dict[str, int]:
        child_exports: list[tuple[str, dict[str, int]]] = []
        for child in self.children:
            exp = child._flatten_into(ctx, _join_path(prefix, child.name))
            child_exports.append((child.name, exp))

        exports: dict[str, int] = {}
        for sname in self.shared:
            ids = [exp[sname] for _, exp in child_exports if sname in exp]
            if not ids:
                raise CompositionError(
                    f"join {self.name!r}: shared place {sname!r} is not "
                    "exported by any child"
                )
            rep = ids[0]
            for other in ids[1:]:
                ctx.union(rep, other)
            ctx.add_alias(_join_path(prefix, sname), rep)
            exports[sname] = rep

        for ename in self.extra_exports:
            owners = [
                (cname, exp[ename]) for cname, exp in child_exports if ename in exp
            ]
            if len(owners) != 1:
                raise CompositionError(
                    f"join {self.name!r}: export {ename!r} must be provided by "
                    f"exactly one child, found {len(owners)}"
                )
            if ename in exports:
                raise CompositionError(
                    f"join {self.name!r}: {ename!r} is both shared and exported"
                )
            exports[ename] = owners[0][1]
        return exports


class ReplicateNode(Node):
    """Instantiates ``n`` copies of a subtree, sharing the listed places.

    Copies are addressed ``<name>/<child.name>[i]`` in place paths.
    """

    def __init__(self, name: str, child: Node, n: int, shared: Iterable[str] = ()) -> None:
        if n < 1:
            raise CompositionError(f"replicate {name!r}: n must be >= 1, got {n}")
        self.name = name
        self.child = child
        self.n = int(n)
        self.shared = tuple(shared)

    def _flatten_into(self, ctx: "_FlattenContext", prefix: str) -> dict[str, int]:
        replica_exports: list[dict[str, int]] = []
        for i in range(self.n):
            rep_prefix = _join_path(prefix, f"{self.child.name}[{i}]")
            replica_exports.append(self.child._flatten_into(ctx, rep_prefix))

        exports: dict[str, int] = {}
        for sname in self.shared:
            missing = [i for i, exp in enumerate(replica_exports) if sname not in exp]
            if missing:
                raise CompositionError(
                    f"replicate {self.name!r}: shared place {sname!r} is not "
                    f"exported by replica(s) {missing[:3]}"
                )
            rep = replica_exports[0][sname]
            for exp in replica_exports[1:]:
                ctx.union(rep, exp[sname])
            ctx.add_alias(_join_path(prefix, sname), rep)
            exports[sname] = rep
        return exports


def leaf(san: SAN) -> LeafNode:
    """Wrap a SAN template as a composition-tree leaf."""
    return LeafNode(san)


def _as_node(obj: SAN | Node) -> Node:
    return leaf(obj) if isinstance(obj, SAN) else obj


def join(
    name: str,
    *children: SAN | Node,
    shared: Iterable[str] = (),
    exports: Iterable[str] = (),
) -> JoinNode:
    """Create a join node; bare SAN templates are wrapped automatically."""
    return JoinNode(name, [_as_node(c) for c in children], shared, exports)


def replicate(
    name: str, child: SAN | Node, n: int, shared: Iterable[str] = ()
) -> ReplicateNode:
    """Create a replicate node; a bare SAN template is wrapped automatically."""
    return ReplicateNode(name, _as_node(child), n, shared)


# ----------------------------------------------------------------------
# flattening
# ----------------------------------------------------------------------
@dataclass
class FlatActivity:
    """An activity instance in a flattened model.

    Attributes
    ----------
    path:
        Full path of this instance (``cfs/ddn[0]/tier[3]/disk[2]/fail``).
    definition:
        The template :class:`~repro.core.san.ActivityDef`.
    index:
        Local place name → global marking slot for this instance.
    ident:
        Dense activity id assigned by the flattener.
    """

    path: str
    definition: ActivityDef
    index: dict[str, int]
    ident: int = -1


class _FlattenContext:
    """Accumulates proto-places/activities plus the sharing union-find."""

    def __init__(self) -> None:
        self.parent: list[int] = []
        self.proto_paths: list[str] = []
        self.proto_initials: list[int] = []
        self.aliases: list[tuple[str, int]] = []
        self.activities: list[tuple[str, ActivityDef, dict[str, int]]] = []

    def new_place(self, path: str, initial: int) -> int:
        pid = len(self.parent)
        self.parent.append(pid)
        self.proto_paths.append(path)
        self.proto_initials.append(initial)
        self.aliases.append((path, pid))
        return pid

    def add_alias(self, path: str, pid: int) -> None:
        self.aliases.append((path, pid))

    def new_activity(self, path: str, definition: ActivityDef, index: dict[str, int]) -> None:
        self.activities.append((path, definition, index))

    def find(self, pid: int) -> int:
        root = pid
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[pid] != root:
            self.parent[pid], pid = root, self.parent[pid]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Keep the lower id as representative for deterministic layout.
            lo, hi = (ra, rb) if ra < rb else (rb, ra)
            self.parent[hi] = lo


class FlatModel:
    """A compiled, simulation-ready model.

    Attributes
    ----------
    name:
        Root node name.
    initial:
        Initial marking vector (one entry per place slot).
    paths:
        Every place path (including sharing aliases) → slot.
    canonical:
        One representative path per slot (the shallowest alias).
    activities:
        All activity instances with slot-resolved place indexes.
    """

    def __init__(
        self,
        name: str,
        initial: list[int],
        paths: dict[str, int],
        canonical: list[str],
        activities: list[FlatActivity],
    ) -> None:
        self.name = name
        self.initial = initial
        self.paths = paths
        self.canonical = canonical
        self.activities = activities
        for i, act in enumerate(activities):
            act.ident = i

    @property
    def n_places(self) -> int:
        """Number of marking slots."""
        return len(self.initial)

    def place_index(self, path: str) -> int:
        """Resolve a place path (or alias) to its marking slot."""
        try:
            return self.paths[path]
        except KeyError:
            candidates = [p for p in self.paths if p.endswith("/" + path) or p == path]
            hint = f"; close matches: {sorted(candidates)[:5]}" if candidates else ""
            raise CompositionError(f"unknown place path {path!r}{hint}") from None

    def match(self, pattern: str) -> dict[str, int]:
        """Glob-match place paths; returns canonical path → slot (deduped).

        Patterns use :mod:`fnmatch` syntax, e.g. ``"*/tier[*]/tier_down"``.
        """
        hits: dict[int, str] = {}
        for path, slot in self.paths.items():
            if path_match(path, pattern):
                hits.setdefault(slot, self.canonical[slot])
        return {cpath: slot for slot, cpath in sorted(hits.items())}

    def activities_matching(self, pattern: str) -> list[FlatActivity]:
        """Glob-match activity paths."""
        return [a for a in self.activities if path_match(a.path, pattern)]

    def new_marking(self) -> MarkingVector:
        """Allocate a marking vector initialized to the initial marking."""
        return MarkingVector(self.initial)

    def global_view(self, vector: MarkingVector) -> LocalView:
        """View addressing every place by full path (aliases included)."""
        return LocalView(vector, self.paths)

    def summary(self) -> str:
        """One-line structural summary."""
        n_timed = sum(1 for a in self.activities if a.definition.kind == "timed")
        return (
            f"FlatModel({self.name!r}: {self.n_places} places, "
            f"{n_timed} timed + {len(self.activities) - n_timed} instantaneous activities)"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.summary()


def flatten(root: SAN | Node) -> FlatModel:
    """Compile a composition tree (or bare SAN) into a :class:`FlatModel`."""
    root_node = _as_node(root)
    ctx = _FlattenContext()
    root_node._flatten_into(ctx, root_node.name)

    # Compact union classes into dense slots (representative order).
    slot_of_root: dict[int, int] = {}
    initial: list[int] = []
    canonical: list[str] = []
    for pid in range(len(ctx.parent)):
        r = ctx.find(pid)
        if r not in slot_of_root:
            slot_of_root[r] = len(initial)
            initial.append(ctx.proto_initials[r])
            canonical.append(ctx.proto_paths[r])
        if ctx.proto_initials[pid] != ctx.proto_initials[r]:
            raise CompositionError(
                f"shared place has conflicting initial markings: "
                f"{ctx.proto_paths[pid]!r}={ctx.proto_initials[pid]} vs "
                f"{ctx.proto_paths[r]!r}={ctx.proto_initials[r]}"
            )

    paths: dict[str, int] = {}
    for path, pid in ctx.aliases:
        slot = slot_of_root[ctx.find(pid)]
        if path in paths and paths[path] != slot:
            raise CompositionError(f"place path collision: {path!r}")
        paths[path] = slot
        # Prefer the shallowest alias as the canonical name for the slot.
        if path.count("/") < canonical[slot].count("/"):
            canonical[slot] = path

    activities = [
        FlatActivity(
            path=path,
            definition=definition,
            index={name: slot_of_root[ctx.find(pid)] for name, pid in index.items()},
        )
        for path, definition, index in ctx.activities
    ]
    act_paths = [a.path for a in activities]
    if len(set(act_paths)) != len(act_paths):  # pragma: no cover - defensive
        raise CompositionError("duplicate activity paths after flattening")

    return FlatModel(root_node.name, initial, paths, canonical, activities)
