"""Stochastic activity network substrate (the Möbius stand-in).

Public API:

* distributions: :class:`Exponential`, :class:`Weibull`, :class:`Deterministic`, ...
* model building: :class:`SAN`, :class:`InputGate`, :class:`OutputGate`, :class:`Case`
* composition: :func:`join`, :func:`replicate`, :func:`leaf`, :func:`flatten`
* execution: :class:`Simulator`, :class:`RateReward`, :class:`ImpulseReward`,
  :class:`BinaryTrace`, :class:`EventTrace`
* experiments: :func:`replicate_runs` (serial or ``n_jobs`` parallel),
  :class:`Estimate`, :class:`ReplicationSpec`
* resilience: :class:`RetryPolicy`, :class:`ChaosPolicy`,
  :func:`run_tasks_supervised` (worker-crash recovery, retry/backoff,
  timeouts, fault injection)
* exact solutions: :func:`explore` (state space → CTMC)
"""

from .batchmeans import BatchMeansResult, batch_means_from_steps, batch_means_from_trace
from .composition import (
    FlatActivity,
    FlatModel,
    JoinNode,
    LeafNode,
    Node,
    ReplicateNode,
    flatten,
    join,
    leaf,
    replicate,
)
from .distributions import (
    HOURS_PER_YEAR,
    Deterministic,
    Distribution,
    Empirical,
    EquilibriumResidual,
    Erlang,
    Exponential,
    Gamma,
    LogNormal,
    Shifted,
    Uniform,
    Weibull,
    afr_to_mtbf,
    mtbf_to_afr,
)
from .errors import (
    AnalysisError,
    ChaosError,
    CompositionError,
    DeclarationError,
    FitError,
    InstantaneousLoopError,
    ModelError,
    ParameterError,
    ParseError,
    ReproError,
    SanitizerError,
    SimulationBudgetError,
    SimulationError,
    StateSpaceError,
    TaskTimeoutError,
)
from .distributions import BatchedSampler
from .experiment import Estimate, ExperimentResult, build_metrics, replicate_runs
from .gates import Case, InputGate, OutputGate
from .parallel import ReplicationSetup, ReplicationSpec, resolve_n_jobs
from .resilience import (
    CellFailure,
    ChaosPolicy,
    RetryPolicy,
    TaskFailure,
    run_tasks_supervised,
)
from .places import LocalView, MarkingVector, Place
from .rewards import Affine, ImpulseReward, Indicator, RateReward, RewardResult
from .rng import SeedTree, derive_seed, make_generator
from .san import SAN, ActivityDef
from .sanitizer import (
    LintFinding,
    LintReport,
    SanitizerReport,
    SanitizerViolation,
    lint_model,
)
from .simulation import CompiledProgram, RunResult, Simulator
from .statespace import StateSpace, explore
from .stopping import (
    StoppingRule,
    batch_means,
    batch_means_half_width,
    batch_means_variance,
)
from .trace import BinaryTrace, EventTrace, Interval, TraceEvent

__all__ = [
    "BatchMeansResult",
    "batch_means_from_steps",
    "batch_means_from_trace",
    "HOURS_PER_YEAR",
    "Distribution",
    "Exponential",
    "Weibull",
    "Deterministic",
    "Uniform",
    "LogNormal",
    "Gamma",
    "Erlang",
    "Empirical",
    "Shifted",
    "EquilibriumResidual",
    "afr_to_mtbf",
    "mtbf_to_afr",
    "SAN",
    "ActivityDef",
    "Place",
    "MarkingVector",
    "LocalView",
    "InputGate",
    "OutputGate",
    "Case",
    "Node",
    "LeafNode",
    "JoinNode",
    "ReplicateNode",
    "leaf",
    "join",
    "replicate",
    "flatten",
    "FlatModel",
    "FlatActivity",
    "CompiledProgram",
    "Simulator",
    "RunResult",
    "RateReward",
    "ImpulseReward",
    "Affine",
    "Indicator",
    "RewardResult",
    "BinaryTrace",
    "EventTrace",
    "Interval",
    "TraceEvent",
    "Estimate",
    "ExperimentResult",
    "replicate_runs",
    "build_metrics",
    "StoppingRule",
    "batch_means",
    "batch_means_half_width",
    "batch_means_variance",
    "BatchedSampler",
    "ReplicationSetup",
    "ReplicationSpec",
    "resolve_n_jobs",
    "StateSpace",
    "explore",
    "SeedTree",
    "derive_seed",
    "make_generator",
    "ReproError",
    "ModelError",
    "CompositionError",
    "SimulationError",
    "SimulationBudgetError",
    "DeclarationError",
    "InstantaneousLoopError",
    "SanitizerError",
    "ChaosError",
    "TaskTimeoutError",
    "StateSpaceError",
    "AnalysisError",
    "ParseError",
    "FitError",
    "ParameterError",
    "RetryPolicy",
    "ChaosPolicy",
    "TaskFailure",
    "CellFailure",
    "run_tasks_supervised",
    "lint_model",
    "LintFinding",
    "LintReport",
    "SanitizerReport",
    "SanitizerViolation",
]
