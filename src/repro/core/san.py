"""Leaf stochastic activity network (SAN) definitions.

A :class:`SAN` is a reusable *template*: it defines places, timed and
instantaneous activities, and their gates.  Templates carry no runtime
state — the same ``SAN`` object can be replicated thousands of times by the
composition layer (:mod:`repro.core.composition`), exactly as Möbius reuses
an atomic model across a ``Rep`` node.

Example — a repairable component with exponential failures and
deterministic repair::

    san = SAN("component")
    san.place("up", 1)
    san.timed(
        "fail",
        distribution=Exponential(rate=1 / 720.0),
        enabled=lambda m: m["up"] == 1,
        effect=lambda m, rng: m.__setitem__("up", 0),
    )
    san.timed(
        "repair",
        distribution=Deterministic(24.0),
        enabled=lambda m: m["up"] == 0,
        effect=lambda m, rng: m.__setitem__("up", 1),
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from .distributions import Distribution
from .errors import ModelError
from .gates import Case, GateFunction, InputGate, OutputGate, Predicate, validate_cases
from .places import LocalView, Place

__all__ = ["SAN", "ActivityDef", "TIMED", "INSTANT", "DistributionSpec"]

TIMED = "timed"
INSTANT = "instantaneous"

# A timed activity's delay law may depend on the marking, mirroring
# Möbius' marking-dependent activity time distributions.
DistributionSpec = Distribution | Callable[[LocalView], Distribution]


@dataclass(frozen=True)
class ActivityDef:
    """Immutable definition of one activity inside a SAN template.

    Attributes
    ----------
    name:
        Activity name, unique within the SAN.
    kind:
        ``TIMED`` or ``INSTANT``.
    distribution:
        Delay law for timed activities (``None`` for instantaneous ones).
        May be a callable ``f(m) -> Distribution`` for marking-dependent
        timing; the callable is evaluated when the activity is activated.
    input_gates / output_gates / cases:
        SAN gate structure; see :mod:`repro.core.gates`.
    priority:
        Instantaneous activities fire in decreasing priority order
        (ties broken by definition order).
    reads:
        Optional declared dependency set: the local place names this
        activity's enabling predicates (and marking-dependent
        distribution, if any) may ever read.  ``None`` (default) keeps
        tracked discovery.  See :meth:`SAN.timed` for the contract.
    reactivate:
        If true, the activity resamples its completion time whenever a
        place it depends on changes while it remains enabled ("reactivation"
        in SAN terminology).  If false (default), the originally sampled
        completion time stands until it fires or the activity is disabled.
    """

    name: str
    kind: str
    distribution: DistributionSpec | None
    input_gates: tuple[InputGate, ...] = ()
    output_gates: tuple[OutputGate, ...] = ()
    cases: tuple[Case, ...] = ()
    priority: int = 0
    reads: tuple[str, ...] | None = None
    reactivate: bool = False

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ModelError(
                f"activity name must be non-empty and '/'-free: {self.name!r}"
            )
        if self.kind not in (TIMED, INSTANT):
            raise ModelError(f"activity {self.name!r}: unknown kind {self.kind!r}")
        if self.kind == TIMED:
            if self.distribution is None:
                raise ModelError(
                    f"timed activity {self.name!r} requires a distribution"
                )
            if not (isinstance(self.distribution, Distribution) or callable(self.distribution)):
                raise ModelError(
                    f"activity {self.name!r}: distribution must be a Distribution "
                    "or a callable returning one"
                )
        elif self.distribution is not None:
            raise ModelError(
                f"instantaneous activity {self.name!r} must not have a distribution"
            )
        if self.reads is not None:
            if not self.reads:
                raise ModelError(
                    f"activity {self.name!r}: reads must not be empty "
                    "(omit it to keep tracked discovery)"
                )
            for entry in self.reads:
                if not isinstance(entry, str) or not entry:
                    raise ModelError(
                        f"activity {self.name!r}: reads entries must be "
                        f"non-empty place names, got {entry!r}"
                    )
        validate_cases(self.cases, self.name)

    def is_enabled(self, m: LocalView) -> bool:
        """Evaluate the conjunction of input-gate predicates in ``m``."""
        for gate in self.input_gates:
            if not gate.predicate(m):
                return False
        return True


class SAN:
    """A leaf stochastic activity network template.

    Use :meth:`place`, :meth:`timed`, and :meth:`instant` to build the
    model, then compose with :func:`repro.core.composition.join` /
    :func:`repro.core.composition.replicate` and flatten for simulation.
    """

    def __init__(self, name: str) -> None:
        if not name or "/" in name:
            raise ModelError(f"SAN name must be non-empty and '/'-free: {name!r}")
        self.name = name
        self._places: dict[str, Place] = {}
        self._activities: dict[str, ActivityDef] = {}

    # ------------------------------------------------------------------
    # construction API
    # ------------------------------------------------------------------
    def place(self, name: str, initial: int = 0) -> Place:
        """Declare a place with an initial token count and return it."""
        if name in self._places:
            raise ModelError(f"SAN {self.name!r}: duplicate place {name!r}")
        p = Place(name, initial)
        self._places[name] = p
        return p

    def places_from(self, names: Iterable[str], initial: int = 0) -> None:
        """Declare several places sharing one initial marking."""
        for name in names:
            self.place(name, initial)

    def timed(
        self,
        name: str,        distribution: DistributionSpec,
        *,
        enabled: Predicate | None = None,
        effect: GateFunction | None = None,
        input_gates: Iterable[InputGate] = (),
        output_gates: Iterable[OutputGate] = (),
        cases: Iterable[Case] = (),
        reads: Iterable[str] | None = None,
        writes: Iterable[tuple[str, str, int]] | None = None,
        when: tuple[str, str, int] | None = None,
        reactivate: bool = False,
    ) -> ActivityDef:
        """Declare a timed activity.

        ``enabled`` and ``effect`` are conveniences that wrap a bare
        predicate/function into an input/output gate; they combine with any
        explicitly supplied gates (convenience gates run first).

        ``writes`` optionally declares ``effect``'s marking writes as a
        fixed op sequence (``("place", "add", k)`` / ``("place", "set",
        v)``), letting the compiled engine apply them as precomputed
        slot deltas instead of calling the Python function — see
        :class:`~repro.core.gates.OutputGate`.  It requires ``effect``
        (annotate explicit gates by constructing
        ``OutputGate(fn, writes=[...])`` directly).  ``when`` optionally
        guards the declared writes with a ``(place, cmp, value)``
        condition for conditional effects ("write exactly this iff the
        guard holds, nothing otherwise"); it requires ``writes``.

        ``reads`` optionally declares the dependency set: the local place
        names that the enabling predicates — and, for marking-dependent
        distributions, the distribution callable — may *ever* read, in any
        marking.  Declared activities are wired into the simulator's
        slot → activity dependency map at compile time and their
        predicates are evaluated **without read tracking** on the
        compiled fast path (the activity analogue of
        ``RateReward(..., reads=[...])``).  The simulator verifies the
        initial evaluation against the declaration and raises on
        undeclared reads; reads that only happen in later markings
        (short-circuit predicates) cannot be caught that way, so the
        declaration must be kept complete by construction.  For
        ``reactivate=True`` activities the declared set *defines* which
        place writes trigger resampling, replacing discovery-order
        semantics.
        """
        igs = tuple(
            ([InputGate(enabled, name=f"{name}.enabled")] if enabled is not None else [])
            + list(input_gates)
        )
        ogs = tuple(
            self._effect_gates(name, effect, writes, when) + list(output_gates)
        )
        act = ActivityDef(
            name=name,
            kind=TIMED,
            distribution=distribution,
            input_gates=igs,
            output_gates=ogs,
            cases=tuple(cases),
            reads=None if reads is None else tuple(reads),
            reactivate=reactivate,
        )
        self._add_activity(act)
        return act

    def _effect_gates(
        self,
        name: str,
        effect: GateFunction | None,
        writes: Iterable[tuple[str, str, int]] | None,
        when: tuple[str, str, int] | None = None,
    ) -> list[OutputGate]:
        """Wrap the ``effect`` convenience into its output gate."""
        if effect is None:
            if writes is not None:
                raise ModelError(
                    f"SAN {self.name!r}: activity {name!r} declares writes "
                    "without an effect function"
                )
            if when is not None:
                raise ModelError(
                    f"SAN {self.name!r}: activity {name!r} declares a write "
                    "guard without an effect function"
                )
            return []
        return [
            OutputGate(
                effect,
                name=f"{name}.effect",
                writes=None if writes is None else tuple(writes),
                when=when,
            )
        ]

    def instant(
        self,
        name: str,
        *,
        enabled: Predicate | None = None,
        effect: GateFunction | None = None,
        input_gates: Iterable[InputGate] = (),
        output_gates: Iterable[OutputGate] = (),
        cases: Iterable[Case] = (),
        reads: Iterable[str] | None = None,
        writes: Iterable[tuple[str, str, int]] | None = None,
        when: tuple[str, str, int] | None = None,
        priority: int = 0,
    ) -> ActivityDef:
        """Declare an instantaneous (zero-delay) activity.

        ``reads`` declares the enabling predicates' dependency set and
        ``writes`` the effect's marking writes (optionally guarded by
        ``when``), with the same contracts as :meth:`timed`.
        """
        igs = tuple(
            ([InputGate(enabled, name=f"{name}.enabled")] if enabled is not None else [])
            + list(input_gates)
        )
        ogs = tuple(
            self._effect_gates(name, effect, writes, when) + list(output_gates)
        )
        act = ActivityDef(
            name=name,
            kind=INSTANT,
            distribution=None,
            input_gates=igs,
            output_gates=ogs,
            cases=tuple(cases),
            reads=None if reads is None else tuple(reads),
            priority=priority,
        )
        self._add_activity(act)
        return act

    def _add_activity(self, act: ActivityDef) -> None:
        if act.name in self._activities:
            raise ModelError(f"SAN {self.name!r}: duplicate activity {act.name!r}")
        if not act.input_gates:
            raise ModelError(
                f"SAN {self.name!r}: activity {act.name!r} has no enabling "
                "predicate; pass enabled=... or input_gates=[...]"
            )
        self._activities[act.name] = act

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def places(self) -> Mapping[str, Place]:
        """Declared places by name."""
        return dict(self._places)

    @property
    def activities(self) -> Mapping[str, ActivityDef]:
        """Declared activities by name."""
        return dict(self._activities)

    def validate(self) -> None:
        """Check template-level consistency (non-empty, named uniquely)."""
        if not self._places:
            raise ModelError(f"SAN {self.name!r} declares no places")
        if not self._activities:
            raise ModelError(f"SAN {self.name!r} declares no activities")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SAN({self.name!r}, places={len(self._places)}, "
            f"activities={len(self._activities)})"
        )
