"""Discrete-event simulator for flattened stochastic activity networks.

The engine executes the standard SAN semantics:

* a timed activity is *activated* when its input-gate predicates become
  true: its delay is sampled and a completion event is scheduled;
* if the activity becomes disabled before completing, the event is
  cancelled (lazy cancellation via activation tokens);
* on completion the input-gate functions run, a case is selected, and the
  output-gate functions run;
* instantaneous activities fire, highest priority first, until none is
  enabled, before simulated time advances again.

Enabling checks are *incremental*: the simulator learns which marking slots
each predicate reads (the views track reads) and re-evaluates an activity
only when one of those slots changes.  This makes large replicated models
(the 4800-disk petascale fleet) cheap to simulate: an event touches a few
places and therefore re-evaluates a few activities, independent of model
size.  Activities may also *declare* their dependency set up front
(``SAN.timed(..., reads=[...])``, the activity analogue of
``RateReward(..., reads=[...])``): declared activities are wired into the
slot → activity dependency map at compile time, their predicates and
marking-dependent distribution callables run with read tracking skipped,
and the initial evaluation is verified against the declaration.

Hot-path design (see ``docs/performance.md`` for measurements):

* the model is *compiled* once per simulator: enabling predicates, gate
  functions, case tables and delay samplers are pre-resolved into flat
  per-activity arrays, and the slot → activity dependency map is a flat
  list-of-lists indexed by slot;
* per-event bookkeeping uses epoch-stamped integer scratch buffers and a
  reusable dirty list instead of freshly allocated sets; dirty activities
  settle in ascending activity-id order (the canonical deterministic
  order, which reproduces the pre-compiled engine's trajectories
  bit-for-bit — pinned by ``tests/test_engine_golden.py``);
* the initially enabled activity set is pre-computed at compile time
  (the initial marking never varies across runs), and each event's newest
  activation is merged into the pending-event heap with a single
  ``heappushpop`` sift;
* delay draws are served from vectorized per-distribution blocks
  (see :class:`~repro.core.distributions.BatchedSampler`) by default;
  any law advertising ``batchable`` (a single vectorized
  ``sample_many``, stream-equivalent to per-draw sampling) is eligible,
  including :class:`~repro.core.distributions.EquilibriumResidual`,
  whose block is one ``np.interp`` over its cached quantile grid.  Pass
  ``sample_batch=None`` for per-draw sampling, which consumes the RNG
  stream exactly like the pre-optimization engine;
  ``batch_dynamic=True`` extends block serving to the distributions
  returned by marking-dependent distribution callables (off by default
  because it changes the default-mode stream consumption);
* activities whose complete firing effect is *declared*
  (``OutputGate(..., writes=[...])`` / ``SAN.timed(..., effect=...,
  writes=[...])`` — no input-gate functions, no cases, every output
  gate declared) are compiled into **gate-write kernels**: the inlined
  loops apply the precomputed slot deltas (and mark the dependent
  activities/observers of each written slot directly) instead of
  calling the Python gate functions through ``LocalView``.  The
  declaration is verified against the gate functions on the activity's
  first completion each run; kernels are bit-identical to the function
  path in both sampling modes (pinned by the goldens and the
  ``engine="reference"`` differential, which never uses kernels);
* *case-bearing* activities whose every case declares its writes
  (``Case(..., writes=[...])``, constant probabilities, no other
  Python gate functions) are compiled into **case kernels**: the loops
  select a branch with the same single uniform the function path
  consumes — identical left-to-right partial-sum thresholds — and
  apply that branch's precomputed slot deltas.  Conditional effects of
  the one declared shape (``OutputGate(..., writes=[...],
  when=(place, cmp, value))``) compile into two-branch **guard
  kernels** selected by the marking instead of a uniform.  Every
  branch is verified against its Python function on its first
  selection (same undeclared-write / rng-use checks as gate-write
  kernels), so the cluster models' propagation coins (disk/member
  ``fail``, ``absorb_kill``) and the conditional tier ``restore`` run
  with zero Python-effect activities (see ``fastpath_report``).

The compile artifacts live in a :class:`CompiledProgram` — immutable
model structure (tables, dependency maps, kernels, sampler plans) plus
the per-run mutable state (marking vector, discovered-dependency
journal, one-shot verification flags), reset in O(marking) at the start
of every run.  A program can be built once and shared by many
simulators (``Simulator(program)`` or ``Simulator(model,
program=...)``), which is what lets replicate-many and sweep workloads
compile once per process and reuse the program across replications and
cells — bit-identical to fresh construction, because a run's trajectory
is a pure function of (model, stream).

Reward variables (:mod:`repro.core.rewards`) and traces
(:mod:`repro.core.trace`) are observed with the same dependency machinery,
and reward-bearing models run a *specialized observed fast loop* rather
than a generic slow path:

* rate rewards and binary traces are wired into flat per-slot observer
  lists (the same list-of-lists shape as the activity dependency map;
  pre-populated at wiring time for rewards with declared ``reads``, grown
  by tracked discovery otherwise);
* an event marks the observers of its written slots in epoch-stamped
  "touched" buffers and re-evaluates only those — integration, impulse
  accumulation, window clipping and instant-of-time probes are all inline
  checks in the loop;
* instantaneous activities and stop predicates are also inline checks
  (an enabled-instant set / one predicate call per event), so the paper's
  cluster models — instants, rate and impulse rewards attached — stay on
  the compiled fast path.  Only genuinely observer-free *and* probe-free
  models run the plain loop that skips every check.

``Simulator(..., engine="reference")`` forces the un-specialized
general event loop for every model.  It is the differential-testing
oracle: ``tests/test_properties_rewards.py`` asserts the specialized
loops reproduce it bit-for-bit on random reward-bearing models, and
``tests/data/reward_golden.json`` pins it against fixtures recorded
before the specialization existed.
"""

from __future__ import annotations

import heapq
import math
import operator
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .composition import FlatModel
from .distributions import (
    BatchedSampler,
    Deterministic,
    Distribution,
    Exponential,
)
from .errors import (
    DeclarationError,
    InstantaneousLoopError,
    SimulationBudgetError,
    SimulationError,
)
from .gates import _noop
from .places import FrozenView, LocalView
from .rewards import ImpulseReward, RateReward, RewardResult
from .rng import make_generator
from .san import INSTANT, TIMED
from .trace import BinaryTrace, EventTrace

__all__ = ["CompiledProgram", "Simulator", "RunResult"]

#: Default block size for batched delay draws.
DEFAULT_SAMPLE_BATCH = 256

#: Sentinel distinguishing "argument not passed" from an explicit value
#: when a Simulator adopts an existing CompiledProgram.
_UNSET = object()

#: Compiled comparison functions for declared write guards
#: (``OutputGate(..., when=(place, cmp, value))``).
_GUARD_FNS = {
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
    ">=": operator.ge,
    ">": operator.gt,
}


class _RngGuard:
    """Placeholder rng for gate-write kernel verification.

    A gate function with declared writes must be a pure, deterministic
    marking transformation; any rng use would make the kernel (which
    never touches the rng) diverge from the function path, so touching
    this object raises instead.
    """

    __slots__ = ()

    def __getattr__(self, name: str):
        raise SimulationError(
            "output gate with declared writes must not use the rng "
            f"(attempted rng.{name})"
        )


_RNG_GUARD = _RngGuard()


@dataclass
class RunResult:
    """Outcome of one simulation run.

    Index with the reward name: ``result["cfs_availability"].time_average``.
    """

    final_time: float
    duration: float
    n_events: int
    rewards: dict[str, RewardResult]
    traces: dict[str, BinaryTrace | EventTrace]
    stopped_early: bool
    sanitizer_report: "SanitizerReport | None" = None
    _final_values: list[int] = field(default_factory=list, repr=False)
    _paths: dict[str, int] = field(default_factory=dict, repr=False)

    def __getitem__(self, name: str) -> RewardResult:
        try:
            return self.rewards[name]
        except KeyError:
            raise KeyError(
                f"unknown reward {name!r}; available: {sorted(self.rewards)}"
            ) from None

    def place(self, path: str) -> int:
        """Final marking of a place (by path or alias)."""
        try:
            return self._final_values[self._paths[path]]
        except KeyError:
            raise KeyError(f"unknown place path {path!r}") from None

    @property
    def final_marking(self) -> list[int]:
        """Copy of the final marking vector, in slot order.

        For a run that ``stopped_early`` this is the marking at the stop
        instant; feed it back through ``Simulator.run(...,
        initial_marking=...)`` to continue the trajectory from that
        state (exact for memoryless models — the basis of the restart
        segments in :mod:`repro.experiments.rare`).
        """
        return list(self._final_values)

    def trace(self, name: str) -> BinaryTrace | EventTrace:
        """Recorded trace by name."""
        try:
            return self.traces[name]
        except KeyError:
            raise KeyError(
                f"unknown trace {name!r}; available: {sorted(self.traces)}"
            ) from None


class _Compiled:
    """Per-activity tables pre-resolved against the shared marking vector.

    Built once per simulator and reused by every run: the model structure
    is immutable, so predicates, gate functions, case tables and samplers
    never change — only the marking does.
    """

    __slots__ = (
        "vector",
        "views",
        "pviews",
        "gview",
        "preds",
        "ig_fns",
        "og_fns",
        "case_tab",
        "plain1",
        "kernels",
        "case_kern",
        "samplers",
        "samp_kind",
        "dyn_dists",
        "is_timed",
        "declared",
        "memo_slot",
        "reactivate",
        "paths",
        "batched",
        "init_timed",
        "init_instants",
    )


def _compose_predicates(gates) -> Callable[[LocalView], bool]:
    preds = tuple(g.predicate for g in gates)

    def composed(m, _preds=preds):
        for p in _preds:
            if not p(m):
                return False
        return True

    return composed


def _make_const_sampler(value: float) -> Callable:
    def sample(rng, _v=value):
        return _v

    return sample


def _make_exponential_sampler(dist: Exponential) -> Callable:
    scale = 1.0 / dist.rate

    def sample(rng, _scale=scale):
        return float(rng.exponential(_scale))

    return sample


def _make_checked_sampler(dist: Distribution, path: str) -> Callable:
    """Per-draw sampling through ``dist.sample`` with delay validation.

    Builtin-law fast samplers cannot produce invalid delays (parameters
    are validated at construction), so only this generic path checks.
    """

    inner = dist.sample

    def sample(rng):
        delay = inner(rng)
        if not delay >= 0.0:  # also catches NaN
            raise SimulationError(
                f"activity {path!r} sampled invalid delay {delay!r}"
            )
        return delay

    return sample


class CompiledProgram:
    """Compiled, reusable form of a model plus its sampling configuration.

    The program owns everything :meth:`Simulator.run` needs that is *not*
    per-run: the compiled per-activity tables (:class:`_Compiled`), the
    slot → activity dependency map, the gate-write / case kernels and
    sampler plans, plus the trajectory-neutral warm state (one-shot
    declaration-verification flags, predicate memos, pattern caches).
    Per-run mutable state — the marking vector, batched-sampler blocks
    and post-compile dependency discoveries — is rolled back in
    O(marking) at the start of every run, so a run's trajectory is a
    pure function of (model, stream) no matter how many runs the
    program served before.

    Build one per process and hand it to any number of simulators
    (``Simulator(program)``), sequentially: the program is bound to one
    marking vector, so at most one run may be in flight across all
    simulators sharing it.  This is the compile-once/replicate-many
    contract used by :func:`repro.core.experiment.replicate_runs`
    workers and :mod:`repro.experiments.sweep` cells (see
    ``docs/performance.md`` Layer 6).

    Parameters
    ----------
    model:
        Flattened model to compile.
    sample_batch / batch_dynamic:
        Sampling configuration; see :class:`Simulator`.  They live on
        the program because the compiled sampler plans depend on them.
    """

    def __init__(
        self,
        model: FlatModel,
        sample_batch: int | None = DEFAULT_SAMPLE_BATCH,
        batch_dynamic: bool = False,
    ) -> None:
        self.model = model
        self.sample_batch = None if sample_batch is None else int(sample_batch)
        if self.sample_batch is not None and self.sample_batch < 1:
            raise SimulationError(
                f"sample_batch must be >= 1 or None, got {sample_batch}"
            )
        self.batch_dynamic = bool(batch_dynamic)

        acts = model.activities
        self._n_acts = len(acts)
        self._timed_ids = [a.ident for a in acts if a.definition.kind == TIMED]
        self._instant_ids = [a.ident for a in acts if a.definition.kind == INSTANT]
        self._priorities = [a.definition.priority for a in acts]
        # place slot -> activity ids whose enabling may depend on it
        # (flat list-of-lists; each inner list is deduplicated because ids
        # are appended only when first discovered via _act_deps).
        self._dep_lists: list[list[int]] = [[] for _ in range(model.n_places)]
        self._act_deps: list[set[int]] = [set() for _ in range(self._n_acts)]
        # (aid, slot) dependencies discovered after compile time.  They
        # are rolled back at the start of the next run so that every run
        # starts from the same (compile-time) dependency state: a run's
        # trajectory is then a pure function of (model, stream), never of
        # how many runs warmed this simulator before it.  Without this,
        # reactivate=True activities — which resample whenever a dirty
        # wake-up finds them enabled — could fire off extra draws on
        # warm simulators only, breaking serial/parallel bit-equality.
        self._dep_journal: list[tuple[int, int]] = []
        # cache: impulse/trace pattern -> matching activity ids.  String
        # patterns are keyed by value; callable patterns by object identity
        # (the stored strong reference keeps id() values from being
        # recycled and guards against hash collisions after collection).
        self._pattern_cache: dict[str, list[int]] = {}
        self._callable_pattern_cache: dict[int, tuple[object, list[int]]] = {}
        self._compiled: _Compiled | None = None
        # One-shot declaration checks, persistent across runs: a verified
        # evaluation is bit-identical to an unverified one (verification
        # only *observes* — the gate functions / distribution callables
        # run exactly as they otherwise would, and tracking never touches
        # values or the rng), so warm and fresh simulators follow the
        # same trajectories whether or not verification already happened.
        self._kern_verified = [False] * self._n_acts
        self._dyn_verified = [False] * self._n_acts
        # Per-branch verification flags for case/guard kernels (None when
        # the activity compiled no case kernel): flags[i] marks branch i
        # verified.  Same persistence contract as _kern_verified.
        self._case_verified: list[list[bool] | None] = [None] * self._n_acts
        # Enabling memo for declared single-read activities: the declared
        # contract makes such a predicate a pure function of one slot's
        # value, so its results are cached per value and the hot loops
        # skip the Python call entirely once a value has been seen.
        # Persistent across runs (pure function ⇒ value-transparent).
        self._pred_memo: list[dict | None] = [None] * self._n_acts

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _reset_discovered_deps(self) -> None:
        """Roll dependency state back to the compile-time baseline.

        Post-compile discoveries only ever append, so removal restores
        the exact baseline; the sets mutate in place because each
        activity's view holds a direct reference to its known-set.
        """
        for aid, slot in self._dep_journal:
            self._act_deps[aid].discard(slot)
            self._dep_lists[slot].remove(aid)
        self._dep_journal.clear()

    def _matching_ids(self, pattern: str | Callable[[str], bool]) -> list[int]:
        if callable(pattern):
            entry = self._callable_pattern_cache.get(id(pattern))
            if entry is not None and entry[0] is pattern:
                return entry[1]
            ids = [a.ident for a in self.model.activities if pattern(a.path)]
            if len(self._callable_pattern_cache) >= 256:
                # Callers constructing a fresh callable per run would
                # otherwise grow the cache (and pin the callables) forever.
                self._callable_pattern_cache.clear()
            self._callable_pattern_cache[id(pattern)] = (pattern, ids)
            return ids
        cached = self._pattern_cache.get(pattern)
        if cached is None:
            from .patterns import path_match

            cached = [
                a.ident
                for a in self.model.activities
                if path_match(a.path, pattern)
            ]
            self._pattern_cache[pattern] = cached
        return cached

    def _compile(self) -> _Compiled:
        """Pre-resolve every activity against the shared marking vector."""
        model = self.model
        c = _Compiled()
        c.vector = model.new_marking()
        # Each activity's view filters read tracking through its known
        # dependency set: converged activities record nothing.
        c.views = [
            LocalView(c.vector, act.index, self._act_deps[act.ident])
            for act in model.activities
        ]
        # Predicate views: declared activities evaluate through a
        # FrozenView (no read tracking, no toggles needed around the
        # call); the rest share the tracked view.  Filled after the
        # declaration pass below.
        c.pviews = list(c.views)
        c.gview = model.global_view(c.vector)
        c.paths = [act.path for act in model.activities]
        c.batched = []

        n = self._n_acts
        c.preds = [None] * n
        c.ig_fns = [()] * n
        c.og_fns = [()] * n
        # case_tab[aid]: None (no cases), (bounds, None) for static
        # probabilities, or (None, cases) for marking-dependent ones.
        c.case_tab = [None] * n
        # plain1[aid]: the single output-gate function when the activity
        # has no input-gate functions, no cases, and exactly one output
        # gate — the dominant shape; lets the hot loop fire it with one
        # load and one call.
        c.plain1 = [None] * n
        # kernels[aid]: the activity's complete firing effect as a tuple
        # of precomputed slot ops (slot, is_add, amount, dep_list) when
        # every output gate declares its writes and there is nothing else
        # to run (no input-gate functions, no cases).  dep_list is the
        # slot's inner list of the dependency map (stable identity: it is
        # only ever mutated in place), so the inlined loops mark
        # dependents without re-indexing.
        c.kernels = [None] * n
        # case_kern[aid]: compiled branch-selecting kernel — (bounds,
        # guard, branch_ops, branch_fns, branch_labels).  Probabilistic
        # mode (bounds: cumulative case thresholds, identical to the
        # case_tab partial sums; guard None) selects a branch with one
        # uniform; guard mode (bounds None; guard (slot, cmp_fn, value))
        # selects branch 0/1 from the completion marking.  branch_ops[i]
        # is the branch's precomputed slot-op tuple, branch_fns[i] the
        # Python functions it is verified against on first selection.
        c.case_kern = [None] * n
        c.samplers = [None] * n
        # samp_kind[aid]: how the delay draw is served ("const",
        # "batched", "scalar", "dynamic"; None for instants) — compile
        # metadata for fastpath_report, never read by the event loops.
        c.samp_kind = [None] * n
        c.dyn_dists = [None] * n
        c.is_timed = [False] * n
        c.declared = [False] * n
        # memo_slot[aid]: the single declared read slot when the
        # activity's enabling is a pure function of one place (memoized
        # per value through self._pred_memo); -1 otherwise.
        c.memo_slot = [-1] * n
        c.reactivate = [False] * n

        act_deps = self._act_deps
        dep_lists = self._dep_lists
        batched_by_dist: dict[int, BatchedSampler] = {}
        for act in model.activities:
            aid = act.ident
            d = act.definition
            c.is_timed[aid] = d.kind == TIMED
            c.reactivate[aid] = d.reactivate

            if d.reads is not None:
                # Declared dependency set (the activity analogue of
                # RateReward reads): resolve local names to slots and wire
                # them into the dependency map as compile-time baseline —
                # NOT journaled, so it survives the per-run rollback.  The
                # activity's predicates then run without read tracking.
                known = act_deps[aid]
                for pname in d.reads:
                    slot = act.index.get(pname)
                    if slot is None:
                        raise SimulationError(
                            f"activity {act.path!r}: declared read "
                            f"{pname!r} is not a place of its SAN; "
                            f"visible places: {sorted(act.index)}"
                        )
                    if slot not in known:
                        known.add(slot)
                        dep_lists[slot].append(aid)
                c.declared[aid] = True
                c.pviews[aid] = FrozenView(c.vector, act.index, known)
                if len(known) == 1:
                    c.memo_slot[aid] = next(iter(known))
                    self._pred_memo[aid] = {}

            gates = d.input_gates
            c.preds[aid] = (
                gates[0].predicate if len(gates) == 1 else _compose_predicates(gates)
            )
            c.ig_fns[aid] = tuple(
                g.function for g in gates if g.function is not _noop
            )
            c.og_fns[aid] = tuple(og.function for og in d.output_gates)
            if not c.ig_fns[aid] and not d.cases and len(c.og_fns[aid]) == 1:
                c.plain1[aid] = c.og_fns[aid][0]
            def _ops_for(writes, _act=act):
                """Resolve a declared-writes tuple into compiled slot ops."""
                ops = []
                for pname, kind, amount in writes:
                    slot = _act.index.get(pname)
                    if slot is None:
                        raise SimulationError(
                            f"activity {_act.path!r}: declared write "
                            f"{pname!r} is not a place of its SAN; "
                            f"visible places: {sorted(_act.index)}"
                        )
                    ops.append((slot, kind == "add", amount, dep_lists[slot]))
                return tuple(ops)

            if (
                not c.ig_fns[aid]
                and not d.cases
                and d.output_gates
                and all(
                    og.writes is not None and og.when is None
                    for og in d.output_gates
                )
            ):
                c.kernels[aid] = tuple(
                    op for og in d.output_gates for op in _ops_for(og.writes)
                )
            elif (
                not c.ig_fns[aid]
                and not d.cases
                and len(d.output_gates) == 1
                and d.output_gates[0].writes is not None
                and d.output_gates[0].when is not None
            ):
                # Guard kernel: one declared conditional effect.  Branch 0
                # = guard holds (declared ops), branch 1 = it does not (no
                # writes); both run the same function at verification.
                og = d.output_gates[0]
                pname, cmp, gval = og.when
                slot = act.index.get(pname)
                if slot is None:
                    raise SimulationError(
                        f"activity {act.path!r}: write guard place "
                        f"{pname!r} is not a place of its SAN; "
                        f"visible places: {sorted(act.index)}"
                    )
                c.case_kern[aid] = (
                    None,
                    (slot, _GUARD_FNS[cmp], gval),
                    (_ops_for(og.writes), ()),
                    (c.og_fns[aid], c.og_fns[aid]),
                    (
                        f"guarded writes ({pname} {cmp} {gval} holds)",
                        f"guarded writes ({pname} {cmp} {gval} fails)",
                    ),
                )
                self._case_verified[aid] = [False, False]

            if d.cases:
                if any(callable(case.probability) for case in d.cases):
                    c.case_tab[aid] = (None, d.cases)
                else:
                    # Left-to-right partial sums, exactly as the firing-time
                    # accumulation computes them, so the selection
                    # thresholds are bit-identical to per-firing evaluation.
                    acc = 0.0
                    for case in d.cases:
                        acc += float(case.probability)
                    if not (abs(acc - 1.0) <= 1e-9):
                        raise SimulationError(
                            f"activity {act.path!r}: case probabilities "
                            f"sum to {acc}"
                        )
                    acc = 0.0
                    bounds: list[tuple[float, Callable]] = []
                    for case in d.cases:
                        acc += float(case.probability)
                        bounds.append((acc, case.function))
                    c.case_tab[aid] = (tuple(bounds), None)
                    if (
                        not c.ig_fns[aid]
                        and all(case.writes is not None for case in d.cases)
                        and all(
                            og.writes is not None and og.when is None
                            for og in d.output_gates
                        )
                    ):
                        # Case kernel: branch thresholds are exactly the
                        # case_tab partial sums, so compiled selection is
                        # bit-identical to per-firing accumulation; each
                        # branch's ops are its case writes followed by
                        # every output gate's (output gates run after the
                        # case function on the Python path).
                        og_ops = tuple(
                            op
                            for og in d.output_gates
                            for op in _ops_for(og.writes)
                        )
                        og_fns_v = c.og_fns[aid]
                        c.case_kern[aid] = (
                            tuple(acc for acc, _fn in bounds),
                            None,
                            tuple(
                                _ops_for(case.writes) + og_ops
                                for case in d.cases
                            ),
                            tuple(
                                (case.function,) + og_fns_v
                                for case in d.cases
                            ),
                            tuple(
                                f"case {case.name or i}"
                                for i, case in enumerate(d.cases)
                            ),
                        )
                        self._case_verified[aid] = [False] * len(d.cases)

            if d.kind == TIMED:
                dist = d.distribution
                # Exact-type fast lanes for const/exponential; block
                # serving for any law that advertises a vectorized,
                # stream-equivalent sample_many (Distribution.batchable —
                # a subclass overriding sample/sample_many owns the flag).
                if type(dist) is Deterministic:
                    c.samplers[aid] = _make_const_sampler(dist.value)
                    c.samp_kind[aid] = "const"
                elif isinstance(dist, Distribution):
                    if self.sample_batch is not None and dist.batchable:
                        sampler = batched_by_dist.get(id(dist))
                        if sampler is None:
                            sampler = BatchedSampler(dist, self.sample_batch)
                            batched_by_dist[id(dist)] = sampler
                            c.batched.append(sampler.reset)
                        c.samplers[aid] = sampler.sample
                        c.samp_kind[aid] = "batched"
                    elif type(dist) is Exponential:
                        c.samplers[aid] = _make_exponential_sampler(dist)
                        c.samp_kind[aid] = "scalar"
                    else:
                        c.samplers[aid] = _make_checked_sampler(dist, act.path)
                        c.samp_kind[aid] = "scalar"
                else:
                    c.dyn_dists[aid] = dist
                    c.samp_kind[aid] = "dynamic"

        # Pre-evaluate every enabling predicate on the initial marking:
        # the initial marking is identical for every run, so the set of
        # initially enabled activities (and their discovered read
        # dependencies) can be computed once.  Predicates must be pure
        # functions of the marking (SAN semantics).
        vec = c.vector
        c.init_timed = []
        c.init_instants = []
        for act in model.activities:
            aid = act.ident
            vec.tracking = True
            vec.reads.clear()
            try:
                en = c.preds[aid](c.views[aid])
            finally:
                vec.tracking = False
            reads = vec.reads
            if reads:
                if c.declared[aid]:
                    # The view filters reads through the declared slot
                    # set, so anything recorded here is an undeclared
                    # read — the dependency map would miss its updates.
                    names = sorted(
                        n for n, s in act.index.items() if s in reads
                    )
                    raise SimulationError(
                        f"activity {act.path!r} reads places outside its "
                        f"declared read set: {names}"
                    )
                known = act_deps[aid]
                for slot in reads:
                    if slot not in known:
                        known.add(slot)
                        dep_lists[slot].append(aid)
            if c.is_timed[aid]:
                if en:
                    c.init_timed.append(aid)
            else:
                c.init_instants.append((aid, bool(en)))
        vec.reset(model.initial)
        return c

    def tables(self) -> _Compiled:
        """The compiled per-activity tables, built on first use."""
        if self._compiled is None:
            self._compiled = self._compile()
        return self._compiled

    def fastpath_report(self) -> dict:
        """Compile-time fast-path coverage of this program's model.

        Returns a dict mapping out which activities complete by
        compiled kernels versus Python gate functions, and how every
        timed delay draw is served:

        * ``kernel_activities`` — sorted activity paths with a compiled
          gate-write kernel;
        * ``case_kernel_activities`` — sorted paths with a compiled
          case/guard kernel (branch selected per completion, slot
          deltas applied without entering Python);
        * ``python_effect_activities`` — sorted paths with neither: the
          only completions that still call Python gate functions under
          the ``auto`` engine (``engine="reference"`` always calls
          them);
        * ``sampling`` — activity path → ``"const"`` | ``"batched"`` |
          ``"scalar"`` | ``"dynamic"`` for timed activities (dynamic
          draws are additionally block-served when ``batch_dynamic``);
        * ``sample_batch`` / ``batch_dynamic`` — the sampling knobs.
        """
        c = self.tables()
        kernel: list[str] = []
        case_kernel: list[str] = []
        python_effects: list[str] = []
        sampling: dict[str, str] = {}
        for act in self.model.activities:
            aid = act.ident
            if c.kernels[aid] is not None:
                kernel.append(act.path)
            elif c.case_kern[aid] is not None:
                case_kernel.append(act.path)
            else:
                python_effects.append(act.path)
            if c.samp_kind[aid] is not None:
                sampling[act.path] = c.samp_kind[aid]
        return {
            "kernel_activities": sorted(kernel),
            "case_kernel_activities": sorted(case_kernel),
            "python_effect_activities": sorted(python_effects),
            "sampling": sampling,
            "sample_batch": self.sample_batch,
            "batch_dynamic": self.batch_dynamic,
        }


class Simulator:
    """Executes runs of a :class:`~repro.core.composition.FlatModel`.

    The simulator is reusable: dependency maps discovered during one run
    carry over to the next (they are conservative supersets, so correctness
    is unaffected and later runs start warm).  A simulator instance is not
    re-entrant: it owns one marking vector, so at most one :meth:`run` may
    be in flight per instance (use one simulator per process/thread).

    Parameters
    ----------
    model:
        Flattened model to execute, or an existing
        :class:`CompiledProgram` to adopt (compile-once/replicate-many:
        every simulator built on the same program shares its tables,
        dependency maps, kernels and sampler plans instead of
        recompiling; runs on sharing simulators must be sequential).
    base_seed:
        Root entropy; run ``k`` (the ``k``-th call to :meth:`run` without an
        explicit seed) uses an independent stream derived from it.
    max_instant_chain:
        Fixpoint guard: maximum zero-time firings at a single instant before
        :class:`~repro.core.errors.InstantaneousLoopError` is raised
        (default 100 000).  Raise it for models with legitimately deep
        zero-time cascades; lower it to make a suspected vanishing loop
        fail fast.
    max_events:
        Run budget: maximum events per :meth:`run` before
        :class:`~repro.core.errors.SimulationBudgetError` is raised
        (``None`` = unlimited).  The error carries the partial trajectory
        state (events executed, simulated time, marking snapshot), so a
        runaway model is diagnosable instead of a hang.
    max_wall_s:
        Run budget: wall-clock seconds per :meth:`run`, enforced at event
        granularity, raising the same
        :class:`~repro.core.errors.SimulationBudgetError` (``None`` =
        unlimited).  Budgeted runs execute on the observed event loop;
        with both budgets ``None`` (the default) the event loops carry no
        budget checks at all.
    sample_batch:
        Block size for vectorized delay draws (default
        :data:`DEFAULT_SAMPLE_BATCH`); one block per distinct distribution
        object, covering every law that advertises
        :attr:`~repro.core.distributions.Distribution.batchable`.
        ``None`` selects per-draw sampling, which consumes the RNG
        stream one variate at a time exactly like the pre-optimization
        engine (use it to reproduce historical trajectories).  Both modes
        are fully deterministic for a fixed seed, but they follow
        different (equally valid) trajectories because blocks consume the
        stream ahead of time.
    batch_dynamic:
        Also serve the distributions *returned by marking-dependent
        distribution callables* from vectorized blocks (one block per
        distinct returned object, cache rebuilt each run so a
        trajectory stays a pure function of (model, stream)).  Off by
        default: enabling it changes default-mode stream consumption —
        historical batched trajectories (e.g. the ``*_batched`` golden
        entries) assume dynamic draws are per-draw.  No effect when
        ``sample_batch`` is ``None``.  The paper-workload facades
        (``ClusterModel``, ``StorageModel``) enable it: the disk fleets
        draw their equilibrium-residual lifetimes through such a
        callable.
    engine:
        ``"auto"`` (default) dispatches each run to the most specialized
        event loop the model and observers allow.  ``"reference"`` forces
        the general un-specialized loop for every model: same features,
        same trajectories, no inlining — the differential-testing oracle
        for the specialized paths.
    program:
        Existing :class:`CompiledProgram` to adopt (alternative to
        passing it as ``model``).  Must have been compiled for the same
        model object, and any explicitly passed ``sample_batch`` /
        ``batch_dynamic`` must agree with the program's configuration.
    """

    def __init__(
        self,
        model: FlatModel | CompiledProgram,
        base_seed: int = 0,
        max_instant_chain: int = 100_000,
        sample_batch: int | None = _UNSET,
        batch_dynamic: bool = _UNSET,
        engine: str = "auto",
        program: CompiledProgram | None = None,
        max_events: int | None = None,
        max_wall_s: float | None = None,
        sanitize: bool = False,
        verify_every: int | None = None,
        strict: bool = False,
    ) -> None:
        if isinstance(model, CompiledProgram):
            if program is not None and program is not model:
                raise SimulationError(
                    "pass the compiled program once (positionally or as "
                    "program=..., not two different ones)"
                )
            program = model
            model = program.model
        if program is not None:
            if program.model is not model:
                raise SimulationError(
                    "program= was compiled for a different model object"
                )
            if sample_batch is not _UNSET:
                explicit = None if sample_batch is None else int(sample_batch)
                if explicit != program.sample_batch:
                    raise SimulationError(
                        f"sample_batch={sample_batch!r} conflicts with the "
                        f"adopted program's ({program.sample_batch!r})"
                    )
            if batch_dynamic is not _UNSET and bool(batch_dynamic) != program.batch_dynamic:
                raise SimulationError(
                    f"batch_dynamic={batch_dynamic!r} conflicts with the "
                    f"adopted program's ({program.batch_dynamic!r})"
                )
            self.program = program
        else:
            self.program = CompiledProgram(
                model,
                sample_batch=(
                    DEFAULT_SAMPLE_BATCH if sample_batch is _UNSET else sample_batch
                ),
                batch_dynamic=(
                    False if batch_dynamic is _UNSET else bool(batch_dynamic)
                ),
            )
        self.model = model
        self.base_seed = int(base_seed)
        self.max_instant_chain = int(max_instant_chain)
        if max_events is not None and int(max_events) < 1:
            raise SimulationError(
                f"max_events must be >= 1 or None, got {max_events}"
            )
        if max_wall_s is not None and not max_wall_s > 0.0:
            raise SimulationError(
                f"max_wall_s must be positive or None, got {max_wall_s}"
            )
        self.max_events = None if max_events is None else int(max_events)
        self.max_wall_s = None if max_wall_s is None else float(max_wall_s)
        if sanitize:
            if engine not in ("auto", "sanitize"):
                raise SimulationError(
                    f"sanitize=True conflicts with engine={engine!r}"
                )
            engine = "sanitize"
        if engine not in ("auto", "reference", "sanitize"):
            raise SimulationError(
                f"engine must be 'auto', 'reference', or 'sanitize', "
                f"got {engine!r}"
            )
        if verify_every is not None and int(verify_every) < 1:
            raise SimulationError(
                f"verify_every must be >= 1 or None, got {verify_every}"
            )
        self.engine = engine
        self.verify_every = None if verify_every is None else int(verify_every)
        self.strict = bool(strict)
        self._run_counter = 0
        # Fast-path observability (see fastpath_report): which event loop
        # the last run dispatched to, and how many completions applied a
        # compiled gate-write kernel / case kernel vs. called Python gate
        # functions.
        self.last_loop: str | None = None
        self.last_kernel_effects = 0
        self.last_case_kernels = 0
        self.last_python_effects = 0
        # Reward-form coverage of the last run (see fastpath_report):
        # rate rewards whose declared form compiled to an incremental
        # update kernel vs. those refreshed by re-calling their Python
        # expression after each relevant event.
        self.last_reward_kernels: list[str] = []
        self.last_python_refresh_rewards: list[str] = []

    @property
    def sample_batch(self) -> int | None:
        """Block size for vectorized delay draws (``None`` = per-draw)."""
        return self.program.sample_batch

    @property
    def batch_dynamic(self) -> bool:
        """Whether marking-dependent draws are block-served."""
        return self.program.batch_dynamic

    def reset_streams(self) -> None:
        """Reset the run counter so the next :meth:`run` uses stream 0.

        Everything else a run could observe is already reset at run
        entry (marking, discovered dependencies, sampler blocks) or is
        trajectory-neutral warm state (verification flags, predicate
        memos), so after ``reset_streams()`` a reused simulator or
        program replays exactly the runs a freshly constructed one
        would — the reuse-equals-fresh contract of
        compile-once/replicate-many.
        """
        self._run_counter = 0

    def _matching_ids(self, pattern: str | Callable[[str], bool]) -> list[int]:
        return self.program._matching_ids(pattern)

    def fastpath_report(self) -> dict:
        """Compile-time fast-path coverage of this simulator's model.

        See :meth:`CompiledProgram.fastpath_report` for the compile-time
        fields.  On top of those this adds the reward-form coverage of
        the most recent :meth:`run`:

        * ``reward_kernel_rewards`` — sorted names of rate rewards whose
          declared :class:`~repro.core.rewards.Affine` /
          :class:`~repro.core.rewards.Indicator` form compiled into an
          incremental update kernel.
        * ``python_refresh_rewards`` — sorted names of rate rewards
          refreshed by re-calling their Python expression after every
          event that touches a declared read (empty before the first
          run).  Paper-workload models must keep this empty.

        Together with :attr:`last_loop` and the
        :attr:`last_kernel_effects` / :attr:`last_case_kernels` /
        :attr:`last_python_effects` counters this is the CI hook that
        keeps paper-workload models from silently falling off the
        inlined fast path (``tests/test_fastpath_coverage.py``).
        """
        report = self.program.fastpath_report()
        report["reward_kernel_rewards"] = list(self.last_reward_kernels)
        report["python_refresh_rewards"] = list(self.last_python_refresh_rewards)
        return report

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def run(
        self,
        until: float,
        *,
        warmup: float = 0.0,
        rewards: Sequence[RateReward | ImpulseReward] = (),
        traces: Sequence[BinaryTrace | EventTrace] = (),
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        stop_predicate: Callable[[LocalView], bool] | None = None,
        initial_marking: Sequence[int] | None = None,
    ) -> RunResult:
        """Simulate one trajectory on ``[0, until]`` hours.

        Parameters
        ----------
        until:
            End of simulated time.
        warmup:
            Rewards accumulate only on ``[warmup, until]`` (traces record
            the full window).
        rewards / traces:
            Observers for this run.
        seed / rng:
            Explicit stream control; by default run ``k`` uses the stream
            derived from ``(base_seed, "run", k)``.
        stop_predicate:
            Optional early-stop condition evaluated on the global view
            after each event.
        initial_marking:
            Optional marking vector (slot order, e.g. a prior run's
            ``RunResult.final_marking``) to start from instead of the
            model's initial marking.  Every activity's enabling is then
            re-derived from the given marking (the compile-time
            initially-enabled tables only describe the model's own
            initial marking); for memoryless (exponential) models this
            makes ``run`` a restart-from-state primitive — the sampled
            continuation is distributed exactly as the suspended
            trajectory (used by the importance-splitting estimator in
            :mod:`repro.experiments.rare`).  Default ``None`` leaves the
            initialization path byte-identical to previous releases.
        """
        if until <= 0.0:
            raise SimulationError(f"until must be positive, got {until}")
        if not 0.0 <= warmup < until:
            raise SimulationError(
                f"warmup must lie in [0, until), got warmup={warmup}, until={until}"
            )
        if rng is None:
            if seed is None:
                rng = make_generator(self.base_seed, "run", self._run_counter)
            else:
                rng = make_generator(int(seed))
        self._run_counter += 1

        if self.engine == "sanitize":
            # Instrumented interpreting loop: shadow-tracks every place
            # access and marking write and cross-checks declarations on
            # every evaluation.  Dispatched before the compiled tables
            # are built so that declarations the compiler would reject
            # are reported as findings instead of raised.
            from .sanitizer import sanitized_run

            return sanitized_run(
                self,
                until,
                warmup=warmup,
                rewards=rewards,
                traces=traces,
                rng=rng,
                stop_predicate=stop_predicate,
                initial_marking=initial_marking,
            )

        p = self.program
        c = p.tables()
        if p._dep_journal:
            p._reset_discovered_deps()
        model = self.model
        vector = c.vector
        if initial_marking is None:
            vector.reset(model.initial)
        else:
            init_values = [int(v) for v in initial_marking]
            if len(init_values) != len(model.initial):
                raise SimulationError(
                    f"initial_marking has {len(init_values)} entries, "
                    f"model has {len(model.initial)} places"
                )
            if any(v < 0 for v in init_values):
                raise SimulationError("initial_marking entries must be >= 0")
            vector.reset(init_values)
        for reset_sampler in c.batched:
            reset_sampler()

        # Local aliases: everything the event loop touches is a local.
        values = vector.values
        changed = vector.changed
        reads = vector.reads
        views = c.views
        pviews = c.pviews
        gview = c.gview
        preds = c.preds
        ig_fns = c.ig_fns
        og_fns = c.og_fns
        case_tab = c.case_tab
        plain1 = c.plain1
        reference = self.engine == "reference"
        kernels = c.kernels if not reference else [None] * p._n_acts
        case_kern = c.case_kern if not reference else [None] * p._n_acts
        case_ok = p._case_verified
        samplers = c.samplers
        # Unwrapped BatchedSampler objects for the hot re-activation
        # sites: the common-case buffer pop is inlined there (a few
        # slot-attribute loads instead of a bound-method call); an empty
        # or exhausted buffer falls through to the plain sample() call,
        # which performs the identical refill-and-pop.
        batched_of = [
            samplers[a].__self__ if c.samp_kind[a] == "batched" else None
            for a in range(p._n_acts)
        ]
        dyn_dists = c.dyn_dists
        is_timed = c.is_timed
        declared = c.declared
        memo_slot = c.memo_slot
        pred_memo = p._pred_memo
        reactivate = c.reactivate
        act_paths = c.paths
        act_deps = p._act_deps
        dep_lists = p._dep_lists
        dep_journal = p._dep_journal
        instant_ids = p._instant_ids
        priorities = p._priorities
        has_instants = bool(instant_ids)
        max_chain = self.max_instant_chain
        heappush = heapq.heappush
        heappop = heapq.heappop
        rng_uniform = rng.uniform

        n_acts = p._n_acts
        # token parity encodes liveness: odd = activity has a live event.
        # Completion and deactivation both bump the token, so a heap
        # entry's token mismatching the current one marks it stale.
        token = [0] * n_acts
        enabled_instant = [False] * n_acts
        # Currently-enabled instantaneous activities, kept as a set so
        # the firing scan touches only the (few) enabled ones instead of
        # every instant in the model; the selection below re-imposes the
        # canonical order, so iteration order never leaks.
        inst_enabled: set[int] = set()
        stamp = [0] * n_acts  # epoch marks for dirty-list dedup
        # declared activities' distribution callables are verified against
        # the declaration on their first evaluation; gate-write kernels
        # against their gate functions on their first completion.  Both
        # flags persist across runs (see CompiledProgram): verification
        # is observation-only, so skipping it on warm programs cannot
        # change a trajectory.
        dyn_checked = p._dyn_verified
        kern_ok = p._kern_verified
        # Verified-kernel ops, fused with the verification flag: the fast
        # loops test one entry instead of two (kernels[aid] + kern_ok).
        # A kernel's first completion verifies through the Python gate
        # functions and promotes its ops here (see the verify sites).
        live_kernels = [
            kernels[a] if kern_ok[a] else None for a in range(p._n_acts)
        ]
        # Only compiled completions are counted per event (free for
        # models without kernels); python-effect completions are derived
        # at run end as n_events - n_kernel_effects - n_case_kernels
        # (verification firings run the Python functions, so they count
        # as python effects).
        n_kernel_effects = 0
        n_case_kernels = 0
        epoch = 0
        heap: list[tuple[float, int, int, int]] = []  # (time, seq, aid, token)
        seq = 0
        now = 0.0
        n_events = 0

        # uniform block for case selection (batched mode only; kept as a
        # plain list so selections compare Python floats, not np scalars)
        u_batch = self.sample_batch
        u_buf: list[float] | None = None
        u_pos = 0

        # Per-run sampler cache for marking-dependent distributions,
        # keyed by the returned object's id (the cached entry holds a
        # strong reference, so ids cannot be recycled while cached).
        # Rebuilt every run: a warm simulator must follow the same
        # trajectory as a fresh one, so no sampling state may carry over.
        # With batch_dynamic, batchable returned laws are served from
        # per-object blocks; otherwise the cache just memoizes the
        # Distribution type check per object.
        dyn_samplers: dict[int, Callable] = {}
        use_dyn_batch = u_batch is not None and self.batch_dynamic

        # -- reward / trace wiring ------------------------------------
        rate_rewards: list[RateReward] = []
        impulse_rewards: list[ImpulseReward] = []
        for r in rewards:
            if isinstance(r, RateReward):
                rate_rewards.append(r)
            elif isinstance(r, ImpulseReward):
                impulse_rewards.append(r)
            else:
                raise SimulationError(f"unsupported reward object: {r!r}")

        results: dict[str, RewardResult] = {}
        for r in rate_rewards:
            if r.name in results:
                raise SimulationError(f"duplicate reward name {r.name!r}")
            results[r.name] = RewardResult(r.name, "rate")
        for r in impulse_rewards:
            if r.name in results:
                raise SimulationError(f"duplicate reward name {r.name!r}")
            results[r.name] = RewardResult(r.name, "impulse")

        n_rates = len(rate_rewards)
        rate_range = range(n_rates)  # hoisted for the inline hot loop
        rate_results = [results[r.name] for r in rate_rewards]
        rate_fns = [r.function for r in rate_rewards]
        # Effective integration bounds per reward: the reward's window
        # intersected with [warmup, until].  Plain rewards get exactly
        # (warmup, until), which keeps their integration arithmetic
        # bit-identical to the unwindowed engine.
        rate_lo = [0.0] * n_rates
        rate_hi = [0.0] * n_rates
        for i, r in enumerate(rate_rewards):
            if r.window is None:
                rate_lo[i] = warmup
                rate_hi[i] = until
            else:
                w0, w1 = r.window
                rate_lo[i] = warmup if warmup > w0 else w0
                rate_hi[i] = until if until < w1 else w1

        # Instant-of-time probes, merged across rewards in time order.
        probe_list: list[tuple[float, int]] = []
        for i, r in enumerate(rate_rewards):
            if r.probe_times:
                for t in r.probe_times:
                    if t > until:
                        raise SimulationError(
                            f"rate reward {r.name!r}: probe time {t} "
                            f"exceeds until={until}"
                        )
                    probe_list.append((t, i))
        probe_list.sort()
        n_probes = len(probe_list)
        probe_pos = 0

        binary_traces: list[BinaryTrace] = []
        event_traces: list[EventTrace] = []
        trace_map: dict[str, BinaryTrace | EventTrace] = {}
        for tr in traces:
            if tr.name in trace_map:
                raise SimulationError(f"duplicate trace name {tr.name!r}")
            trace_map[tr.name] = tr
            tr.reset()
            if isinstance(tr, BinaryTrace):
                binary_traces.append(tr)
            elif isinstance(tr, EventTrace):
                event_traces.append(tr)
            else:
                raise SimulationError(f"unsupported trace object: {tr!r}")

        # Per-activity observer tables (None when nothing observes the act).
        impulse_by_act: list[list | None] = [None] * n_acts
        for r in impulse_rewards:
            ids = self._matching_ids(r.activity_pattern)
            if not ids:
                raise SimulationError(
                    f"impulse reward {r.name!r} matches no activity "
                    f"(pattern {r.activity_pattern!r})"
                )
            ilo, ihi = r.window if r.window is not None else (0.0, float("inf"))
            entry = (
                (results[r.name], None, r.value, ilo, ihi)
                if callable(r.value)
                else (results[r.name], float(r.value), None, ilo, ihi)
            )
            for aid in ids:
                lst = impulse_by_act[aid]
                if lst is None:
                    lst = impulse_by_act[aid] = []
                lst.append(entry)
        etrace_by_act: list[list[EventTrace] | None] = [None] * n_acts
        for tr in event_traces:
            ids = self._matching_ids(tr.activity_pattern)
            if not ids:
                raise SimulationError(
                    f"event trace {tr.name!r} matches no activity "
                    f"(pattern {tr.activity_pattern!r})"
                )
            for aid in ids:
                lst = etrace_by_act[aid]
                if lst is None:
                    lst = etrace_by_act[aid] = []
                lst.append(tr)
        has_observers = bool(impulse_rewards or event_traces)
        # Combined per-activity completion-observer table for the fast
        # loops: one index + None check on the (dominant) unobserved
        # activities instead of two.
        act_watch: list[tuple[list | None, list | None] | None] = [None] * n_acts
        if has_observers:
            for _aid in range(n_acts):
                if impulse_by_act[_aid] is not None or etrace_by_act[_aid] is not None:
                    act_watch[_aid] = (impulse_by_act[_aid], etrace_by_act[_aid])
        # Per-activity "has a case/guard kernel" flags: compile makes
        # plain kernels and case kernels mutually exclusive, so the hot
        # dispatch needs one boolean load, not a second table probe.
        has_case = [ck is not None for ck in case_kern]

        # Periodic kernel re-verification (``Simulator(verify_every=N)``):
        # every N-th completion demotes the firing activity's verified
        # state, so that completion re-runs the first-completion
        # verification (Python functions, bit-identical writes, declared
        # ops cross-checked).  A re-verification failure quarantines the
        # compiled effect: the activity permanently drops to the Python
        # path, the run continues — the verifier has already applied the
        # true writes, so the marking is consistent — and one
        # RuntimeWarning records the demotion.  ``strict=True`` re-raises
        # the DeclarationError instead.
        verify_every = self.verify_every
        has_verify = verify_every is not None
        quarantine = has_verify and not self.strict
        verify_left = verify_every if has_verify else 0

        def quarantine_effect(aid: int, exc: DeclarationError) -> None:
            kernels[aid] = None
            live_kernels[aid] = None
            kern_ok[aid] = False
            case_kern[aid] = None
            has_case[aid] = False
            warnings.warn(
                f"quarantined compiled effect of activity "
                f"{act_paths[aid]!r}; continuing on the Python path "
                f"({exc})",
                RuntimeWarning,
                stacklevel=3,
            )

        # Rate-reward / binary-trace incremental state: slot -> observer
        # indices as flat list-of-lists indexed by slot (same shape as the
        # activity dependency map; ``None`` marks unobserved slots).
        # Rewards with declared reads are wired in full here; the rest
        # grow their lists by tracked discovery.  Each observer evaluates
        # through its own view filtered by its known-slot set, so a
        # converged observer's tracked evaluation records nothing.
        n_places = model.n_places
        n_btraces = len(binary_traces)
        rate_values: list[float] = [0.0] * n_rates
        rate_obs: list[list[int] | None] = [None] * n_places
        rate_known: list[set[int]] = [set() for _ in range(n_rates)]
        rate_declared = [r.reads is not None for r in rate_rewards]
        rate_views = [
            LocalView(vector, model.paths, rate_known[i]) for i in range(n_rates)
        ]
        paths_index = model.paths
        # Compiled reward-form kernels (declared Indicator/Affine forms).
        # A form-compiled reward is *not* wired into the rate_obs observer
        # lists: every event that writes one of its places refreshes its
        # value inline through ``form_upd`` (exact integer guard
        # bookkeeping + the canonical affine arithmetic) instead of
        # re-calling the Python expression after settlement.  The
        # reference engine never compiles forms — it keeps the tracked
        # observer path, which is the differential oracle for this layer.
        form_compiled = [
            r.form is not None and not reference for r in rate_rewards
        ]
        # form_upd[slot]: None, or a list of (reward_i, guard_entries,
        # base, terms) to apply when the slot's value changes.
        # guard_entries is a tuple of (guard_j, cmp_fn, bound, slot_a,
        # slot_b) covering the form guards that read this slot (slot_b
        # == -1 for single-place guards); terms is the full
        # (slot, coef, divisor) tuple of the reward's affine part.
        form_upd: list[list | None] = [None] * n_places
        form_gstate: list[list[bool] | None] = [None] * n_rates
        form_viol: list[int] = [0] * n_rates
        form_guards: list[tuple | None] = [None] * n_rates
        form_base: list[float] = [0.0] * n_rates
        form_terms: list[tuple | None] = [None] * n_rates

        def _form_slot(rname: str, place: str) -> int:
            slot = paths_index.get(place)
            if slot is not None:
                return slot
            matches = model.match(place)
            if len(matches) != 1:
                raise SimulationError(
                    f"rate reward {rname!r}: form place {place!r} resolved "
                    f"to {len(matches)} places; expected exactly one"
                )
            return next(iter(matches.values()))

        for i, r in enumerate(rate_rewards):
            if not form_compiled[i]:
                continue
            f = r.form
            terms = tuple(
                (_form_slot(r.name, p), coef, div) for p, coef, div in f.terms
            )
            guards = []
            for place, cmp, gval in f.guards:
                if isinstance(place, tuple):
                    sa = _form_slot(r.name, place[0])
                    sb = _form_slot(r.name, place[1])
                else:
                    sa = _form_slot(r.name, place)
                    sb = -1
                guards.append((_GUARD_FNS[cmp], gval, sa, sb))
            form_guards[i] = tuple(guards)
            form_base[i] = f.base
            form_terms[i] = terms
            form_gstate[i] = [False] * len(guards)
            relevant: dict[int, None] = {}
            for _cmp_fn, _gv, sa, sb in guards:
                relevant.setdefault(sa)
                if sb >= 0:
                    relevant.setdefault(sb)
            for s, _coef, _div in terms:
                relevant.setdefault(s)
            for s in relevant:
                gl = tuple(
                    (gj, cmp_fn, gv, sa, sb)
                    for gj, (cmp_fn, gv, sa, sb) in enumerate(guards)
                    if sa == s or sb == s
                )
                entry = (i, gl, f.base, terms)
                lst = form_upd[s]
                if lst is None:
                    form_upd[s] = [entry]
                else:
                    lst.append(entry)
        has_forms = any(form_compiled)
        self.last_reward_kernels = sorted(
            r.name for i, r in enumerate(rate_rewards) if form_compiled[i]
        )
        self.last_python_refresh_rewards = sorted(
            r.name for i, r in enumerate(rate_rewards) if not form_compiled[i]
        )

        def apply_forms(slot: int) -> None:
            """Refresh every form-compiled reward that reads ``slot``.

            Shared by the settle fixpoint and the non-kernel drain sites;
            the two kernel hot paths inline the same body.  Reading the
            current marking (not the write delta) keeps this idempotent:
            the last call after the final relevant write of an event
            leaves exactly the value the Python expression would return.
            """
            for fi, gl, fbase, fterms in form_upd[slot]:
                for gj, gcmp, gv, sa, sb in gl:
                    nv = not gcmp(
                        values[sa] if sb < 0 else values[sa] - values[sb], gv
                    )
                    st = form_gstate[fi]
                    if st[gj] != nv:
                        st[gj] = nv
                        form_viol[fi] += 1 if nv else -1
                if form_viol[fi]:
                    rate_values[fi] = 0.0
                else:
                    acc = fbase
                    for ts_, tc, td in fterms:
                        acc += tc * values[ts_] / td
                    rate_values[fi] = acc

        for i, r in enumerate(rate_rewards):
            if r.reads is None:
                continue
            known = rate_known[i]
            wire_obs = not form_compiled[i]
            for entry in r.reads:
                slot = paths_index.get(entry)
                slots = [slot] if slot is not None else list(model.match(entry).values())
                if not slots:
                    raise SimulationError(
                        f"rate reward {r.name!r}: declared read {entry!r} "
                        "matches no place"
                    )
                for s in slots:
                    if s not in known:
                        known.add(s)
                        if not wire_obs:
                            continue
                        lst = rate_obs[s]
                        if lst is None:
                            rate_obs[s] = [i]
                        else:
                            lst.append(i)
        btrace_values: list[bool] = [False] * n_btraces
        btrace_obs: list[list[int] | None] = [None] * n_places
        btrace_known: list[set[int]] = [set() for _ in range(n_btraces)]
        btrace_views = [
            LocalView(vector, model.paths, btrace_known[i])
            for i in range(n_btraces)
        ]
        has_rates = bool(rate_rewards)
        has_watch = bool(rate_rewards or binary_traces)
        # Epoch-stamped touched buffers (same scheme as the dirty list):
        # an observer index is appended at most once per observation epoch.
        rstamp = [0] * n_rates
        tstamp = [0] * n_btraces
        touched_r: list[int] = []
        touched_t: list[int] = []
        obs_epoch = 1

        # Fused per-slot observer index for the kernel hot paths: one
        # lookup + None check per written slot instead of three
        # (form_upd / rate_obs / btrace_obs), since almost every written
        # slot observes nothing.  Entries alias the live observer lists,
        # so in-place appends stay visible; the tracked-discovery sites
        # that *replace* a ``None`` entry with a fresh list re-fuse the
        # slot below (see eval_rate / eval_btrace).
        slot_obs: list[tuple | None] = [None] * n_places

        def _refresh_slot_obs(slot: int) -> None:
            f, rl, tl = form_upd[slot], rate_obs[slot], btrace_obs[slot]
            slot_obs[slot] = (
                None if f is None and rl is None and tl is None else (f, rl, tl)
            )

        for _s in range(n_places):
            _refresh_slot_obs(_s)

        def eval_rate(i: int) -> float:
            if not rate_declared[i]:
                vector.tracking = True
                reads.clear()
                try:
                    val = float(rate_fns[i](rate_views[i]))
                finally:
                    vector.tracking = False
                if reads:
                    # the filtered view records only undiscovered slots
                    known = rate_known[i]
                    for slot in reads:
                        known.add(slot)
                        lst = rate_obs[slot]
                        if lst is None:
                            rate_obs[slot] = [i]
                            _refresh_slot_obs(slot)
                        else:
                            lst.append(i)
                return val
            return float(rate_fns[i](rate_views[i]))

        def check_declared_rate(i: int) -> float:
            """Initial evaluation of a declared-reads reward, verified.

            The filtered view records any read outside the declaration;
            a non-empty record means the declaration is wrong and the
            observer lists would miss updates — fail loudly.
            """
            vector.tracking = True
            reads.clear()
            try:
                val = float(rate_fns[i](rate_views[i]))
            finally:
                vector.tracking = False
            if reads:
                slot_names = sorted(
                    p for p, s in paths_index.items() if s in reads
                )
                raise SimulationError(
                    f"rate reward {rate_rewards[i].name!r} reads places "
                    f"outside its declared read set: {slot_names}"
                )
            return val

        def eval_btrace(i: int) -> bool:
            vector.tracking = True
            reads.clear()
            try:
                val = bool(binary_traces[i].function(btrace_views[i]))
            finally:
                vector.tracking = False
            if reads:
                known = btrace_known[i]
                for slot in reads:
                    known.add(slot)
                    lst = btrace_obs[slot]
                    if lst is None:
                        btrace_obs[slot] = [i]
                        _refresh_slot_obs(slot)
                    else:
                        lst.append(i)
            return val

        # -- delay sampling (rare paths) -------------------------------
        def dyn_sample(aid: int) -> float:
            """Marking-dependent distribution: evaluate under tracking
            (or, for declared-reads activities, with tracking skipped
            after a verified first evaluation)."""
            if declared[aid]:
                if dyn_checked[aid]:
                    dist = dyn_dists[aid](pviews[aid])
                else:
                    # First activation on this simulator: evaluate tracked
                    # through the declaration-filtered view, so anything
                    # recorded is an undeclared read — the dependency map
                    # would miss its updates (same check as the predicates
                    # at compile time and declared rate rewards at t=0).
                    vector.tracking = True
                    reads.clear()
                    try:
                        dist = dyn_dists[aid](views[aid])
                    finally:
                        vector.tracking = False
                    if reads:
                        index = self.model.activities[aid].index
                        names = sorted(
                            n for n, s in index.items() if s in reads
                        )
                        raise SimulationError(
                            f"activity {act_paths[aid]!r}: distribution "
                            f"callable reads places outside the declared "
                            f"read set: {names}"
                        )
                    # only a verified evaluation may skip future checks
                    dyn_checked[aid] = True
            else:
                vector.tracking = True
                reads.clear()
                try:
                    dist = dyn_dists[aid](views[aid])
                finally:
                    vector.tracking = False
                if reads:
                    known = act_deps[aid]
                    for slot in reads:
                        if slot not in known:
                            known.add(slot)
                            dep_lists[slot].append(aid)
                            dep_journal.append((aid, slot))
            sample = dyn_samplers.get(id(dist))
            if sample is None:
                if not isinstance(dist, Distribution):
                    raise SimulationError(
                        f"activity {act_paths[aid]!r}: "
                        "distribution callable did not return a Distribution"
                    )
                if use_dyn_batch and dist.batchable:
                    sample = BatchedSampler(dist, u_batch).sample
                else:
                    sample = dist.sample
                dyn_samplers[id(dist)] = sample
            delay = sample(rng)
            if not delay >= 0.0:  # also catches NaN
                raise SimulationError(
                    f"activity {act_paths[aid]!r} sampled invalid "
                    f"delay {delay!r}"
                )
            return delay

        # -- event execution -------------------------------------------
        def fire_cases(aid: int, view: LocalView, ct) -> None:
            """Select and execute one case (consumes exactly one uniform)."""
            nonlocal u_buf, u_pos
            if u_batch is None:
                u = rng_uniform()
            else:
                if u_buf is None or u_pos >= u_batch:
                    u_buf = rng.random(u_batch).tolist()
                    u_pos = 0
                u = u_buf[u_pos]
                u_pos += 1
            bounds, cases = ct
            if bounds is not None:
                chosen = bounds[-1][1]
                for acc, fn in bounds:
                    if u <= acc:
                        chosen = fn
                        break
                chosen(view, rng)
            else:
                probs = [case.probability_in(view) for case in cases]
                total = sum(probs)
                if not (abs(total - 1.0) <= 1e-9):
                    raise SimulationError(
                        f"activity {act_paths[aid]!r}: case "
                        f"probabilities sum to {total} at completion"
                    )
                acc = 0.0
                chosen_case = cases[-1]
                for case, p in zip(cases, probs):
                    acc += p
                    if u <= acc:
                        chosen_case = case
                        break
                chosen_case.function(view, rng)

        def _slot_place(slot: int) -> str:
            for path, s in self.model.paths.items():
                if s == slot:
                    return path
            return f"<slot {slot}>"  # pragma: no cover - defensive

        def _verify_branch(aid: int, ops, fns, label: str) -> None:
            """First completion of a compiled effect: fire through the
            Python functions (bit-identical trajectory) and check the
            declared ops reproduce exactly the writes they made.

            ``changed`` is empty at completion time (the previous event
            drained it), so after the functions run it holds precisely
            this firing's writes.
            """
            pre = [values[slot] for slot, _a, _v, _d in ops]
            view = views[aid]
            for fn in fns:
                fn(view, _RNG_GUARD)
            predicted: dict[int, int] = {}
            for (slot, is_add, amount, _dl), p0 in zip(ops, pre):
                cur = predicted.get(slot, p0)
                predicted[slot] = cur + amount if is_add else amount
            undeclared = [s for s in changed if s not in predicted]
            wrong = [
                s for s, v in predicted.items() if values[s] != v or v < 0
            ]
            if undeclared or wrong:
                parts = []
                if undeclared:
                    parts.append(
                        "writes undeclared places "
                        f"{sorted(_slot_place(s) for s in undeclared)}"
                    )
                for s in sorted(wrong):
                    parts.append(
                        f"{_slot_place(s)}: declared ops give "
                        f"{predicted[s]}, function wrote {values[s]}"
                    )
                raise DeclarationError(
                    f"activity {act_paths[aid]!r}: declared writes do not "
                    f"match {label} ({'; '.join(parts)})"
                )

        def verify_kernel(aid: int) -> None:
            _verify_branch(aid, kernels[aid], og_fns[aid], "its gate functions")

        def select_case_branch(aid: int):
            """One completion of a case/guard-kernel activity.

            Selects the branch exactly as the Python path would —
            consuming one uniform through the shared case buffer for
            probabilistic cases, evaluating the guard on the completion
            marking for guarded writes — and returns the branch's
            precomputed slot ops, or ``None`` when this selection
            verified the branch through its Python functions (the
            writes then sit in ``changed``, bit-identical).
            """
            nonlocal u_buf, u_pos
            bounds, guard, branch_ops, branch_fns, labels = case_kern[aid]
            if bounds is None:
                slot, cmp_fn, gval = guard
                idx = 0 if cmp_fn(values[slot], gval) else 1
            else:
                if u_batch is None:
                    u = rng_uniform()
                else:
                    if u_buf is None or u_pos >= u_batch:
                        u_buf = rng.random(u_batch).tolist()
                        u_pos = 0
                    u = u_buf[u_pos]
                    u_pos += 1
                idx = len(bounds) - 1
                for i, acc in enumerate(bounds):
                    if u <= acc:
                        idx = i
                        break
            flags = case_ok[aid]
            if flags[idx]:
                return branch_ops[idx]
            _verify_branch(aid, branch_ops[idx], branch_fns[idx], labels[idx])
            flags[idx] = True
            return None

        def _kernel_negative(aid: int, slot: int, value: int) -> None:
            raise SimulationError(
                f"activity {act_paths[aid]!r}: declared write drives place "
                f"{_slot_place(slot)!r} to negative value {value}"
            )

        # NOTE: the body of fire() is duplicated inline in the fast event
        # loops below; keep the sites in sync.  Kernel activities apply
        # their precomputed slot ops (verified on first completion); the
        # reference engine sees an all-None kernel table and always calls
        # the Python gate functions.
        def fire(aid: int) -> None:
            """Run gate functions and cases; writes land in ``changed``."""
            nonlocal n_events, n_kernel_effects, n_case_kernels, verify_left
            n_events += 1
            if has_verify:
                verify_left -= 1
                if verify_left <= 0:
                    verify_left = verify_every
                    if kern_ok[aid]:
                        kern_ok[aid] = False
                        live_kernels[aid] = None
                    cflags = case_ok[aid]
                    if cflags is not None:
                        for _bi in range(len(cflags)):
                            cflags[_bi] = False
            ops = kernels[aid]
            if ops is None:
                if case_kern[aid] is not None:
                    try:
                        cops = select_case_branch(aid)
                    except DeclarationError as _exc:
                        if not quarantine:
                            raise
                        quarantine_effect(aid, _exc)
                        cops = None
                    if cops is not None:
                        n_case_kernels += 1
                        for slot, is_add, amount, _dl in cops:
                            if is_add:
                                v = values[slot] + amount
                                if v < 0:
                                    _kernel_negative(aid, slot, v)
                                values[slot] = v
                                changed.add(slot)
                            elif values[slot] != amount:
                                values[slot] = amount
                                changed.add(slot)
                    # else: verification ran the Python functions; the
                    # writes already sit in ``changed``.
                else:
                    view = views[aid]
                    for fn in ig_fns[aid]:
                        fn(view, rng)
                    ct = case_tab[aid]
                    if ct is not None:
                        fire_cases(aid, view, ct)
                    for og in og_fns[aid]:
                        og(view, rng)
            elif kern_ok[aid]:
                n_kernel_effects += 1
                for slot, is_add, amount, _dl in ops:
                    if is_add:
                        v = values[slot] + amount
                        if v < 0:
                            _kernel_negative(aid, slot, v)
                        values[slot] = v
                        changed.add(slot)
                    elif values[slot] != amount:
                        values[slot] = amount
                        changed.add(slot)
            else:
                try:
                    verify_kernel(aid)
                    kern_ok[aid] = True
                except DeclarationError as _exc:
                    if not quarantine:
                        raise
                    quarantine_effect(aid, _exc)

            if has_observers:
                if now >= warmup:
                    obs = impulse_by_act[aid]
                    if obs is not None:
                        for res, static, fn, ilo, ihi in obs:
                            if ilo <= now <= ihi:
                                res.impulse_sum += (
                                    static if fn is None else fn(gview)
                                )
                                res.count += 1
                etr = etrace_by_act[aid]
                if etr is not None:
                    path = act_paths[aid]
                    for tr in etr:
                        tr.record(now, path, gview)

        def update_timed(aid: int, en: bool) -> None:
            """Apply an enabling-state change to a timed activity.

            Activations whose completion falls beyond ``until`` are never
            pushed: they could only be popped after the loop's horizon
            check, so their absence cannot change the fired-event
            sequence (lazy cancellation tolerates missing entries — a
            later disable just bumps the token).  The stream and ``seq``
            assignment are untouched, so trajectories are bit-identical;
            the fleet models' heaps shrink by every idle-component
            lifetime that exceeds the run (most of a petascale year's
            4800 disk draws).
            """
            nonlocal seq
            tok = token[aid]
            if en:
                if not tok & 1:
                    tok += 1
                elif reactivate[aid]:
                    tok += 2
                else:
                    return
                token[aid] = tok
                sampler = samplers[aid]
                delay = sampler(rng) if sampler is not None else dyn_sample(aid)
                ft = now + delay
                if ft <= until:
                    heappush(heap, (ft, seq, aid, tok))
                seq += 1
            elif tok & 1:
                token[aid] = tok + 1

        def settle(dirty: list[int]) -> None:
            """Update timed enabling and run the instantaneous fixpoint.

            ``dirty`` holds unique activity ids; they are processed in
            ascending id order (the canonical deterministic order).
            """
            nonlocal epoch
            chain = 0
            while True:
                dirty.sort()
                for aid in dirty:
                    if declared[aid]:
                        ms = memo_slot[aid]
                        if ms < 0:
                            en = preds[aid](pviews[aid])
                        else:
                            mdict = pred_memo[aid]
                            en = mdict.get(values[ms])
                            if en is None:
                                en = preds[aid](pviews[aid])
                                mdict[values[ms]] = en
                    else:
                        vector.tracking = True
                        if reads:
                            reads.clear()
                        try:
                            en = preds[aid](views[aid])
                        finally:
                            vector.tracking = False
                        if reads:
                            known = act_deps[aid]
                            for slot in reads:
                                if slot not in known:
                                    known.add(slot)
                                    dep_lists[slot].append(aid)
                                    dep_journal.append((aid, slot))
                    if is_timed[aid]:
                        update_timed(aid, en)
                    elif en != enabled_instant[aid]:
                        enabled_instant[aid] = en
                        if en:
                            inst_enabled.add(aid)
                        else:
                            inst_enabled.discard(aid)
                del dirty[:]

                if not inst_enabled:
                    return
                # Highest priority first; ties broken by definition order
                # (lowest id).  The explicit tie-break makes the choice
                # independent of set iteration order — identical to the
                # historical in-order scan over every instant.
                best = -1
                best_pri = 0
                for iid in inst_enabled:
                    pri = priorities[iid]
                    if (
                        best < 0
                        or pri > best_pri
                        or (pri == best_pri and iid < best)
                    ):
                        best = iid
                        best_pri = pri
                chain += 1
                if chain > max_chain:
                    raise InstantaneousLoopError(
                        f"more than {max_chain} instantaneous firings at "
                        f"t={now}; last activity {act_paths[best]!r}"
                    )
                fire(best)
                epoch += 1
                for slot in changed:
                    if form_upd[slot] is not None:
                        apply_forms(slot)
                    rlist = rate_obs[slot]
                    if rlist is not None:
                        for i in rlist:
                            if rstamp[i] != obs_epoch:
                                rstamp[i] = obs_epoch
                                touched_r.append(i)
                    tlist = btrace_obs[slot]
                    if tlist is not None:
                        for i in tlist:
                            if tstamp[i] != obs_epoch:
                                tstamp[i] = obs_epoch
                                touched_t.append(i)
                    for d in dep_lists[slot]:
                        if stamp[d] != epoch:
                            stamp[d] = epoch
                            dirty.append(d)
                changed.clear()

        # -- initialization at t = 0 -----------------------------------
        # The initially enabled activities were pre-computed at compile
        # time (the initial marking is the same for every run); only the
        # delay draws and the instantaneous fixpoint are per-run work.
        # Entries are collected and heapified in one O(n) pass instead of
        # pushed one by one: the heap's internal layout differs but the
        # pop order — a pure function of the (time, seq) total order —
        # is identical, so trajectories are unchanged.  The loop mirrors
        # update_timed for a fresh (token 0, enabled) activity, horizon
        # filter included.
        if initial_marking is None:
            for aid in c.init_timed:
                token[aid] = 1
                sampler = samplers[aid]
                delay = sampler(rng) if sampler is not None else dyn_sample(aid)
                if delay <= until:
                    heap.append((delay, seq, aid, 1))
                seq += 1
            heapq.heapify(heap)
            if has_instants:
                for aid, en in c.init_instants:
                    enabled_instant[aid] = en
                    if en:
                        inst_enabled.add(aid)
                settle([])
                # discard observer touches from the t=0 fixpoint: every
                # observer is evaluated fresh below.  Bump the epoch so
                # the stale stamps cannot suppress the first event's
                # touches.
                del touched_r[:]
                del touched_t[:]
                obs_epoch += 1
        else:
            # Restart from a caller-supplied marking: the compile-time
            # tables describe the model's own initial marking only, so
            # every activity's enabling is re-derived here through
            # settle() — ascending-id predicate evaluation, the same
            # draw order the precomputed loop uses, followed by the
            # instantaneous fixpoint.  heappush instead of heapify only
            # changes the heap's internal layout, never the pop order.
            settle(list(range(n_acts)))
            del touched_r[:]
            del touched_t[:]
            obs_epoch += 1

        for i in range(n_rates):
            fn_val = (
                check_declared_rate(i) if rate_declared[i] else eval_rate(i)
            )
            if form_compiled[i]:
                # Initialize the kernel's guard bookkeeping from the
                # settled t=0 marking and verify the kernel value against
                # the Python expression — the same first-evaluation
                # contract as the gate/case kernels.  A mismatch means
                # the declared form disagrees with the reward function,
                # so the incremental updates would silently diverge.
                gstate = form_gstate[i]
                viol = 0
                for gj, (gcmp, gv, sa, sb) in enumerate(form_guards[i]):
                    nv = not gcmp(
                        values[sa] if sb < 0 else values[sa] - values[sb], gv
                    )
                    gstate[gj] = nv
                    viol += nv
                form_viol[i] = viol
                if viol:
                    kval = 0.0
                else:
                    kval = form_base[i]
                    for ts_, tc, td in form_terms[i]:
                        kval += tc * values[ts_] / td
                if kval != fn_val:
                    raise SimulationError(
                        f"rate reward {rate_rewards[i].name!r}: declared "
                        f"form evaluates to {kval!r} at t=0 but the reward "
                        f"function returned {fn_val!r}; the form does not "
                        "match the expression"
                    )
                rate_values[i] = kval
            else:
                rate_values[i] = fn_val
        for i, tr in enumerate(binary_traces):
            btrace_values[i] = eval_btrace(i)
            tr.observe(0.0, btrace_values[i])

        last_t = 0.0
        stopped_early = False

        # Integrals accumulate in a flat scratch list (copied into the
        # RewardResult objects at run end): a list store per term instead
        # of a dataclass attribute round-trip in the per-event path.
        rate_integrals = [0.0] * n_rates
        has_rate_windows = any(r.window is not None for r in rate_rewards)
        if not has_rate_windows:
            # Common case: every reward integrates over [warmup, until],
            # so the clipped span is shared (this is also the historical
            # arithmetic, preserved bit-for-bit).
            def integrate_to(t: float) -> None:
                nonlocal last_t
                a = last_t if last_t > warmup else warmup
                b = t if t < until else until
                if b > a:
                    span = b - a
                    for i in range(n_rates):
                        val = rate_values[i]
                        if val != 0.0:
                            rate_integrals[i] += val * span
                last_t = t

        else:

            def integrate_to(t: float) -> None:
                """Accumulate each rate reward over (last_t, t], clipped.

                Per-reward clipping bounds are the reward window
                intersected with [warmup, until]; for unwindowed rewards
                they are exactly (warmup, until), so mixing windowed and
                plain rewards keeps the plain ones on the historical
                arithmetic.
                """
                nonlocal last_t
                for i in range(n_rates):
                    val = rate_values[i]
                    if val != 0.0:
                        lo = rate_lo[i]
                        hi = rate_hi[i]
                        a = last_t if last_t > lo else lo
                        b = t if t < hi else hi
                        if b > a:
                            rate_integrals[i] += val * (b - a)
                last_t = t

        # The observed loop inlines the common-case integration body.
        inline_rates = has_rates and not has_rate_windows

        # -- event loop --------------------------------------------------
        # A completed event's token always mismatches (completion and
        # deactivation both bump it), so the token check alone detects
        # stale heap entries.
        dirty: list[int] = []
        has_stop = stop_predicate is not None
        has_probes = n_probes > 0
        # Run budgets force the observed loop so the plain loop never pays
        # for them: with budgets disabled (the default) the hot path is
        # byte-for-byte the pre-budget code.
        budget_events = self.max_events
        budget_wall = self.max_wall_s
        has_budget = budget_events is not None or budget_wall is not None
        monotonic = time.monotonic
        wall_deadline = (
            monotonic() + budget_wall if budget_wall is not None else None
        )

        def raise_budget(kind: str, limit: float | int) -> None:
            # Snapshot the partial trajectory so callers can diagnose the
            # runaway model (marking, events, simulated time reached).
            # Reward state is snapshotted exactly as integrated to the
            # reported sim_time: the budget check precedes the pending
            # event's integration step, so integrals, current rate values
            # (kernel-maintained or Python-refreshed) and impulse sums
            # are mutually consistent — and identical between the
            # observed and reference loops at the same event count.
            partial_rewards: dict[str, dict] = {}
            for ri in range(n_rates):
                partial_rewards[rate_rewards[ri].name] = {
                    "kind": "rate",
                    "integral": rate_integrals[ri],
                    "value": rate_values[ri],
                }
            for r_ in impulse_rewards:
                res_ = results[r_.name]
                partial_rewards[r_.name] = {
                    "kind": "impulse",
                    "impulse_sum": res_.impulse_sum,
                    "count": res_.count,
                }
            raise SimulationBudgetError(
                f"simulation exceeded {kind}={limit!r} after {n_events} "
                f"events at t={now:.6g} (until={until:g})",
                budget=kind,
                limit=limit,
                n_events=n_events,
                sim_time=now,
                marking={
                    path: values[slot]
                    for path, slot in self.model.paths.items()
                },
                rewards=partial_rewards,
            )

        observed = (
            has_instants
            or has_watch
            or has_stop
            or has_probes
            or has_budget
            or has_verify
        )
        # True iff some slot feeds a tracked observer (python-refresh
        # reward or binary trace).  Computed after the t=0 evaluations,
        # so initial discovery is included; when False, the touched
        # buffers can never fill mid-run (every drain site walks
        # rate_obs/btrace_obs entries, all None) and the observed loop
        # skips the per-event drain checks and epoch bump entirely.
        has_tracked_obs = any(
            l is not None for l in rate_obs
        ) or any(l is not None for l in btrace_obs)
        self.last_loop = (
            "reference"
            if self.engine == "reference"
            else ("observed" if observed else "plain")
        )
        if self.engine == "reference":
            # General un-specialized loop: every feature, no inlining.
            # This is the oracle the two specialized loops below are
            # differentially tested against.
            while heap:
                ftime, _s, aid, tok = heappop(heap)
                if tok != token[aid]:
                    continue
                if ftime > until:
                    break
                if has_budget:
                    if budget_events is not None and n_events >= budget_events:
                        raise_budget("max_events", budget_events)
                    if wall_deadline is not None and monotonic() >= wall_deadline:
                        raise_budget("max_wall_s", budget_wall)
                while probe_pos < n_probes and probe_list[probe_pos][0] <= ftime:
                    pt, pi = probe_list[probe_pos]
                    rate_results[pi].instants.append((pt, rate_values[pi]))
                    probe_pos += 1
                if has_rates:
                    integrate_to(ftime)
                now = ftime
                token[aid] += 1

                fire(aid)
                epoch += 1
                # the fired activity may re-enable itself
                stamp[aid] = epoch
                dirty.append(aid)
                for slot in changed:
                    rlist = rate_obs[slot]
                    if rlist is not None:
                        for i in rlist:
                            if rstamp[i] != obs_epoch:
                                rstamp[i] = obs_epoch
                                touched_r.append(i)
                    tlist = btrace_obs[slot]
                    if tlist is not None:
                        for i in tlist:
                            if tstamp[i] != obs_epoch:
                                tstamp[i] = obs_epoch
                                touched_t.append(i)
                    for d in dep_lists[slot]:
                        if stamp[d] != epoch:
                            stamp[d] = epoch
                            dirty.append(d)
                changed.clear()
                settle(dirty)

                # Refresh rate rewards / binary traces whose inputs changed.
                if touched_r:
                    for i in touched_r:
                        rate_values[i] = eval_rate(i)
                    del touched_r[:]
                if touched_t:
                    for i in touched_t:
                        val = eval_btrace(i)
                        if val != btrace_values[i]:
                            btrace_values[i] = val
                            binary_traces[i].observe(now, val)
                    del touched_t[:]
                obs_epoch += 1

                if has_stop and stop_predicate(gview):
                    stopped_early = True
                    break
        elif observed:
            # Specialized observed-model fast loop: the inlined hot loop
            # plus constant-time inline checks for rate/impulse rewards,
            # traces, probes, instantaneous activities and stop
            # conditions.  Reward-bearing models (the paper's cluster
            # workloads) run here instead of the reference loop; the
            # sequence of marking writes, RNG draws and float operations
            # is identical, which reward_golden.json pins bit-for-bit.
            # NOTE: mirrors fire() + update_timed() + settle(); keep the
            # sites in sync (as with the plain loop below).
            reads_clear = reads.clear
            changed_pop = changed.pop
            dirty_clear = dirty.clear
            dirty_sort = dirty.sort
            dirty_append = dirty.append
            heappushpop = heapq.heappushpop
            pending: tuple[float, int, int, int] | None = None
            while True:
                if pending is not None:
                    ftime, _s, aid, tok = heappushpop(heap, pending)
                    pending = None
                elif heap:
                    ftime, _s, aid, tok = heappop(heap)
                else:
                    break
                if tok != token[aid]:
                    continue
                if ftime > until:
                    break
                if has_budget:
                    if budget_events is not None and n_events >= budget_events:
                        raise_budget("max_events", budget_events)
                    if wall_deadline is not None and monotonic() >= wall_deadline:
                        raise_budget("max_wall_s", budget_wall)
                if probe_pos < n_probes:
                    while probe_pos < n_probes and probe_list[probe_pos][0] <= ftime:
                        pt, pi = probe_list[probe_pos]
                        rate_results[pi].instants.append((pt, rate_values[pi]))
                        probe_pos += 1
                if inline_rates:
                    # integrate_to's common (unwindowed) body, inlined:
                    # same clipping, same accumulation order, one Python
                    # call fewer per event.
                    a = last_t if last_t > warmup else warmup
                    b = ftime if ftime < until else until
                    if b > a:
                        span = b - a
                        for i in rate_range:
                            val = rate_values[i]
                            if val != 0.0:
                                rate_integrals[i] += val * span
                    last_t = ftime
                elif has_rates:
                    integrate_to(ftime)
                now = ftime
                token[aid] = tok + 1

                n_events += 1
                if has_verify:
                    verify_left -= 1
                    if verify_left <= 0:
                        verify_left = verify_every
                        if kern_ok[aid]:
                            kern_ok[aid] = False
                            live_kernels[aid] = None
                        cflags = case_ok[aid]
                        if cflags is not None:
                            for _bi in range(len(cflags)):
                                cflags[_bi] = False
                epoch += 1
                stamp[aid] = epoch
                dirty_append(aid)
                ops = live_kernels[aid]
                if ops is not None:
                    # Compiled gate-write kernel: apply the precomputed
                    # slot ops and mark each written slot's observers and
                    # dependents directly — no gate-function call, no
                    # LocalView, no changed-set round-trip.  A set op
                    # that leaves the value unchanged marks nothing,
                    # exactly like LocalView.__setitem__.
                    n_kernel_effects += 1
                    for slot, is_add, amount, dl in ops:
                        if is_add:
                            v = values[slot] + amount
                            if v < 0:
                                _kernel_negative(aid, slot, v)
                            values[slot] = v
                        elif values[slot] != amount:
                            values[slot] = amount
                        else:
                            continue
                        so = slot_obs[slot]
                        if so is not None:
                            ful, rlist, tlist = so
                            if ful is not None:
                                # Reward-form kernel, inlined (see
                                # apply_forms): integer guard bookkeeping
                                # + the canonical affine recompute replace
                                # the deferred Python re-evaluation.
                                for fi, gl, fbase, fterms in ful:
                                    for gj, gcmp, gv, sa, sb in gl:
                                        nv = not gcmp(
                                            values[sa]
                                            if sb < 0
                                            else values[sa] - values[sb],
                                            gv,
                                        )
                                        st = form_gstate[fi]
                                        if st[gj] != nv:
                                            st[gj] = nv
                                            form_viol[fi] += 1 if nv else -1
                                    if form_viol[fi]:
                                        rate_values[fi] = 0.0
                                    else:
                                        facc = fbase
                                        for ts_, tc, td in fterms:
                                            facc += tc * values[ts_] / td
                                        rate_values[fi] = facc
                            if rlist is not None:
                                for i in rlist:
                                    if rstamp[i] != obs_epoch:
                                        rstamp[i] = obs_epoch
                                        touched_r.append(i)
                            if tlist is not None:
                                for i in tlist:
                                    if tstamp[i] != obs_epoch:
                                        tstamp[i] = obs_epoch
                                        touched_t.append(i)
                        if dl:
                            for d in dl:
                                if stamp[d] != epoch:
                                    stamp[d] = epoch
                                    dirty_append(d)
                elif has_case[aid]:
                    # Compiled case/guard kernel: branch selected with the
                    # same uniform (or guard evaluation) the Python path
                    # uses; a verified branch applies its ops exactly like
                    # a gate-write kernel, a first selection verifies
                    # through the Python functions (writes drain below).
                    try:
                        cops = select_case_branch(aid)
                    except DeclarationError as _exc:
                        if not quarantine:
                            raise
                        quarantine_effect(aid, _exc)
                        cops = None
                    if cops is not None:
                        n_case_kernels += 1
                        for slot, is_add, amount, dl in cops:
                            if is_add:
                                v = values[slot] + amount
                                if v < 0:
                                    _kernel_negative(aid, slot, v)
                                values[slot] = v
                            elif values[slot] != amount:
                                values[slot] = amount
                            else:
                                continue
                            so = slot_obs[slot]
                            if so is not None:
                                ful, rlist, tlist = so
                                if ful is not None:
                                    # Reward-form kernel, inlined (see
                                    # apply_forms).
                                    for fi, gl, fbase, fterms in ful:
                                        for gj, gcmp, gv, sa, sb in gl:
                                            nv = not gcmp(
                                                values[sa]
                                                if sb < 0
                                                else values[sa] - values[sb],
                                                gv,
                                            )
                                            st = form_gstate[fi]
                                            if st[gj] != nv:
                                                st[gj] = nv
                                                form_viol[fi] += (
                                                    1 if nv else -1
                                                )
                                        if form_viol[fi]:
                                            rate_values[fi] = 0.0
                                        else:
                                            facc = fbase
                                            for ts_, tc, td in fterms:
                                                facc += (
                                                    tc * values[ts_] / td
                                                )
                                            rate_values[fi] = facc
                                if rlist is not None:
                                    for i in rlist:
                                        if rstamp[i] != obs_epoch:
                                            rstamp[i] = obs_epoch
                                            touched_r.append(i)
                                if tlist is not None:
                                    for i in tlist:
                                        if tstamp[i] != obs_epoch:
                                            tstamp[i] = obs_epoch
                                            touched_t.append(i)
                            if dl:
                                for d in dl:
                                    if stamp[d] != epoch:
                                        stamp[d] = epoch
                                        dirty_append(d)
                    else:
                        while changed:
                            slot = changed_pop()
                            if form_upd[slot] is not None:
                                apply_forms(slot)
                            rlist = rate_obs[slot]
                            if rlist is not None:
                                for i in rlist:
                                    if rstamp[i] != obs_epoch:
                                        rstamp[i] = obs_epoch
                                        touched_r.append(i)
                            tlist = btrace_obs[slot]
                            if tlist is not None:
                                for i in tlist:
                                    if tstamp[i] != obs_epoch:
                                        tstamp[i] = obs_epoch
                                        touched_t.append(i)
                            for d in dep_lists[slot]:
                                if stamp[d] != epoch:
                                    stamp[d] = epoch
                                    dirty_append(d)
                else:
                    kops = kernels[aid]
                    if kops is None:
                        view = views[aid]
                        fn1 = plain1[aid]
                        if fn1 is not None:
                            fn1(view, rng)
                        else:
                            igs = ig_fns[aid]
                            if igs:
                                for fn in igs:
                                    fn(view, rng)
                            ct = case_tab[aid]
                            if ct is not None:
                                fire_cases(aid, view, ct)
                            for og in og_fns[aid]:
                                og(view, rng)
                    else:
                        try:
                            verify_kernel(aid)
                            kern_ok[aid] = True
                            live_kernels[aid] = kops
                        except DeclarationError as _exc:
                            if not quarantine:
                                raise
                            # The verifier ran the Python functions, so
                            # the true writes sit in ``changed``.
                            quarantine_effect(aid, _exc)
                    while changed:
                        slot = changed_pop()
                        if form_upd[slot] is not None:
                            apply_forms(slot)
                        rlist = rate_obs[slot]
                        if rlist is not None:
                            for i in rlist:
                                if rstamp[i] != obs_epoch:
                                    rstamp[i] = obs_epoch
                                    touched_r.append(i)
                        tlist = btrace_obs[slot]
                        if tlist is not None:
                            for i in tlist:
                                if tstamp[i] != obs_epoch:
                                    tstamp[i] = obs_epoch
                                    touched_t.append(i)
                        for d in dep_lists[slot]:
                            if stamp[d] != epoch:
                                stamp[d] = epoch
                                dirty_append(d)
                if has_observers:
                    w = act_watch[aid]
                    if w is not None:
                        obs, etr = w
                        if obs is not None and now >= warmup:
                            for res, static, fn, ilo, ihi in obs:
                                if ilo <= now <= ihi:
                                    res.impulse_sum += (
                                        static if fn is None else fn(gview)
                                    )
                                    res.count += 1
                        if etr is not None:
                            path = act_paths[aid]
                            for tr in etr:
                                tr.record(now, path, gview)
                dirty_sort()
                tracking_on = False
                for aid2 in dirty:
                    if declared[aid2]:
                        ms = memo_slot[aid2]
                        if ms < 0:
                            en = preds[aid2](pviews[aid2])
                        else:
                            mdict = pred_memo[aid2]
                            en = mdict.get(values[ms])
                            if en is None:
                                en = preds[aid2](pviews[aid2])
                                mdict[values[ms]] = en
                    else:
                        # The tracking toggle is set lazily on the first
                        # undeclared activity: a fully declared dirty set
                        # (the common case on annotated models) never
                        # pays the attribute stores.
                        if not tracking_on:
                            vector.tracking = True
                            tracking_on = True
                        if reads:
                            reads_clear()
                        en = preds[aid2](views[aid2])
                        if reads:
                            known = act_deps[aid2]
                            for slot in reads:
                                if slot not in known:
                                    known.add(slot)
                                    dep_lists[slot].append(aid2)
                                    dep_journal.append((aid2, slot))
                    if not is_timed[aid2]:
                        if en != enabled_instant[aid2]:
                            enabled_instant[aid2] = en
                            if en:
                                inst_enabled.add(aid2)
                            else:
                                inst_enabled.discard(aid2)
                        continue
                    tok2 = token[aid2]
                    if en:
                        if not tok2 & 1:
                            tok2 += 1
                        elif reactivate[aid2]:
                            tok2 += 2
                        else:
                            continue
                        token[aid2] = tok2
                        sm = samplers[aid2]
                        if sm is not None:
                            bs = batched_of[aid2]
                            if bs is None:
                                delay = sm(rng)
                            else:
                                # inlined BatchedSampler.sample fast
                                # path: identical pop; an empty or
                                # exhausted buffer refills via the call
                                bpos = bs._pos
                                bbuf = bs._buffer
                                if bbuf is not None and bpos < bs.batch_size:
                                    bs._pos = bpos + 1
                                    delay = bbuf[bpos]
                                else:
                                    delay = sm(rng)
                        else:
                            if tracking_on:
                                vector.tracking = False
                                tracking_on = False
                            delay = dyn_sample(aid2)
                        ft = now + delay
                        # beyond-horizon activations never enter the heap
                        # (see update_timed: bit-identical trajectories)
                        if ft <= until:
                            if pending is None:
                                pending = (ft, seq, aid2, tok2)
                            else:
                                heappush(heap, pending)
                                pending = (ft, seq, aid2, tok2)
                        seq += 1
                    elif tok2 & 1:
                        token[aid2] = tok2 + 1
                if tracking_on:
                    vector.tracking = False
                dirty_clear()
                if inst_enabled:
                    # Rare: an instantaneous activity became enabled.
                    # Run the zero-time fixpoint through the shared
                    # settle(): it fires highest-priority-first,
                    # re-dirties, and re-settles until quiet, exactly as
                    # the reference loop would inside its settle(dirty).
                    settle(dirty)

                if has_tracked_obs:
                    if touched_r:
                        # Declared rewards refresh with a direct call (no
                        # tracked-discovery wrapper); value-identical to
                        # eval_rate, which takes the same branch.  The
                        # float() coercion is skipped when the function
                        # already returned a float (the overwhelming case).
                        for i in touched_r:
                            if rate_declared[i]:
                                v = rate_fns[i](rate_views[i])
                                rate_values[i] = (
                                    v if v.__class__ is float else float(v)
                                )
                            else:
                                rate_values[i] = eval_rate(i)
                        del touched_r[:]
                    if touched_t:
                        for i in touched_t:
                            val = eval_btrace(i)
                            if val != btrace_values[i]:
                                btrace_values[i] = val
                                binary_traces[i].observe(now, val)
                        del touched_t[:]
                    obs_epoch += 1

                if has_stop and stop_predicate(gview):
                    stopped_early = True
                    break
        else:
            # Fast path: no instants, no marking observers, no stop
            # predicate — settle reduces to one pass of timed updates,
            # fully inlined (mirrors fire() + update_timed(); keep the
            # sites in sync).  last_t is not maintained: with no rate
            # rewards the final integrate_to() is a no-op.
            #
            # The most recent activation is held in ``pending`` instead of
            # being pushed immediately: the next loop iteration fetches
            # min(heap ∪ {pending}) with a single heappushpop sift, which
            # is what push-then-pop would return, at nearly half the cost.
            reads_clear = reads.clear
            changed_pop = changed.pop
            dirty_clear = dirty.clear
            dirty_sort = dirty.sort
            dirty_append = dirty.append
            heappushpop = heapq.heappushpop
            pending: tuple[float, int, int, int] | None = None
            while True:
                if pending is not None:
                    ftime, _s, aid, tok = heappushpop(heap, pending)
                    pending = None
                elif heap:
                    ftime, _s, aid, tok = heappop(heap)
                else:
                    break
                if tok != token[aid]:
                    continue
                if ftime > until:
                    break
                now = ftime
                token[aid] = tok + 1

                n_events += 1
                epoch += 1
                stamp[aid] = epoch
                dirty_append(aid)
                ops = live_kernels[aid]
                if ops is not None:
                    # Compiled gate-write kernel (see the observed loop):
                    # precomputed slot ops, dependents marked in place.
                    n_kernel_effects += 1
                    for slot, is_add, amount, dl in ops:
                        if is_add:
                            v = values[slot] + amount
                            if v < 0:
                                _kernel_negative(aid, slot, v)
                            values[slot] = v
                        elif values[slot] != amount:
                            values[slot] = amount
                        else:
                            continue
                        if dl:
                            for d in dl:
                                if stamp[d] != epoch:
                                    stamp[d] = epoch
                                    dirty_append(d)
                elif has_case[aid]:
                    # Compiled case/guard kernel (see the observed loop).
                    cops = select_case_branch(aid)
                    if cops is not None:
                        n_case_kernels += 1
                        for slot, is_add, amount, dl in cops:
                            if is_add:
                                v = values[slot] + amount
                                if v < 0:
                                    _kernel_negative(aid, slot, v)
                                values[slot] = v
                            elif values[slot] != amount:
                                values[slot] = amount
                            else:
                                continue
                            if dl:
                                for d in dl:
                                    if stamp[d] != epoch:
                                        stamp[d] = epoch
                                        dirty_append(d)
                    else:
                        while changed:
                            for d in dep_lists[changed_pop()]:
                                if stamp[d] != epoch:
                                    stamp[d] = epoch
                                    dirty_append(d)
                else:
                    kops = kernels[aid]
                    if kops is None:
                        view = views[aid]
                        fn1 = plain1[aid]
                        if fn1 is not None:
                            fn1(view, rng)
                        else:
                            igs = ig_fns[aid]
                            if igs:
                                for fn in igs:
                                    fn(view, rng)
                            ct = case_tab[aid]
                            if ct is not None:
                                fire_cases(aid, view, ct)
                            for og in og_fns[aid]:
                                og(view, rng)
                    else:
                        verify_kernel(aid)
                        kern_ok[aid] = True
                        live_kernels[aid] = kops
                    while changed:
                        for d in dep_lists[changed_pop()]:
                            if stamp[d] != epoch:
                                stamp[d] = epoch
                                dirty_append(d)
                if has_observers:
                    w = act_watch[aid]
                    if w is not None:
                        obs, etr = w
                        if obs is not None and now >= warmup:
                            for res, static, fn, ilo, ihi in obs:
                                if ilo <= now <= ihi:
                                    res.impulse_sum += (
                                        static if fn is None else fn(gview)
                                    )
                                    res.count += 1
                        if etr is not None:
                            path = act_paths[aid]
                            for tr in etr:
                                tr.record(now, path, gview)
                dirty_sort()
                tracking_on = False
                for aid2 in dirty:
                    if declared[aid2]:
                        ms = memo_slot[aid2]
                        if ms < 0:
                            en = preds[aid2](pviews[aid2])
                        else:
                            mdict = pred_memo[aid2]
                            en = mdict.get(values[ms])
                            if en is None:
                                en = preds[aid2](pviews[aid2])
                                mdict[values[ms]] = en
                    else:
                        # lazy tracking toggle (see the observed loop)
                        if not tracking_on:
                            vector.tracking = True
                            tracking_on = True
                        if reads:
                            reads_clear()
                        en = preds[aid2](views[aid2])
                        if reads:
                            known = act_deps[aid2]
                            for slot in reads:
                                if slot not in known:
                                    known.add(slot)
                                    dep_lists[slot].append(aid2)
                                    dep_journal.append((aid2, slot))
                    tok2 = token[aid2]
                    if en:
                        if not tok2 & 1:
                            tok2 += 1
                        elif reactivate[aid2]:
                            tok2 += 2
                        else:
                            continue
                        token[aid2] = tok2
                        sm = samplers[aid2]
                        if sm is not None:
                            bs = batched_of[aid2]
                            if bs is None:
                                delay = sm(rng)
                            else:
                                # inlined BatchedSampler.sample fast
                                # path: identical pop; an empty or
                                # exhausted buffer refills via the call
                                bpos = bs._pos
                                bbuf = bs._buffer
                                if bbuf is not None and bpos < bs.batch_size:
                                    bs._pos = bpos + 1
                                    delay = bbuf[bpos]
                                else:
                                    delay = sm(rng)
                        else:
                            if tracking_on:
                                vector.tracking = False
                                tracking_on = False
                            delay = dyn_sample(aid2)
                        ft = now + delay
                        # beyond-horizon activations never enter the heap
                        # (see update_timed: bit-identical trajectories)
                        if ft <= until:
                            if pending is None:
                                pending = (ft, seq, aid2, tok2)
                            else:
                                heappush(heap, pending)
                                pending = (ft, seq, aid2, tok2)
                        seq += 1
                    elif tok2 & 1:
                        token[aid2] = tok2 + 1
                if tracking_on:
                    vector.tracking = False
                dirty_clear()

        self.last_kernel_effects = n_kernel_effects
        self.last_case_kernels = n_case_kernels
        self.last_python_effects = n_events - n_kernel_effects - n_case_kernels
        end_time = now if stopped_early else until
        integrate_to(end_time)
        # NaN/inf accumulation guard: a reward expression that produced a
        # non-finite value poisons every downstream statistic silently
        # (means, CIs, sweep tables), so fail the run loudly instead.
        # Once per run, not per event — free on the hot path.
        for i in range(n_rates):
            acc = rate_integrals[i]
            if not math.isfinite(acc):
                raise SimulationError(
                    f"rate reward {rate_rewards[i].name!r} accumulated a "
                    f"non-finite integral ({acc!r}); the reward expression "
                    "produced NaN or inf during the run"
                )
            rate_results[i].integral = acc
        for r in impulse_rewards:
            _isum = results[r.name].impulse_sum
            if not math.isfinite(_isum):
                raise SimulationError(
                    f"impulse reward {r.name!r} accumulated a non-finite "
                    f"sum ({_isum!r}); an impulse value evaluated to NaN "
                    "or inf during the run"
                )
        if probe_pos < n_probes and not stopped_early:
            # The marking is constant from the last event to ``until``,
            # so remaining probes read the current values.  After an
            # early stop the trajectory beyond ``end_time`` is undefined
            # and later probes stay unrecorded.
            while probe_pos < n_probes:
                pt, pi = probe_list[probe_pos]
                rate_results[pi].instants.append((pt, rate_values[pi]))
                probe_pos += 1
        duration = max(end_time - warmup, 0.0)
        for res in results.values():
            res.duration = duration
        # Windowed rewards observe their effective window, not the run's.
        for i, r in enumerate(rate_rewards):
            if r.window is not None:
                lo = rate_lo[i]
                b = end_time if end_time < rate_hi[i] else rate_hi[i]
                rate_results[i].duration = b - lo if b > lo else 0.0
        for r in impulse_rewards:
            if r.window is not None:
                w0, w1 = r.window
                lo = warmup if warmup > w0 else w0
                hi = until if until < w1 else w1
                b = end_time if end_time < hi else hi
                results[r.name].duration = b - lo if b > lo else 0.0
        for tr in binary_traces:
            tr.finish(end_time)

        return RunResult(
            final_time=end_time,
            duration=duration,
            n_events=n_events,
            rewards=results,
            traces=trace_map,
            stopped_early=stopped_early,
            _final_values=list(values),
            _paths=self.model.paths,
        )
