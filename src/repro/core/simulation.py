"""Discrete-event simulator for flattened stochastic activity networks.

The engine executes the standard SAN semantics:

* a timed activity is *activated* when its input-gate predicates become
  true: its delay is sampled and a completion event is scheduled;
* if the activity becomes disabled before completing, the event is
  cancelled (lazy cancellation via activation tokens);
* on completion the input-gate functions run, a case is selected, and the
  output-gate functions run;
* instantaneous activities fire, highest priority first, until none is
  enabled, before simulated time advances again.

Enabling checks are *incremental*: the simulator learns which marking slots
each predicate reads (the views track reads) and re-evaluates an activity
only when one of those slots changes.  This makes large replicated models
(the 4800-disk petascale fleet) cheap to simulate: an event touches a few
places and therefore re-evaluates a few activities, independent of model
size.

Reward variables (:mod:`repro.core.rewards`) and traces
(:mod:`repro.core.trace`) are observed with the same dependency machinery.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from .composition import FlatModel
from .distributions import Distribution
from .errors import InstantaneousLoopError, SimulationError
from .places import LocalView, MarkingVector
from .rewards import ImpulseReward, RateReward, RewardResult
from .rng import make_generator
from .san import INSTANT, TIMED
from .trace import BinaryTrace, EventTrace

__all__ = ["Simulator", "RunResult"]


@dataclass
class RunResult:
    """Outcome of one simulation run.

    Index with the reward name: ``result["cfs_availability"].time_average``.
    """

    final_time: float
    duration: float
    n_events: int
    rewards: dict[str, RewardResult]
    traces: dict[str, BinaryTrace | EventTrace]
    stopped_early: bool
    _final_values: list[int] = field(default_factory=list, repr=False)
    _paths: dict[str, int] = field(default_factory=dict, repr=False)

    def __getitem__(self, name: str) -> RewardResult:
        try:
            return self.rewards[name]
        except KeyError:
            raise KeyError(
                f"unknown reward {name!r}; available: {sorted(self.rewards)}"
            ) from None

    def place(self, path: str) -> int:
        """Final marking of a place (by path or alias)."""
        try:
            return self._final_values[self._paths[path]]
        except KeyError:
            raise KeyError(f"unknown place path {path!r}") from None

    def trace(self, name: str) -> BinaryTrace | EventTrace:
        """Recorded trace by name."""
        try:
            return self.traces[name]
        except KeyError:
            raise KeyError(
                f"unknown trace {name!r}; available: {sorted(self.traces)}"
            ) from None


class Simulator:
    """Executes runs of a :class:`~repro.core.composition.FlatModel`.

    The simulator is reusable: dependency maps discovered during one run
    carry over to the next (they are conservative supersets, so correctness
    is unaffected and later runs start warm).

    Parameters
    ----------
    model:
        Flattened model to execute.
    base_seed:
        Root entropy; run ``k`` (the ``k``-th call to :meth:`run` without an
        explicit seed) uses an independent stream derived from it.
    max_instant_chain:
        Fixpoint guard: maximum zero-time firings at a single instant before
        :class:`~repro.core.errors.InstantaneousLoopError` is raised.
    """

    def __init__(
        self, model: FlatModel, base_seed: int = 0, max_instant_chain: int = 100_000
    ) -> None:
        self.model = model
        self.base_seed = int(base_seed)
        self.max_instant_chain = int(max_instant_chain)
        self._run_counter = 0

        acts = model.activities
        self._n_acts = len(acts)
        self._timed_ids = [a.ident for a in acts if a.definition.kind == TIMED]
        self._instant_ids = [a.ident for a in acts if a.definition.kind == INSTANT]
        # place slot -> activity ids whose enabling may depend on it
        self._dep_map: dict[int, set[int]] = {}
        self._act_deps: list[set[int]] = [set() for _ in range(self._n_acts)]
        # cache: impulse/trace pattern string -> matching activity ids
        self._pattern_cache: dict[str, list[int]] = {}

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _matching_ids(self, pattern: str | Callable[[str], bool]) -> list[int]:
        if callable(pattern):
            return [
                a.ident for a in self.model.activities if pattern(a.path)
            ]
        cached = self._pattern_cache.get(pattern)
        if cached is None:
            from .patterns import path_match

            cached = [
                a.ident
                for a in self.model.activities
                if path_match(a.path, pattern)
            ]
            self._pattern_cache[pattern] = cached
        return cached

    def _register_deps(self, aid: int, reads: set[int]) -> None:
        known = self._act_deps[aid]
        new = reads - known
        if new:
            known |= new
            dep_map = self._dep_map
            for slot in new:
                dep_map.setdefault(slot, set()).add(aid)

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def run(
        self,
        until: float,
        *,
        warmup: float = 0.0,
        rewards: Sequence[RateReward | ImpulseReward] = (),
        traces: Sequence[BinaryTrace | EventTrace] = (),
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        stop_predicate: Callable[[LocalView], bool] | None = None,
    ) -> RunResult:
        """Simulate one trajectory on ``[0, until]`` hours.

        Parameters
        ----------
        until:
            End of simulated time.
        warmup:
            Rewards accumulate only on ``[warmup, until]`` (traces record
            the full window).
        rewards / traces:
            Observers for this run.
        seed / rng:
            Explicit stream control; by default run ``k`` uses the stream
            derived from ``(base_seed, "run", k)``.
        stop_predicate:
            Optional early-stop condition evaluated on the global view
            after each event.
        """
        if until <= 0.0:
            raise SimulationError(f"until must be positive, got {until}")
        if not 0.0 <= warmup < until:
            raise SimulationError(
                f"warmup must lie in [0, until), got warmup={warmup}, until={until}"
            )
        if rng is None:
            if seed is None:
                seed_path: tuple = ("run", self._run_counter)
                rng = make_generator(self.base_seed, *seed_path)
            else:
                rng = make_generator(int(seed))
        self._run_counter += 1

        model = self.model
        vector = model.new_marking()
        views = [
            LocalView(vector, act.index) for act in model.activities
        ]
        gview = model.global_view(vector)
        defs = [act.definition for act in model.activities]

        token = [0] * self._n_acts
        active = [False] * self._n_acts  # timed activity has a live event
        heap: list[tuple[float, int, int, int]] = []
        seq = 0
        now = 0.0
        n_events = 0

        # -- reward / trace wiring ------------------------------------
        rate_rewards: list[RateReward] = []
        impulse_rewards: list[ImpulseReward] = []
        for r in rewards:
            if isinstance(r, RateReward):
                rate_rewards.append(r)
            elif isinstance(r, ImpulseReward):
                impulse_rewards.append(r)
            else:
                raise SimulationError(f"unsupported reward object: {r!r}")

        results: dict[str, RewardResult] = {}
        for r in rate_rewards:
            if r.name in results:
                raise SimulationError(f"duplicate reward name {r.name!r}")
            results[r.name] = RewardResult(r.name, "rate")
        for r in impulse_rewards:
            if r.name in results:
                raise SimulationError(f"duplicate reward name {r.name!r}")
            results[r.name] = RewardResult(r.name, "impulse")

        binary_traces: list[BinaryTrace] = []
        event_traces: list[EventTrace] = []
        trace_map: dict[str, BinaryTrace | EventTrace] = {}
        for tr in traces:
            if tr.name in trace_map:
                raise SimulationError(f"duplicate trace name {tr.name!r}")
            trace_map[tr.name] = tr
            tr.reset()
            if isinstance(tr, BinaryTrace):
                binary_traces.append(tr)
            elif isinstance(tr, EventTrace):
                event_traces.append(tr)
            else:
                raise SimulationError(f"unsupported trace object: {tr!r}")

        impulse_by_act: dict[int, list[ImpulseReward]] = {}
        for r in impulse_rewards:
            ids = self._matching_ids(r.activity_pattern)
            if not ids:
                raise SimulationError(
                    f"impulse reward {r.name!r} matches no activity "
                    f"(pattern {r.activity_pattern!r})"
                )
            for aid in ids:
                impulse_by_act.setdefault(aid, []).append(r)
        etrace_by_act: dict[int, list[EventTrace]] = {}
        for tr in event_traces:
            ids = self._matching_ids(tr.activity_pattern)
            if not ids:
                raise SimulationError(
                    f"event trace {tr.name!r} matches no activity "
                    f"(pattern {tr.activity_pattern!r})"
                )
            for aid in ids:
                etrace_by_act.setdefault(aid, []).append(tr)

        # rate-reward incremental state
        rate_values: list[float] = [0.0] * len(rate_rewards)
        rate_deps: dict[int, set[int]] = {}
        rate_dep_sets: list[set[int]] = [set() for _ in rate_rewards]
        btrace_values: list[bool] = [False] * len(binary_traces)
        btrace_deps: dict[int, set[int]] = {}
        btrace_dep_sets: list[set[int]] = [set() for _ in binary_traces]

        def eval_rate(i: int) -> float:
            vector.begin_tracking()
            try:
                val = float(rate_rewards[i].function(gview))
            finally:
                reads = vector.end_tracking()
            new = reads - rate_dep_sets[i]
            if new:
                rate_dep_sets[i] |= new
                for slot in new:
                    rate_deps.setdefault(slot, set()).add(i)
            return val

        def eval_btrace(i: int) -> bool:
            vector.begin_tracking()
            try:
                val = bool(binary_traces[i].function(gview))
            finally:
                reads = vector.end_tracking()
            new = reads - btrace_dep_sets[i]
            if new:
                btrace_dep_sets[i] |= new
                for slot in new:
                    btrace_deps.setdefault(slot, set()).add(i)
            return val

        # -- enabling machinery ----------------------------------------
        def eval_enabled(aid: int) -> bool:
            vector.begin_tracking()
            try:
                val = defs[aid].is_enabled(views[aid])
            finally:
                reads = vector.end_tracking()
            self._register_deps(aid, reads)
            return val

        def sample_delay(aid: int) -> float:
            dist = defs[aid].distribution
            if not isinstance(dist, Distribution):
                vector.begin_tracking()
                try:
                    dist = dist(views[aid])
                finally:
                    reads = vector.end_tracking()
                self._register_deps(aid, reads)
                if not isinstance(dist, Distribution):
                    raise SimulationError(
                        f"activity {self.model.activities[aid].path!r}: "
                        "distribution callable did not return a Distribution"
                    )
            delay = dist.sample(rng)
            if delay < 0.0 or np.isnan(delay):
                raise SimulationError(
                    f"activity {self.model.activities[aid].path!r} sampled "
                    f"invalid delay {delay!r}"
                )
            return float(delay)

        def activate(aid: int) -> None:
            nonlocal seq
            token[aid] += 1
            active[aid] = True
            heapq.heappush(heap, (now + sample_delay(aid), seq, aid, token[aid]))
            seq += 1

        def deactivate(aid: int) -> None:
            token[aid] += 1
            active[aid] = False

        def update_timed(aid: int) -> None:
            enabled_now = eval_enabled(aid)
            if enabled_now and not active[aid]:
                activate(aid)
            elif not enabled_now and active[aid]:
                deactivate(aid)
            elif enabled_now and active[aid] and defs[aid].reactivate:
                deactivate(aid)
                activate(aid)

        def complete(aid: int) -> set[int]:
            """Run gate functions and cases; return ids of dirty activities."""
            nonlocal n_events
            n_events += 1
            view = views[aid]
            d = defs[aid]
            for ig in d.input_gates:
                ig.function(view, rng)
            if d.cases:
                probs = [c.probability_in(view) for c in d.cases]
                total = sum(probs)
                if not (abs(total - 1.0) <= 1e-9):
                    raise SimulationError(
                        f"activity {self.model.activities[aid].path!r}: case "
                        f"probabilities sum to {total} at completion"
                    )
                u = rng.uniform()
                acc = 0.0
                chosen = d.cases[-1]
                for c, p in zip(d.cases, probs):
                    acc += p
                    if u <= acc:
                        chosen = c
                        break
                chosen.function(view, rng)
            for og in d.output_gates:
                og.function(view, rng)

            # Observers (post-state).
            if now >= warmup:
                for r in impulse_by_act.get(aid, ()):
                    value = r.value(gview) if callable(r.value) else float(r.value)
                    res = results[r.name]
                    res.impulse_sum += value
                    res.count += 1
            for tr in etrace_by_act.get(aid, ()):
                tr.record(now, self.model.activities[aid].path, gview)

            changed = vector.drain_changed()
            all_changed.update(changed)
            dirty: set[int] = set()
            dep_map = self._dep_map
            for slot in changed:
                deps = dep_map.get(slot)
                if deps:
                    dirty |= deps
            return dirty

        def settle(initial_dirty: set[int], pending_instants: set[int]) -> None:
            """Update timed enabling and run the instantaneous fixpoint."""
            dirty = initial_dirty
            chain = 0
            while True:
                for aid in dirty:
                    if defs[aid].kind == TIMED:
                        update_timed(aid)
                    else:
                        pending_instants.add(aid)
                dirty = set()
                fired = False
                # Highest priority first; ties broken by definition order.
                best: tuple[int, int] | None = None
                for aid in pending_instants:
                    if eval_enabled(aid):
                        key = (-defs[aid].priority, aid)
                        if best is None or key < best:
                            best = key
                if best is not None:
                    aid = best[1]
                    chain += 1
                    if chain > self.max_instant_chain:
                        raise InstantaneousLoopError(
                            f"more than {self.max_instant_chain} instantaneous "
                            f"firings at t={now}; last activity "
                            f"{self.model.activities[aid].path!r}"
                        )
                    dirty = complete(aid)
                    fired = True
                if not fired:
                    break

        # -- initialization at t = 0 -----------------------------------
        all_changed: set[int] = set()
        for aid in self._timed_ids:
            if eval_enabled(aid):
                activate(aid)
        settle(set(), set(self._instant_ids))

        for i in range(len(rate_rewards)):
            rate_values[i] = eval_rate(i)
        for i, tr in enumerate(binary_traces):
            btrace_values[i] = eval_btrace(i)
            tr.observe(0.0, btrace_values[i])
        all_changed.clear()

        last_t = 0.0
        stopped_early = False

        def integrate_to(t: float) -> None:
            nonlocal last_t
            a = max(last_t, warmup)
            b = min(t, until)
            if b > a:
                for i, val in enumerate(rate_values):
                    if val != 0.0:
                        results[rate_rewards[i].name].integral += val * (b - a)
            last_t = t

        # -- event loop --------------------------------------------------
        while heap:
            ftime, _s, aid, tok = heapq.heappop(heap)
            if tok != token[aid] or not active[aid]:
                continue
            if ftime > until:
                break
            integrate_to(ftime)
            now = ftime
            active[aid] = False
            token[aid] += 1

            dirty = complete(aid)
            dirty.add(aid)  # the fired activity may re-enable itself
            settle(dirty, set())

            # Refresh rate rewards / binary traces whose inputs changed.
            if all_changed:
                touched_rewards: set[int] = set()
                touched_traces: set[int] = set()
                for slot in all_changed:
                    touched_rewards |= rate_deps.get(slot, set())
                    touched_traces |= btrace_deps.get(slot, set())
                for i in touched_rewards:
                    rate_values[i] = eval_rate(i)
                for i in touched_traces:
                    val = eval_btrace(i)
                    if val != btrace_values[i]:
                        btrace_values[i] = val
                        binary_traces[i].observe(now, val)
                all_changed.clear()

            if stop_predicate is not None and stop_predicate(gview):
                stopped_early = True
                break

        end_time = now if stopped_early else until
        integrate_to(end_time)
        duration = max(end_time - warmup, 0.0)
        for res in results.values():
            res.duration = duration
        for tr in binary_traces:
            tr.finish(end_time)

        return RunResult(
            final_time=end_time,
            duration=duration,
            n_events=n_events,
            rewards=results,
            traces=trace_map,
            stopped_early=stopped_early,
            _final_values=list(vector.values),
            _paths=self.model.paths,
        )
