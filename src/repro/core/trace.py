"""Trace observers: recorded trajectories of a simulation run.

Two kinds of traces feed the log generator (:mod:`repro.loggen`) and the
log-analysis loop-closure tests:

* :class:`BinaryTrace` watches a boolean function of the marking (e.g. "CFS
  is up") and records every transition, yielding up/down intervals — these
  become the outage windows of Table 1.
* :class:`EventTrace` records completions of matching activities (e.g.
  every disk replacement), yielding timestamped event streams — these
  become Table 4's disk-replacement log and Table 2's mount-failure storms.
"""

from __future__ import annotations

from dataclasses import dataclass
from .patterns import path_match
from typing import Callable, Iterator

from .errors import ModelError
from .places import LocalView

__all__ = ["BinaryTrace", "EventTrace", "Interval", "TraceEvent"]


@dataclass(frozen=True)
class Interval:
    """A maximal interval during which the watched condition was constant."""

    start: float
    end: float
    value: bool

    @property
    def length(self) -> float:
        """Interval length in hours."""
        return self.end - self.start


@dataclass(frozen=True)
class TraceEvent:
    """One recorded activity completion."""

    time: float
    activity: str
    payload: object = None


class BinaryTrace:
    """Records transitions of a boolean marking function.

    After a run, :meth:`intervals` yields the piecewise-constant trajectory
    and :meth:`downtime` / :meth:`uptime` / :meth:`availability` summarize
    it.  The simulator calls :meth:`observe`; user code only reads.
    """

    kind = "binary-trace"

    def __init__(self, name: str, function: Callable[[LocalView], bool]) -> None:
        if not callable(function):
            raise ModelError(f"binary trace {name!r}: function must be callable")
        self.name = name
        self.function = function
        self._transitions: list[tuple[float, bool]] = []
        self._end_time: float | None = None

    # -- simulator-facing ------------------------------------------------
    def reset(self) -> None:
        """Clear recorded state before a run."""
        self._transitions = []
        self._end_time = None

    def observe(self, time: float, value: bool) -> None:
        """Record the value at ``time`` if it changed."""
        if not self._transitions or self._transitions[-1][1] != value:
            self._transitions.append((time, bool(value)))

    def finish(self, end_time: float) -> None:
        """Close the trace at the end of the observation window."""
        self._end_time = end_time

    # -- user-facing -----------------------------------------------------
    @property
    def transitions(self) -> list[tuple[float, bool]]:
        """Raw (time, value) change points, first entry at window start."""
        return list(self._transitions)

    def intervals(self) -> list[Interval]:
        """Maximal constant-value intervals covering the window."""
        if self._end_time is None:
            raise ModelError(f"trace {self.name!r} has not been finished")
        out: list[Interval] = []
        for i, (t, v) in enumerate(self._transitions):
            end = (
                self._transitions[i + 1][0]
                if i + 1 < len(self._transitions)
                else self._end_time
            )
            if end > t:
                out.append(Interval(t, end, v))
        return out

    def intervals_where(self, value: bool) -> list[Interval]:
        """Intervals during which the condition equaled ``value``."""
        return [iv for iv in self.intervals() if iv.value == value]

    def uptime(self) -> float:
        """Total hours with the condition true."""
        return sum(iv.length for iv in self.intervals_where(True))

    def downtime(self) -> float:
        """Total hours with the condition false."""
        return sum(iv.length for iv in self.intervals_where(False))

    def availability(self) -> float:
        """Fraction of the window with the condition true."""
        up, down = self.uptime(), self.downtime()
        total = up + down
        return up / total if total > 0.0 else 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BinaryTrace({self.name!r}, transitions={len(self._transitions)})"


class EventTrace:
    """Records completions of activities matching a path pattern.

    ``payload`` (optional) is evaluated on the post-completion marking and
    stored with each event; use it to capture, e.g., how many compute nodes
    a transient network storm disconnected.
    """

    kind = "event-trace"

    def __init__(
        self,
        name: str,
        activity_pattern: str | Callable[[str], bool],
        payload: Callable[[LocalView], object] | None = None,
    ) -> None:
        self.name = name
        self.activity_pattern = activity_pattern
        self.payload = payload
        self._events: list[TraceEvent] = []

    def matches(self, activity_path: str) -> bool:
        """True if this trace observes the given activity instance."""
        if callable(self.activity_pattern):
            return bool(self.activity_pattern(activity_path))
        return path_match(activity_path, self.activity_pattern)

    # -- simulator-facing ------------------------------------------------
    def reset(self) -> None:
        """Clear recorded state before a run."""
        self._events = []

    def record(self, time: float, activity_path: str, view: LocalView) -> None:
        """Record one completion (payload evaluated on post-state)."""
        payload = self.payload(view) if self.payload is not None else None
        self._events.append(TraceEvent(time, activity_path, payload))

    # -- user-facing -----------------------------------------------------
    @property
    def events(self) -> list[TraceEvent]:
        """All recorded events in completion order."""
        return list(self._events)

    def times(self) -> list[float]:
        """Completion times only."""
        return [e.time for e in self._events]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventTrace({self.name!r}, events={len(self._events)})"
