"""Sequential (adaptive) stopping for replicated experiments.

The paper reports every simulation estimate with a confidence interval;
the natural follow-up question is *how many replications are enough*.
This module answers it with a classic sequential procedure: run
replications in deterministic **rounds**, and after each complete round
test whether the relative CI half-width of the watched metric(s) has
reached a target.  Two properties make the procedure safe to wire into
the engine's determinism contract:

* **Batch-means variance.**  The half-width is computed from the
  variance of *batch means* (complete batches of ``batch`` consecutive
  replications), not the raw samples.  For i.i.d. replications this is
  an unbiased (if slightly conservative, fewer degrees of freedom)
  variance estimate; its real job here is to pin the decision statistic
  to a **prefix-stable** function of the sample list: adding a round
  never changes the batch means of earlier rounds.
* **Deterministic schedule.**  Decisions happen only at round
  boundaries, and the round sizes are a pure function of the rule and
  the cap — never of wall-clock or worker count.  Since replication
  ``k`` always draws from seed-tree stream ``k`` (see
  :mod:`repro.core.parallel`), the sample sequence is identical however
  the rounds are executed, so the **stopping point is identical for
  serial, any ``n_jobs``, and resumed runs** (asserted float-for-float
  by ``tests/test_rare.py``).

Use via ``replicate_runs(..., stopping=StoppingRule(rel_ci=0.05))``,
``replication_cell(..., stopping=...)`` on sweep grids, or the CLI's
``--rel-ci`` flag.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
from scipy import stats

from .errors import SimulationError

__all__ = [
    "StoppingRule",
    "batch_means",
    "batch_means_variance",
    "batch_means_half_width",
]


def batch_means(samples: Sequence[float], batch: int) -> np.ndarray:
    """Means of consecutive complete batches of size ``batch``.

    A trailing incomplete batch is dropped, which is what keeps the
    statistic prefix-stable across rounds (rounds are multiples of the
    batch size, so in the sequential procedure nothing is ever dropped).
    """
    if batch < 1:
        raise SimulationError(f"batch size must be >= 1, got {batch}")
    arr = np.asarray(samples, dtype=float)
    n_batches = arr.size // batch
    if n_batches == 0:
        return np.empty(0)
    return arr[: n_batches * batch].reshape(n_batches, batch).mean(axis=1)


def batch_means_variance(samples: Sequence[float], batch: int) -> float:
    """Batch-means estimate of ``Var[sample mean]``.

    ``Var(batch means, ddof=1) / n_batches`` over complete batches.
    Requires at least two complete batches (otherwise there is no
    variance information and the result would be undefined); the
    estimate is non-negative, zero only for batchwise-constant samples,
    and invariant under shifting every sample by a constant.
    """
    means = batch_means(samples, batch)
    if means.size < 2:
        raise SimulationError(
            f"batch-means variance needs >= 2 complete batches, got "
            f"{means.size} (n={len(samples)}, batch={batch})"
        )
    return float(means.var(ddof=1) / means.size)


def batch_means_half_width(
    samples: Sequence[float], batch: int, confidence: float
) -> float:
    """Student-t CI half-width of the sample mean via batch means.

    Degrees of freedom come from the number of complete batches.
    Returns ``inf`` with fewer than two complete batches.
    """
    means = batch_means(samples, batch)
    if means.size < 2:
        return float("inf")
    se = math.sqrt(float(means.var(ddof=1)) / means.size)
    if se == 0.0:
        return 0.0
    tcrit = float(stats.t.ppf(0.5 + confidence / 2.0, df=means.size - 1))
    return tcrit * se


@dataclass(frozen=True)
class StoppingRule:
    """Relative-precision sequential stopping rule.

    Parameters
    ----------
    rel_ci:
        Target relative CI half-width: stop once
        ``half_width <= rel_ci * |mean|`` for every watched metric
        (half-width from :func:`batch_means_half_width`).  A metric with
        zero half-width (batchwise-constant samples) counts as
        satisfied regardless of its mean.
    metrics:
        Names of the metrics the rule watches; empty (default) watches
        every collected metric.  Watch an explicit subset when the study
        carries auxiliary metrics (e.g. impulse counters that may be
        identically zero and therefore can never reach a *relative*
        target).
    confidence:
        CI level for the half-width test.
    min_replications:
        Replications in the first round (the earliest decision point).
        Rounded up to two complete batches if smaller, since the
        batch-means statistic needs them.
    batch:
        Batch size for the batch-means variance *and* the round size
        after the first round.
    """

    rel_ci: float
    metrics: tuple[str, ...] = ()
    confidence: float = 0.95
    min_replications: int = 16
    batch: int = 4

    def __post_init__(self) -> None:
        if not 0.0 < self.rel_ci:
            raise SimulationError(f"rel_ci must be > 0, got {self.rel_ci}")
        if not 0.0 < self.confidence < 1.0:
            raise SimulationError(
                f"confidence must lie in (0, 1), got {self.confidence}"
            )
        if self.batch < 1:
            raise SimulationError(f"batch must be >= 1, got {self.batch}")
        if self.min_replications < 1:
            raise SimulationError(
                f"min_replications must be >= 1, got {self.min_replications}"
            )
        if not isinstance(self.metrics, tuple):
            object.__setattr__(self, "metrics", tuple(self.metrics))

    # ------------------------------------------------------------------
    # deterministic round schedule
    # ------------------------------------------------------------------
    def first_round(self, cap: int) -> int:
        """Size of the first round (capped)."""
        return min(int(cap), max(self.min_replications, 2 * self.batch))

    def next_round(self, n_done: int, cap: int) -> int:
        """Replications in the next round; 0 when the cap is exhausted.

        A pure function of ``(rule, n_done, cap)`` — the schedule cannot
        depend on wall-clock or worker count, which is what makes the
        stopping point identical across serial/parallel/resumed runs.
        """
        cap = int(cap)
        if n_done >= cap:
            return 0
        if n_done == 0:
            return self.first_round(cap)
        return min(self.batch, cap - n_done)

    # ------------------------------------------------------------------
    # decision
    # ------------------------------------------------------------------
    def satisfied(self, samples: Mapping[str, Sequence[float]]) -> bool:
        """True when every watched metric meets the relative target."""
        names = self.metrics or tuple(samples)
        for name in names:
            try:
                values = samples[name]
            except KeyError:
                raise SimulationError(
                    f"stopping rule watches unknown metric {name!r}; "
                    f"collected: {sorted(samples)}"
                ) from None
            half = batch_means_half_width(values, self.batch, self.confidence)
            if half == 0.0:
                continue
            mean = float(np.mean(np.asarray(values, dtype=float)))
            if not math.isfinite(half) or half > self.rel_ci * abs(mean):
                return False
        return True
