"""Parallel replication execution across processes.

Replications are embarrassingly parallel: replication ``k`` draws from
the independent stream ``(base_seed, "run", k)`` of the seed tree
(:mod:`repro.core.rng`), so results do not depend on *where* or *in what
order* replications execute.  This module exploits that with a
:class:`concurrent.futures.ProcessPoolExecutor`: stream ``k`` is always
assigned to replication ``k`` regardless of worker scheduling, which
makes the per-metric sample lists **bit-identical to serial execution
for any number of jobs**.

Two ways to get a model into the workers:

* **Spec mode** — pass a :class:`ReplicationSpec` naming a module-level
  factory plus picklable arguments; each worker process rebuilds the
  simulator/rewards/metrics once from the spec (works with any process
  start method).  :meth:`repro.cfs.cluster.ClusterModel.replication_spec`
  is the canonical example.
* **Inherit mode** — no spec: the parent's simulator, reward objects and
  metric closures are handed to workers through ``fork`` copy-on-write
  memory (gate functions and reward lambdas are not picklable, so this
  is the only way to parallelize an ad-hoc model).  Requires a platform
  with the ``fork`` start method (Linux, macOS with default disabled —
  a :class:`~repro.core.errors.SimulationError` explains the fallback).

Either way, a built setup is **reused, never rebuilt**, within one
process: :func:`build_setup_cached` keeps a small per-process LRU of
setups keyed by their spec, so repeated pools, sweep cells and nested
replication pools pay model construction + table compilation once per
process (compile-once/replicate-many, see ``docs/performance.md``
Layer 6).  Reuse is bit-identical to fresh construction: a cache hit
resets the simulator's stream counter
(:meth:`~repro.core.simulation.Simulator.reset_streams`), and every
other carry-over (verification flags, predicate memos, discovered
dependencies) is trajectory-neutral by the engine's contracts.  With
the ``fork`` start method the parent additionally *seeds* the cache
with its own already-built setup before a spec-mode pool forks, so the
workers inherit the compiled program through copy-on-write memory and
skip the rebuild entirely.

Use via :func:`repro.core.experiment.replicate_runs` with ``n_jobs``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from .errors import SimulationError
from .resilience import ChaosPolicy, RetryPolicy, run_tasks_supervised
from .rng import make_generator

__all__ = [
    "ReplicationSetup",
    "ReplicationSpec",
    "build_setup_cached",
    "pool_context",
    "resolve_n_jobs",
    "run_replications_adaptive",
    "run_replications_parallel",
]


@dataclass(frozen=True)
class ReplicationSetup:
    """Everything a worker needs to execute replications of one study.

    Attributes
    ----------
    simulator:
        A :class:`~repro.core.simulation.Simulator` (its ``base_seed`` and
        ``sample_batch`` configuration define the study).
    rewards:
        Reward observers applied to every replication.
    traces_factory:
        Optional factory for per-replication trace observers.
    extra_metrics:
        Additional ``name -> f(RunResult)`` scalars.
    """

    simulator: object
    rewards: Sequence = ()
    traces_factory: Callable | None = None
    extra_metrics: Mapping[str, Callable] | None = None

    def metrics(self) -> dict[str, Callable]:
        """Full metric table (defaults derived from the rewards)."""
        from .experiment import build_metrics

        return build_metrics(self.rewards, self.extra_metrics)


@dataclass(frozen=True)
class ReplicationSpec:
    """Picklable recipe for rebuilding a :class:`ReplicationSetup`.

    ``factory`` must be an importable module-level callable returning a
    :class:`ReplicationSetup`; ``args``/``kwargs`` must be picklable.
    Each worker process calls ``factory(*args, **kwargs)`` exactly once
    and reuses the result for all replications it executes.
    """

    factory: Callable[..., ReplicationSetup]
    args: tuple = ()
    kwargs: Mapping = field(default_factory=dict)

    def build(self) -> ReplicationSetup:
        """Materialize the setup (called in the worker process)."""
        setup = self.factory(*self.args, **dict(self.kwargs))
        if not isinstance(setup, ReplicationSetup):
            raise SimulationError(
                f"replication spec factory {self.factory!r} returned "
                f"{type(setup).__name__}, expected ReplicationSetup"
            )
        return setup


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` request (``None``/1 serial, -1 = all cores)."""
    if n_jobs is None:
        return 1
    n = int(n_jobs)
    if n == -1:
        return max(os.cpu_count() or 1, 1)
    if n < 1:
        raise SimulationError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return n


# ----------------------------------------------------------------------
# per-process setup reuse (compile-once/replicate-many)
# ----------------------------------------------------------------------
# Small LRU of built setups keyed by their pickled spec.  Lives at module
# level so it survives across pools within one process (sweep workers
# execute many cells), and so ``fork`` children inherit a parent-seeded
# entry through copy-on-write memory.  Bounded: petascale setups hold a
# ~12k-place compiled program each.
_SETUP_CACHE: OrderedDict[bytes, tuple[ReplicationSetup, dict]] = OrderedDict()
_SETUP_CACHE_MAX = 4


def _spec_key(spec: ReplicationSpec) -> bytes:
    """Deterministic per-process cache key for a spec.

    Specs are picklable by contract; equal specs built the same way
    pickle to equal bytes within one interpreter, and a spurious
    mismatch merely costs a rebuild.
    """
    return pickle.dumps(
        (spec.factory, spec.args, sorted(spec.kwargs.items()))
    )


def build_setup_cached(
    spec: ReplicationSpec,
) -> tuple[ReplicationSetup, dict[str, Callable]]:
    """Build a spec's setup (and metric table), reusing a prior build.

    On a cache hit the setup's simulator stream counter is reset, so the
    returned setup replays exactly the runs a freshly built one would —
    reuse-equals-fresh is what lets sweep cells and replication pools
    share one compiled program per process without perturbing results
    (every other carried-over state is trajectory-neutral; see
    :meth:`~repro.core.simulation.Simulator.reset_streams`).
    """
    key = _spec_key(spec)
    entry = _SETUP_CACHE.get(key)
    if entry is None:
        setup = spec.build()
        entry = (setup, setup.metrics())
        _SETUP_CACHE[key] = entry
        while len(_SETUP_CACHE) > _SETUP_CACHE_MAX:
            _SETUP_CACHE.popitem(last=False)
    else:
        _SETUP_CACHE.move_to_end(key)
        entry[0].simulator.reset_streams()
    return entry


def _seed_setup_cache(spec: ReplicationSpec, setup: ReplicationSetup) -> bytes | None:
    """Pre-seed the cache with the parent's live setup before forking.

    Returns the key to drop afterwards (the entry borrows the caller's
    simulator, so it must not outlive the pool in the parent), or
    ``None`` when the spec was already cached.
    """
    key = _spec_key(spec)
    if key in _SETUP_CACHE:
        return None
    _SETUP_CACHE[key] = (setup, setup.metrics())
    return key


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
# In spec mode the initializer builds the setup from the pickled spec
# (through the per-process cache, which a forked child may inherit
# pre-seeded); in inherit mode the parent stores it here *before*
# forking the pool, and the child reads the copy-on-write global.
_WORKER_SETUP: ReplicationSetup | None = None
_WORKER_METRICS: dict[str, Callable] | None = None


def _init_worker(spec: ReplicationSpec | None) -> None:
    global _WORKER_SETUP, _WORKER_METRICS
    if spec is not None:
        _WORKER_SETUP, _WORKER_METRICS = build_setup_cached(spec)
        return
    if _WORKER_SETUP is None:  # pragma: no cover - defensive
        raise SimulationError(
            "worker has no replication setup (no spec given and nothing "
            "inherited via fork)"
        )
    _WORKER_METRICS = _WORKER_SETUP.metrics()


def _run_one(task: tuple) -> tuple[int, dict[str, float]]:
    """Execute replication ``k`` on stream ``(base_seed, 'run', k)``."""
    base_seed, until, warmup, k = task
    setup = _WORKER_SETUP
    metrics = _WORKER_METRICS
    sim = setup.simulator
    rng = make_generator(base_seed, "run", k)
    traces = (
        tuple(setup.traces_factory())
        if setup.traces_factory is not None
        else ()
    )
    result = sim.run(
        until, warmup=warmup, rewards=setup.rewards, traces=traces, rng=rng
    )
    return k, {name: float(fn(result)) for name, fn in metrics.items()}


def _run_chunk(payload: tuple) -> list[tuple[int, dict[str, float]]]:
    """Execute one contiguous chunk of replications in this worker.

    A chunk is the supervised unit of work: the RNG stream of each
    replication is derived positionally from its index ``k``, never from
    execution history, so a chunk rerun after a worker crash — in a
    rebuilt pool or serially in the parent — reproduces exactly the
    samples the uninterrupted run would have produced.
    """
    base_seed, until, warmup, ks = payload
    return [_run_one((base_seed, until, warmup, k)) for k in ks]


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


_FALLBACK_WARNED = False


def _warn_no_fork(default_method: str) -> None:
    """Once per process: the silent fork->default fallback is now loud."""
    global _FALLBACK_WARNED
    if _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED = True
    warnings.warn(
        "the 'fork' start method is unavailable on this platform; worker "
        f"pools use the {default_method!r} start method instead.  Workers "
        "therefore rebuild their model from the pickled spec (no "
        "copy-on-write inheritance of the parent's compiled program or of "
        "in-process caches), and inherit-mode replicate_runs — which "
        "requires fork to hand closures to workers — degrades to serial "
        "in-process execution.",
        RuntimeWarning,
        stacklevel=3,
    )


def pool_context():
    """Multiprocessing context for worker pools over picklable tasks.

    Prefers the ``fork`` start method for cheap start-up and falls back
    to the platform default — with a once-per-process
    :class:`RuntimeWarning` naming the active start method and its
    consequences (no copy-on-write program inheritance; inherit mode
    degrades to serial).  Used by spec-mode replication pools and by the
    sweep-cell scheduler (:mod:`repro.experiments.sweep`).
    """
    ctx = _fork_context()
    if ctx is None:
        ctx = multiprocessing.get_context()
        _warn_no_fork(ctx.get_start_method())
    return ctx


def run_replications_parallel(
    *,
    until: float,
    warmup: float,
    base_seed: int,
    counter_base: int,
    n_replications: int,
    n_jobs: int,
    spec: ReplicationSpec | None = None,
    setup: ReplicationSetup | None = None,
    retry: RetryPolicy | None = None,
    chaos: ChaosPolicy | None = None,
    serial_fallback: bool = True,
) -> dict[str, list[float]]:
    """Run replications ``counter_base .. counter_base + n - 1`` in a pool.

    Returns per-metric sample lists in replication order — bit-identical
    to running the same streams serially.  ``spec`` / ``setup`` select
    the worker bootstrap mode: ``setup`` alone inherits the parent's
    objects via ``fork`` (required); ``spec`` works everywhere.  With
    **both**, workers bootstrap from the spec but — under ``fork`` —
    inherit the parent's already-built ``setup`` through the pre-seeded
    per-process cache, skipping model construction + compilation
    entirely (the caller vouches that ``setup`` realizes ``spec``, the
    same contract as ``replicate_runs(spec=...)``).

    Execution is supervised (:mod:`repro.core.resilience`): replications
    are submitted as contiguous chunks; a chunk whose worker crashes or
    times out is retried per ``retry`` (default :class:`RetryPolicy`) in
    a rebuilt pool, and completed chunks are never re-executed.  Because
    replication ``k`` always draws from seed-tree stream ``k``, recovery
    is bit-identical to an uninterrupted run.  ``chaos`` injects
    deterministic faults for testing (``None`` = honor ``REPRO_CHAOS``).
    With ``serial_fallback`` (default), inherit mode on a platform
    without ``fork`` degrades to in-process serial execution with a
    :class:`RuntimeWarning` instead of raising.
    """
    if spec is None and setup is None:
        raise SimulationError("pass spec=, setup=, or both")

    seeded_key: bytes | None = None
    if spec is not None:
        # Spec mode: workers rebuild from the picklable recipe (or reuse
        # the parent's build when forked over a pre-seeded cache).
        ctx = pool_context()
        init_arg = spec
        if setup is not None and ctx.get_start_method() == "fork":
            seeded_key = _seed_setup_cache(spec, setup)
        setup = None  # _WORKER_SETUP stays untouched in spec mode
    else:
        ctx = _fork_context()
        init_arg = None
        if ctx is None:
            if not serial_fallback:
                raise SimulationError(
                    "parallel replications without a ReplicationSpec "
                    "require the 'fork' start method (model objects hold "
                    "closures that cannot be pickled); build a "
                    "ReplicationSpec with a module-level factory, or "
                    "leave serial_fallback=True to degrade to in-process "
                    "serial execution"
                )
            _warn_no_fork(multiprocessing.get_context().get_start_method())
            n_jobs = 1  # run_tasks_supervised executes serially in-process

    global _WORKER_SETUP
    if setup is not None:
        _WORKER_SETUP = setup  # inherited by forked workers (or read serially)

    n_jobs = min(n_jobs, n_replications)
    ks = range(counter_base, counter_base + n_replications)
    # Same batching arithmetic the historical pool.map(chunksize=...) used:
    # ~4 chunks per worker, so a grid mixing fast and slow replications
    # load-balances while per-task dispatch overhead stays amortized.
    chunk = max(1, n_replications // (max(n_jobs, 1) * 4))
    chunks = [tuple(ks[i : i + chunk]) for i in range(0, len(ks), chunk)]
    tasks = [
        (("reps", c[0], c[-1]), (base_seed, until, warmup, c)) for c in chunks
    ]
    try:
        outcomes = run_tasks_supervised(
            tasks,
            _run_chunk,
            n_jobs=n_jobs,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(init_arg,),
            retry=retry,
            chaos=chaos,
            on_error="raise",
            label="replication chunk",
        )
    finally:
        _WORKER_SETUP = None
        if seeded_key is not None:
            # The seeded entry borrows the caller's live simulator; do
            # not let later same-process cache hits reset its streams.
            _SETUP_CACHE.pop(seeded_key, None)

    results = [item for key, _payload in tasks for item in outcomes[key]]
    results.sort(key=lambda item: item[0])
    samples: dict[str, list[float]] = {}
    for k, metric_values in results:
        if not samples:
            samples = {name: [] for name in metric_values}
        if set(metric_values) != set(samples):
            raise SimulationError(
                "workers returned inconsistent metric sets "
                f"({sorted(metric_values)} vs {sorted(samples)})"
            )
        for name, value in metric_values.items():
            samples[name].append(value)
    return samples


def run_replications_adaptive(
    *,
    until: float,
    warmup: float,
    base_seed: int,
    counter_base: int,
    max_replications: int,
    n_jobs: int,
    stopping,
    spec: ReplicationSpec | None = None,
    setup: ReplicationSetup | None = None,
    retry: RetryPolicy | None = None,
    chaos: ChaosPolicy | None = None,
    serial_fallback: bool = True,
) -> tuple[dict[str, list[float]], int]:
    """Sequentially-stopped replication scheduling over supervised pools.

    The dynamic work queue behind ``replicate_runs(..., stopping=...)``
    with ``n_jobs > 1``: replication *rounds* sized by the rule's
    deterministic schedule (:class:`~repro.core.stopping.StoppingRule`)
    are dispatched through :func:`run_replications_parallel` — the same
    supervised chunking, crash recovery, retry, and chaos machinery as a
    fixed-count study — until the watched metrics reach the rule's
    relative-CI target or ``max_replications`` is exhausted.  Returns
    ``(samples, n_executed)``.

    Replication ``k`` always draws from seed-tree stream ``k`` and the
    round boundaries depend only on ``(rule, n_done, cap)``, so the
    stopping point and every sample are float-identical to a serial
    sequentially-stopped run, for any ``n_jobs`` and after any
    crash/retry recovery.  Each round submits a fresh supervised pool;
    under ``fork`` with a pre-seeded setup cache the workers inherit the
    compiled program, so per-round pool start-up stays cheap relative
    to the replications it buys.
    """
    samples: dict[str, list[float]] = {}
    n_done = 0
    while True:
        round_n = stopping.next_round(n_done, max_replications)
        if round_n == 0:
            break
        batch = run_replications_parallel(
            until=until,
            warmup=warmup,
            base_seed=base_seed,
            counter_base=counter_base + n_done,
            n_replications=round_n,
            n_jobs=min(n_jobs, round_n),
            spec=spec,
            setup=setup,
            retry=retry,
            chaos=chaos,
            serial_fallback=serial_fallback,
        )
        if not samples:
            samples = {name: [] for name in batch}
        for name, values in batch.items():
            samples[name].extend(values)
        n_done += round_n
        if stopping.satisfied(samples):
            break
    return samples, n_done
