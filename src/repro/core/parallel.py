"""Parallel replication execution across processes.

Replications are embarrassingly parallel: replication ``k`` draws from
the independent stream ``(base_seed, "run", k)`` of the seed tree
(:mod:`repro.core.rng`), so results do not depend on *where* or *in what
order* replications execute.  This module exploits that with a
:class:`concurrent.futures.ProcessPoolExecutor`: stream ``k`` is always
assigned to replication ``k`` regardless of worker scheduling, which
makes the per-metric sample lists **bit-identical to serial execution
for any number of jobs**.

Two ways to get a model into the workers:

* **Spec mode** — pass a :class:`ReplicationSpec` naming a module-level
  factory plus picklable arguments; each worker process rebuilds the
  simulator/rewards/metrics once from the spec (works with any process
  start method).  :meth:`repro.cfs.cluster.ClusterModel.replication_spec`
  is the canonical example.
* **Inherit mode** — no spec: the parent's simulator, reward objects and
  metric closures are handed to workers through ``fork`` copy-on-write
  memory (gate functions and reward lambdas are not picklable, so this
  is the only way to parallelize an ad-hoc model).  Requires a platform
  with the ``fork`` start method (Linux, macOS with default disabled —
  a :class:`~repro.core.errors.SimulationError` explains the fallback).

Use via :func:`repro.core.experiment.replicate_runs` with ``n_jobs``.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from .errors import SimulationError
from .rng import make_generator

__all__ = [
    "ReplicationSetup",
    "ReplicationSpec",
    "pool_context",
    "resolve_n_jobs",
    "run_replications_parallel",
]


@dataclass(frozen=True)
class ReplicationSetup:
    """Everything a worker needs to execute replications of one study.

    Attributes
    ----------
    simulator:
        A :class:`~repro.core.simulation.Simulator` (its ``base_seed`` and
        ``sample_batch`` configuration define the study).
    rewards:
        Reward observers applied to every replication.
    traces_factory:
        Optional factory for per-replication trace observers.
    extra_metrics:
        Additional ``name -> f(RunResult)`` scalars.
    """

    simulator: object
    rewards: Sequence = ()
    traces_factory: Callable | None = None
    extra_metrics: Mapping[str, Callable] | None = None

    def metrics(self) -> dict[str, Callable]:
        """Full metric table (defaults derived from the rewards)."""
        from .experiment import build_metrics

        return build_metrics(self.rewards, self.extra_metrics)


@dataclass(frozen=True)
class ReplicationSpec:
    """Picklable recipe for rebuilding a :class:`ReplicationSetup`.

    ``factory`` must be an importable module-level callable returning a
    :class:`ReplicationSetup`; ``args``/``kwargs`` must be picklable.
    Each worker process calls ``factory(*args, **kwargs)`` exactly once
    and reuses the result for all replications it executes.
    """

    factory: Callable[..., ReplicationSetup]
    args: tuple = ()
    kwargs: Mapping = field(default_factory=dict)

    def build(self) -> ReplicationSetup:
        """Materialize the setup (called in the worker process)."""
        setup = self.factory(*self.args, **dict(self.kwargs))
        if not isinstance(setup, ReplicationSetup):
            raise SimulationError(
                f"replication spec factory {self.factory!r} returned "
                f"{type(setup).__name__}, expected ReplicationSetup"
            )
        return setup


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` request (``None``/1 serial, -1 = all cores)."""
    if n_jobs is None:
        return 1
    n = int(n_jobs)
    if n == -1:
        return max(os.cpu_count() or 1, 1)
    if n < 1:
        raise SimulationError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return n


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
# In spec mode the initializer builds the setup from the pickled spec; in
# inherit mode the parent stores it here *before* forking the pool, and
# the child reads the copy-on-write global.
_WORKER_SETUP: ReplicationSetup | None = None
_WORKER_METRICS: dict[str, Callable] | None = None


def _init_worker(spec: ReplicationSpec | None) -> None:
    global _WORKER_SETUP, _WORKER_METRICS
    if spec is not None:
        _WORKER_SETUP = spec.build()
    if _WORKER_SETUP is None:  # pragma: no cover - defensive
        raise SimulationError(
            "worker has no replication setup (no spec given and nothing "
            "inherited via fork)"
        )
    _WORKER_METRICS = _WORKER_SETUP.metrics()


def _run_one(task: tuple) -> tuple[int, dict[str, float]]:
    """Execute replication ``k`` on stream ``(base_seed, 'run', k)``."""
    base_seed, until, warmup, k = task
    setup = _WORKER_SETUP
    metrics = _WORKER_METRICS
    sim = setup.simulator
    rng = make_generator(base_seed, "run", k)
    traces = (
        tuple(setup.traces_factory())
        if setup.traces_factory is not None
        else ()
    )
    result = sim.run(
        until, warmup=warmup, rewards=setup.rewards, traces=traces, rng=rng
    )
    return k, {name: float(fn(result)) for name, fn in metrics.items()}


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def pool_context():
    """Multiprocessing context for worker pools over picklable tasks.

    Prefers the ``fork`` start method for cheap start-up and falls back
    to the platform default.  Used by spec-mode replication pools and by
    the sweep-cell scheduler (:mod:`repro.experiments.sweep`).
    """
    return _fork_context() or multiprocessing.get_context()


def run_replications_parallel(
    *,
    until: float,
    warmup: float,
    base_seed: int,
    counter_base: int,
    n_replications: int,
    n_jobs: int,
    spec: ReplicationSpec | None = None,
    setup: ReplicationSetup | None = None,
) -> dict[str, list[float]]:
    """Run replications ``counter_base .. counter_base + n - 1`` in a pool.

    Returns per-metric sample lists in replication order — bit-identical
    to running the same streams serially.  Exactly one of ``spec`` /
    ``setup`` selects the worker bootstrap mode (``setup`` requires the
    ``fork`` start method; ``spec`` works everywhere).
    """
    if (spec is None) == (setup is None):
        raise SimulationError("pass exactly one of spec= or setup=")

    if spec is not None:
        # Spec mode: workers rebuild from the picklable recipe.
        ctx = pool_context()
        init_arg = spec
    else:
        ctx = _fork_context()
        if ctx is None:
            raise SimulationError(
                "parallel replications without a ReplicationSpec require "
                "the 'fork' start method (model objects hold closures "
                "that cannot be pickled); build a ReplicationSpec with a "
                "module-level factory instead"
            )
        init_arg = None

    global _WORKER_SETUP
    if setup is not None:
        _WORKER_SETUP = setup  # inherited by forked workers

    n_jobs = min(n_jobs, n_replications)
    ks = range(counter_base, counter_base + n_replications)
    try:
        with ProcessPoolExecutor(
            max_workers=n_jobs,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(init_arg,),
        ) as pool:
            results = list(
                pool.map(
                    _run_one,
                    [(base_seed, until, warmup, k) for k in ks],
                    chunksize=max(1, n_replications // (n_jobs * 4)),
                )
            )
    finally:
        _WORKER_SETUP = None

    results.sort(key=lambda item: item[0])
    samples: dict[str, list[float]] = {}
    for k, metric_values in results:
        if not samples:
            samples = {name: [] for name in metric_values}
        if set(metric_values) != set(samples):
            raise SimulationError(
                "workers returned inconsistent metric sets "
                f"({sorted(metric_values)} vs {sorted(samples)})"
            )
        for name, value in metric_values.items():
            samples[name].append(value)
    return samples
