"""Synthetic operational-log generation from simulation traces.

The paper's raw material — NCSA's compute-logs and SAN-logs — is
proprietary.  This module substitutes them: a calibrated simulation run
produces component up/down traces and event streams, and the generator
renders them as timestamped log events in the canonical format of
:mod:`repro.analysis.parsing`.  Because the generating model's rates are
known, the analysis pipeline can be validated end-to-end: parse the
synthetic logs, re-estimate availability/rates, and compare with the
simulation's own reward values (the "loop closure" of DESIGN.md §6).

Time convention: simulation hours are offset from a calendar ``epoch``.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Iterable, Sequence

import numpy as np

from ..analysis.events import EventLog, LogEvent
from ..analysis.jobs import COMPLETED, FAILED_OTHER, FAILED_TRANSIENT, JobRecord
from ..core.errors import AnalysisError
from ..core.trace import BinaryTrace, EventTrace, Interval

__all__ = [
    "hours_to_datetime",
    "outage_events_from_trace",
    "replacement_events_from_trace",
    "mount_failure_events",
    "generate_job_records",
    "job_end_events",
    "batch_outage_events",
    "write_log",
]

_SWITCH_INDEX_RE = re.compile(r"switch\[(\d+)\]")


def hours_to_datetime(epoch: datetime, hours: float) -> datetime:
    """Convert simulation hours to a calendar timestamp."""
    return epoch + timedelta(hours=float(hours))


def outage_events_from_trace(
    trace: BinaryTrace,
    epoch: datetime,
    cause: str,
    source: str = "lustre-fs",
    component: str = "san",
) -> list[LogEvent]:
    """Render a component's down intervals as outage notifications.

    Mirrors the TeraGrid user notifications behind Table 1: one
    ``outage_start`` (with a ``cause`` attribute) and one ``outage_end``
    per down interval.
    """
    events: list[LogEvent] = []
    for iv in trace.intervals_where(False):
        events.append(
            LogEvent(
                timestamp=hours_to_datetime(epoch, iv.start),
                source=source,
                component=component,
                severity="ERROR",
                event_type="outage_start",
                message=f"{cause} outage begins",
                attrs={"cause": cause},
            )
        )
        events.append(
            LogEvent(
                timestamp=hours_to_datetime(epoch, iv.end),
                source=source,
                component=component,
                severity="INFO",
                event_type="outage_end",
                message=f"{cause} outage resolved",
                attrs={"cause": cause},
            )
        )
    return events


def replacement_events_from_trace(
    trace: EventTrace, epoch: datetime, component: str = "disk"
) -> list[LogEvent]:
    """Render disk replacement completions as SAN-log entries.

    The emitting "source" is derived from the activity path, so each
    physical slot is distinguishable (Table 4's replacement log).
    """
    events: list[LogEvent] = []
    for ev in trace:
        slot = ev.activity.replace("/replace", "").replace("/fail", "")
        slot = slot.split("ddn_units/")[-1] if "ddn_units/" in slot else slot
        events.append(
            LogEvent(
                timestamp=hours_to_datetime(epoch, ev.time),
                source=slot,
                component=component,
                severity="WARN",
                event_type="disk_replaced",
                message="failed disk replaced",
            )
        )
    return events


@dataclass(frozen=True)
class _Transient:
    """One client-network transient, located in time and scope."""

    time: float
    switch: int | None  # None = spine-level


def _transients_from_traces(
    switch_trace: EventTrace, spine_trace: EventTrace
) -> list[_Transient]:
    out: list[_Transient] = []
    for ev in switch_trace:
        match = _SWITCH_INDEX_RE.search(ev.activity)
        if match is None:
            raise AnalysisError(f"cannot locate switch index in {ev.activity!r}")
        out.append(_Transient(ev.time, int(match.group(1))))
    for ev in spine_trace:
        out.append(_Transient(ev.time, None))
    out.sort(key=lambda t: t.time)
    return out


def mount_failure_events(
    switch_trace: EventTrace,
    spine_trace: EventTrace,
    epoch: datetime,
    rng: np.random.Generator,
    n_compute_nodes: int,
    nodes_per_switch: int,
    leaf_observation_p: float = 0.025,
    spine_observation_p: float = 0.8,
    local_noise_per_1000h: float = 2.0,
    horizon_hours: float | None = None,
) -> list[LogEvent]:
    """Per-node Lustre mount-failure log lines (the Table 2 raw material).

    A transient produces mount-failure entries only when nodes happen to
    attempt (re)mounts during the blackout — job launches, reboots — so
    only a fraction of transients is *observed* in the log:

    * a leaf-switch transient is observed with ``leaf_observation_p`` and
      then affects a large share of that switch's nodes;
    * a spine transient is observed with ``spine_observation_p`` and
      affects nodes across many switches (Table 2's 258–591 counts);
    * independent node-local mount hiccups add the small 2–5 node days.
    """
    events: list[LogEvent] = []

    def node_event(node: int, t_hours: float) -> LogEvent:
        return LogEvent(
            timestamp=hours_to_datetime(epoch, t_hours),
            source=f"compute-{node:04d}",
            component="network",
            severity="ERROR",
            event_type="mount_failure",
            message="mount of /cfs/scratch failed: transport endpoint failure",
        )

    for tr in _transients_from_traces(switch_trace, spine_trace):
        if tr.switch is not None:
            if rng.uniform() > leaf_observation_p:
                continue
            base = tr.switch * nodes_per_switch
            pool = [
                n for n in range(base, base + nodes_per_switch) if n < n_compute_nodes
            ]
            share = rng.uniform(0.3, 1.0)
        else:
            if rng.uniform() > spine_observation_p:
                continue
            pool = list(range(n_compute_nodes))
            share = rng.uniform(0.2, 0.5)
        affected = rng.choice(
            pool, size=max(1, int(round(share * len(pool)))), replace=False
        )
        for node in affected:
            jitter = rng.uniform(0.0, 0.2)
            events.append(node_event(int(node), tr.time + jitter))

    # Node-local noise: isolated mounts failing without a network event.
    if horizon_hours is None:
        times = switch_trace.times() + spine_trace.times()
        horizon_hours = max(times) if times else 0.0
    n_noise = rng.poisson(local_noise_per_1000h * horizon_hours / 1000.0)
    for _ in range(int(n_noise)):
        t = rng.uniform(0.0, horizon_hours)
        for node in rng.choice(
            n_compute_nodes, size=int(rng.integers(2, 6)), replace=False
        ):
            events.append(node_event(int(node), t + rng.uniform(0.0, 0.1)))
    events.sort(key=lambda e: e.timestamp)
    return events


def generate_job_records(
    cfs_trace: BinaryTrace,
    switch_trace: EventTrace,
    spine_trace: EventTrace,
    rng: np.random.Generator,
    horizon_hours: float,
    epoch: datetime,
    job_rate_per_hour: float,
    job_mean_duration_hours: float,
    job_io_exposure_hours: float,
    n_switches: int,
    queue_during_outage: bool = True,
) -> list[JobRecord]:
    """Sample the batch workload against the simulated trajectory.

    Jobs arrive Poisson, run for an exponential duration on a random leaf
    switch, and are classified exactly as Table 3 classifies them:

    * ``failed_transient`` — a transient struck the job's own switch or
      the spine during its run;
    * ``failed_other`` — a CFS outage began during the job's I/O-exposure
      window (an *unannounced* failure catching the job mid-I/O);
    * ``completed`` — otherwise.

    By default (``queue_during_outage=True``) jobs submitted while the CFS
    is down are simply held by the batch scheduler until service resumes —
    announced outages do not kill jobs, which is why Table 3's
    "other/file system" count (184) is tiny compared to the downtime
    Table 1 reports.  Set it to False to count such jobs as failures.
    """
    down_intervals = cfs_trace.intervals_where(False)
    onset_times = np.array([iv.start for iv in down_intervals])

    def cfs_down_at(t: float) -> bool:
        for iv in down_intervals:
            if iv.start <= t < iv.end:
                return True
            if iv.start > t:
                break
        return False

    transients = _transients_from_traces(switch_trace, spine_trace)
    by_switch: dict[int | None, list[float]] = {}
    for tr in transients:
        by_switch.setdefault(tr.switch, []).append(tr.time)
    spine_times = np.array(by_switch.get(None, []))
    switch_times = {
        k: np.array(v) for k, v in by_switch.items() if k is not None
    }

    def any_in(times: np.ndarray, lo: float, hi: float) -> bool:
        if times.size == 0:
            return False
        idx = np.searchsorted(times, lo, side="left")
        return idx < times.size and times[idx] <= hi

    n_jobs = rng.poisson(job_rate_per_hour * horizon_hours)
    arrivals = np.sort(rng.uniform(0.0, horizon_hours, size=int(n_jobs)))
    jobs: list[JobRecord] = []
    for i, start in enumerate(arrivals):
        duration = float(rng.exponential(job_mean_duration_hours))
        end = min(start + duration, horizon_hours)
        switch = int(rng.integers(0, n_switches))
        if any_in(switch_times.get(switch, np.array([])), start, end) or any_in(
            spine_times, start, end
        ):
            status = FAILED_TRANSIENT
        elif any_in(onset_times, start, min(start + job_io_exposure_hours, end)) or (
            not queue_during_outage and cfs_down_at(float(start))
        ):
            status = FAILED_OTHER
        else:
            status = COMPLETED
        jobs.append(
            JobRecord(
                job_id=f"job-{i:06d}",
                submit_time=hours_to_datetime(epoch, float(start)),
                duration_hours=duration,
                status=status,
            )
        )
    return jobs


def job_end_events(jobs: Iterable[JobRecord]) -> list[LogEvent]:
    """Render job records as ``job_end`` compute-log entries."""
    events: list[LogEvent] = []
    for job in jobs:
        end_time = job.submit_time + timedelta(hours=job.duration_hours)
        events.append(
            LogEvent(
                timestamp=end_time,
                source="batch-scheduler",
                component="job",
                severity="INFO" if job.status == COMPLETED else "ERROR",
                event_type="job_end",
                message=f"job {job.job_id} {job.status}",
                attrs={
                    "job": job.job_id,
                    "status": job.status,
                    "hours": f"{job.duration_hours:.3f}",
                },
            )
        )
    return events


def batch_outage_events(
    epoch: datetime,
    horizon_hours: float,
    rng: np.random.Generator,
    rate_per_720h: float = 0.2,
    duration_hours: tuple[float, float] = (2.0, 5.0),
) -> list[LogEvent]:
    """Synthetic batch-system outages (Table 1's "Batch system" row).

    The batch scheduler is outside the CFS model proper; its rare outages
    are injected directly so Table 1's cause mix is complete.
    """
    events: list[LogEvent] = []
    n = rng.poisson(rate_per_720h * horizon_hours / 720.0)
    for _ in range(int(n)):
        start = rng.uniform(0.0, horizon_hours)
        length = rng.uniform(*duration_hours)
        for etype, offset, sev in (
            ("outage_start", 0.0, "ERROR"),
            ("outage_end", length, "INFO"),
        ):
            events.append(
                LogEvent(
                    timestamp=hours_to_datetime(epoch, start + offset),
                    source="batch-scheduler",
                    component="batch",
                    severity=sev,
                    event_type=etype,
                    message="batch system outage",
                    attrs={"cause": "Batch system"},
                )
            )
    return events


def write_log(events: Iterable[LogEvent], path: str) -> int:
    """Write events to a log file in the canonical format; returns count."""
    from ..analysis.parsing import format_event

    ordered = sorted(events, key=lambda e: e.timestamp)
    with open(path, "w", encoding="utf-8") as fh:
        for event in ordered:
            fh.write(format_event(event) + "\n")
    return len(ordered)
