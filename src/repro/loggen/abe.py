"""ABE-style log synthesis: one simulated operating period → two logs.

Reproduces the paper's data-collection setting (Section 3.3):

* **compute-log** — 05/03/2007 to 10/02/2007: per-node mount failures and
  job completion records;
* **SAN-log** — 09/05/2007 to 11/30/2007: outage notifications (by cause)
  and disk replacements.

One simulation covers the union of both windows; each log only *reports*
events inside its own window, exactly like the real logging deployment.
:class:`AbeLogs` also carries the simulation's ground truth so tests can
close the loop between generation and analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

from ..analysis.events import EventLog
from ..analysis.jobs import JobRecord
from ..cfs.cluster import ClusterModel
from ..cfs.measures import cfs_up_predicate, resolve_slot_path
from ..cfs.parameters import CFSParameters, abe_parameters
from ..core.rng import make_generator
from ..core.trace import BinaryTrace, EventTrace
from .generator import (
    batch_outage_events,
    generate_job_records,
    hours_to_datetime,
    job_end_events,
    mount_failure_events,
    outage_events_from_trace,
    replacement_events_from_trace,
)

__all__ = ["AbeLogWindows", "AbeLogs", "generate_abe_logs"]

#: Calendar anchors from Section 3.3.
COMPUTE_LOG_START = datetime(2007, 5, 3)
COMPUTE_LOG_END = datetime(2007, 10, 2)
SAN_LOG_START = datetime(2007, 9, 5)
SAN_LOG_END = datetime(2007, 11, 30)


@dataclass(frozen=True)
class AbeLogWindows:
    """Observation windows (defaults are the paper's)."""

    epoch: datetime = COMPUTE_LOG_START
    compute_end: datetime = COMPUTE_LOG_END
    san_start: datetime = SAN_LOG_START
    san_end: datetime = SAN_LOG_END

    @property
    def horizon_hours(self) -> float:
        """Simulated hours covering both windows."""
        return (self.san_end - self.epoch).total_seconds() / 3600.0

    def hours(self, moment: datetime) -> float:
        """Simulation-hour offset of a calendar moment."""
        return (moment - self.epoch).total_seconds() / 3600.0


@dataclass(frozen=True)
class GroundTruth:
    """What the simulation knows; what the analysis should recover."""

    cfs_availability: float
    n_cfs_outages: int
    n_disk_replacements: int
    n_switch_transients: int
    n_spine_transients: int


@dataclass(frozen=True)
class AbeLogs:
    """The two synthesized logs plus job records and ground truth."""

    windows: AbeLogWindows
    san_log: EventLog
    compute_log: EventLog
    jobs: list[JobRecord]
    ground_truth: GroundTruth


#: Small per-process cache for default-parameter log synthesis, keyed by
#: seed.  Sweep cells for Tables 1-3 each need the same synthesized log
#: set; when several of them execute in one process (serial sweeps), the
#: ~2 s simulation+synthesis runs once instead of once per table.
_LOGS_CACHE: dict[int, AbeLogs] = {}
_LOGS_CACHE_MAX = 4


def cached_abe_logs(
    seed: int = 2013, params: "CFSParameters | None" = None
) -> AbeLogs:
    """Memoized :func:`generate_abe_logs`.

    Only default-parameter synthesis is cached (keyed by seed); explicit
    ``params`` delegate straight to :func:`generate_abe_logs`, so the
    Table 1-3 regenerators can call this unconditionally.  ``AbeLogs``
    is immutable by convention (frozen dataclasses over event lists that
    no consumer mutates), so sharing one instance across regenerators is
    safe and is exactly what the pre-sweep ``run_all`` did explicitly.
    """
    if params is not None:
        return generate_abe_logs(params, seed=seed)
    logs = _LOGS_CACHE.get(seed)
    if logs is None:
        if len(_LOGS_CACHE) >= _LOGS_CACHE_MAX:
            _LOGS_CACHE.clear()
        logs = _LOGS_CACHE[seed] = generate_abe_logs(seed=seed)
    return logs


def warm_logs_cache_for_pool(seed: int, n_jobs: int | None) -> None:
    """Warm :func:`cached_abe_logs` before a sweep pool is created.

    Forked workers inherit the populated cache copy-on-write, so a grid
    containing the Table 1-3 cells pays for log synthesis once instead
    of once per worker.  A no-op when the run is serial or the platform
    pools via ``spawn`` (workers start cold regardless, so pre-warming
    the parent would be pure overhead).
    """
    from ..core.parallel import pool_context, resolve_n_jobs

    if resolve_n_jobs(n_jobs) > 1 and pool_context().get_start_method() == "fork":
        cached_abe_logs(seed)


def generate_abe_logs(
    params: CFSParameters | None = None,
    seed: int = 2013,
    windows: AbeLogWindows | None = None,
) -> AbeLogs:
    """Simulate one ABE operating period and synthesize its logs."""
    params = params if params is not None else abe_parameters()
    windows = windows if windows is not None else AbeLogWindows()
    horizon = windows.horizon_hours
    epoch = windows.epoch
    rng = make_generator(seed, "loggen")

    cluster = ClusterModel(params, base_seed=seed)
    model = cluster.model
    cfs_up = cfs_up_predicate(model)

    oss = resolve_slot_path(model, "*/oss_layer/pairs_down")
    oss_sw = resolve_slot_path(model, "*/oss_layer/oss_sw_down")
    nw = resolve_slot_path(model, "*/oss_san_nw/pairs_down")
    fabric = resolve_slot_path(model, "*/fabric_down")
    tiers, ctrl = (
        resolve_slot_path(model, "*/tiers_down"),
        resolve_slot_path(model, "*/ctrl_pairs_down"),
    )

    traces = (
        BinaryTrace("cfs_up", cfs_up),
        # Cause-resolved "the users were notified" traces (Table 1 rows).
        BinaryTrace(
            "io_hw_up",
            lambda m: m[oss] == 0 and m[nw] == 0 and m[fabric] == 0
            and m[tiers] == 0 and m[ctrl] == 0,
        ),
        BinaryTrace("filesystem_up", lambda m: m[oss_sw] == 0),
        EventTrace("disk_replacements", "*/disks/disk[*]/replace"),
        EventTrace("switch_transients", "*/switches/switch[*]/transient"),
        EventTrace("spine_transients", "*/spine/transient"),
    )
    result = cluster.simulator.run(horizon, traces=traces)

    cfs_trace: BinaryTrace = result.trace("cfs_up")  # type: ignore[assignment]
    switch_tr: EventTrace = result.trace("switch_transients")  # type: ignore[assignment]
    spine_tr: EventTrace = result.trace("spine_transients")  # type: ignore[assignment]
    disk_tr: EventTrace = result.trace("disk_replacements")  # type: ignore[assignment]

    # ----- SAN-log: outage notifications + disk replacements ----------
    san_events = []
    san_events += outage_events_from_trace(
        result.trace("io_hw_up"), epoch, cause="I/O hardware"  # type: ignore[arg-type]
    )
    san_events += outage_events_from_trace(
        result.trace("filesystem_up"), epoch, cause="File system"  # type: ignore[arg-type]
    )
    san_events += batch_outage_events(epoch, horizon, rng)
    san_events += replacement_events_from_trace(disk_tr, epoch)
    san_log = EventLog(san_events)

    # ----- compute-log: mount failures + job records -------------------
    mount_events = mount_failure_events(
        switch_tr,
        spine_tr,
        epoch,
        rng,
        n_compute_nodes=params.n_compute_nodes,
        nodes_per_switch=params.nodes_per_switch,
        horizon_hours=horizon,
    )
    jobs = generate_job_records(
        cfs_trace,
        switch_tr,
        spine_tr,
        rng,
        horizon_hours=windows.hours(windows.compute_end),
        epoch=epoch,
        job_rate_per_hour=params.job_rate_per_hour,
        job_mean_duration_hours=params.job_mean_duration_hours,
        job_io_exposure_hours=params.job_io_exposure_hours,
        n_switches=params.n_switches,
    )
    compute_log = EventLog(mount_events) + EventLog(job_end_events(jobs))

    truth = GroundTruth(
        cfs_availability=cfs_trace.availability(),
        n_cfs_outages=len(cfs_trace.intervals_where(False)),
        n_disk_replacements=len(disk_tr),
        n_switch_transients=len(switch_tr),
        n_spine_transients=len(spine_tr),
    )
    return AbeLogs(
        windows=windows,
        san_log=san_log,
        compute_log=compute_log,
        jobs=jobs,
        ground_truth=truth,
    )
