"""Synthetic disk-fleet survival data (the Table 4 raw material).

ABE's scratch fleet (480 SATA disks) entered service when the cluster was
deployed in spring 2007; the SAN-log covers 09/05–11/28/2007.  DDN tracks
per-slot install dates, so every failure has an exact age and every
surviving spindle is right-censored at the end of observation — precisely
the data a censored Weibull fit consumes.

:func:`disk_survival_dataset` reproduces that process with a per-slot
renewal simulation under a known Weibull law, so the survival-analysis
code can be validated on data whose ground truth is known (β = 0.7 for
the Table 4 regenerator).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.distributions import Weibull
from ..core.errors import AnalysisError

__all__ = ["DiskSurvivalData", "disk_survival_dataset"]


@dataclass(frozen=True)
class DiskSurvivalData:
    """Censored lifetime observations from a disk fleet.

    Attributes
    ----------
    durations / observed:
        One entry per *spindle* (original or replacement): time in service,
        and whether that time ended in a failure (True) or right-censoring
        at the end of observation (False).
    failure_hours:
        Failure times measured from the fleet's deployment instant (used
        to place failures on the calendar).
    n_slots:
        Physical disk slots in the fleet.
    """

    durations: np.ndarray
    observed: np.ndarray
    failure_hours: np.ndarray
    n_slots: int

    @property
    def n_failures(self) -> int:
        """Total observed failures."""
        return int(self.observed.sum())

    def failures_in_window(self, start_hours: float, end_hours: float) -> np.ndarray:
        """Failure times falling inside an observation window."""
        mask = (self.failure_hours >= start_hours) & (self.failure_hours < end_hours)
        return self.failure_hours[mask]


def disk_survival_dataset(
    n_slots: int,
    lifetime: Weibull,
    horizon_hours: float,
    rng: np.random.Generator,
) -> DiskSurvivalData:
    """Per-slot renewal simulation of a disk fleet from deployment.

    Every slot starts with a fresh disk at hour 0; failed disks are
    replaced immediately with fresh disks (replacement delay is negligible
    at survival-analysis resolution).  Observation stops at
    ``horizon_hours``: completed lifetimes are failure observations, the
    in-service spindles are censored.
    """
    if n_slots < 1:
        raise AnalysisError(f"n_slots must be >= 1, got {n_slots}")
    if horizon_hours <= 0.0:
        raise AnalysisError(f"horizon_hours must be positive, got {horizon_hours}")
    durations: list[float] = []
    observed: list[bool] = []
    failure_hours: list[float] = []
    for _slot in range(n_slots):
        clock = 0.0
        while True:
            life = float(lifetime.sample(rng))
            if clock + life >= horizon_hours:
                durations.append(horizon_hours - clock)
                observed.append(False)
                break
            clock += life
            durations.append(life)
            observed.append(True)
            failure_hours.append(clock)
    return DiskSurvivalData(
        durations=np.asarray(durations),
        observed=np.asarray(observed, dtype=bool),
        failure_hours=np.asarray(sorted(failure_hours)),
        n_slots=n_slots,
    )
