"""Synthetic operational-log generation (the NCSA-log substitution)."""

from .abe import (
    COMPUTE_LOG_END,
    COMPUTE_LOG_START,
    SAN_LOG_END,
    SAN_LOG_START,
    AbeLogWindows,
    AbeLogs,
    cached_abe_logs,
    generate_abe_logs,
)
from .disks import DiskSurvivalData, disk_survival_dataset
from .generator import (
    batch_outage_events,
    generate_job_records,
    hours_to_datetime,
    job_end_events,
    mount_failure_events,
    outage_events_from_trace,
    replacement_events_from_trace,
    write_log,
)

__all__ = [
    "AbeLogWindows",
    "AbeLogs",
    "generate_abe_logs",
    "cached_abe_logs",
    "COMPUTE_LOG_START",
    "COMPUTE_LOG_END",
    "SAN_LOG_START",
    "SAN_LOG_END",
    "DiskSurvivalData",
    "disk_survival_dataset",
    "hours_to_datetime",
    "outage_events_from_trace",
    "replacement_events_from_trace",
    "mount_failure_events",
    "generate_job_records",
    "job_end_events",
    "batch_outage_events",
    "write_log",
]
