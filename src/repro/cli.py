"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``        regenerate Tables 1-5
``figures``       regenerate Figures 2-4 (``--full`` for paper fidelity)
``all``           everything
``calibrate``     print the Figure 4 anchors (ABE / petascale / spare)
``simulate``      simulate one preset and print its measures
``logs``          synthesize the ABE logs into a directory
``rare``          estimate a tier's deep-tail data-loss probability
                  (RESTART importance splitting vs. brute force, checked
                  against the Markov closed form)
``lint``          statically check the shipped models' declarations
                  (see ``docs/robustness.md``, "Model integrity")
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Dependability analysis of petascale cluster file systems "
            "(reproduction of Gaonkar et al., DSN 2008)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def jobs_value(text: str) -> int:
        value = int(text)
        if value == 0 or value < -1:
            raise argparse.ArgumentTypeError(
                f"must be >= 1 or -1 (all cores), got {value}"
            )
        return value

    def add_jobs(p: argparse.ArgumentParser, unit: str = "sweep cells") -> None:
        p.add_argument(
            "--jobs",
            type=jobs_value,
            default=1,
            metavar="N",
            help=f"worker processes scheduling {unit} (-1 = all cores); "
            "results are identical for any value",
        )

    def add_checkpoint(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--checkpoint-dir",
            "--resume",
            dest="checkpoint_dir",
            default=None,
            metavar="DIR",
            help="journal each completed sweep cell into DIR; rerunning "
            "with the same DIR resumes, re-executing only unfinished "
            "cells (results are bit-identical to an uninterrupted run)",
        )

    p_tables = sub.add_parser("tables", help="regenerate Tables 1-5")
    p_tables.add_argument("--seed", type=int, default=2013)
    p_tables.add_argument(
        "--on-error",
        choices=["raise", "collect"],
        default="raise",
        help="'raise' aborts on the first failed cell; 'collect' prints "
        "every healthy table plus a failure report (exit code 1)",
    )
    add_jobs(p_tables)
    add_checkpoint(p_tables)

    p_figures = sub.add_parser("figures", help="regenerate Figures 2-4")
    p_figures.add_argument("--full", action="store_true", help="paper fidelity")
    add_jobs(p_figures)

    p_all = sub.add_parser("all", help="regenerate every table and figure")
    p_all.add_argument("--full", action="store_true")
    p_all.add_argument("--seed", type=int, default=2013)
    add_jobs(p_all)
    add_checkpoint(p_all)

    def rel_ci_value(text: str) -> float:
        value = float(text)
        if not 0.0 < value < 1.0:
            raise argparse.ArgumentTypeError(
                f"must be in (0, 1), got {value}"
            )
        return value

    def add_rel_ci(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--rel-ci",
            type=rel_ci_value,
            default=None,
            metavar="R",
            help="stop replicating once the CFS-availability CI "
            "half-width falls below R x the mean (--replications becomes "
            "the cap); the stopping point is identical for any --jobs",
        )

    p_cal = sub.add_parser("calibrate", help="print the Figure 4 anchors")
    p_cal.add_argument("--replications", type=int, default=8)
    p_cal.add_argument("--hours", type=float, default=8760.0)
    add_rel_ci(p_cal)
    add_jobs(p_cal)
    add_checkpoint(p_cal)

    p_sim = sub.add_parser("simulate", help="simulate a preset")
    p_sim.add_argument("preset", choices=["abe", "petascale", "petascale-spare"])
    p_sim.add_argument("--replications", type=int, default=8)
    p_sim.add_argument("--hours", type=float, default=8760.0)
    p_sim.add_argument("--seed", type=int, default=2008)
    p_sim.add_argument(
        "--sanitize",
        action="store_true",
        help="run one instrumented replication instead of the study: "
        "every declared read/write is cross-checked against actual "
        "behavior and violations are reported with full provenance "
        "(exit 1 when any are found)",
    )
    add_rel_ci(p_sim)
    add_jobs(p_sim, unit="replications (one study, no grid)")

    p_rare = sub.add_parser(
        "rare",
        help="estimate a storage tier's data-loss probability "
        "(importance splitting)",
    )
    p_rare.add_argument("--disks", type=int, default=480, metavar="N")
    p_rare.add_argument(
        "--tolerance", type=int, default=6, metavar="F",
        help="disk failures the tier survives (loss at F+1 concurrent)",
    )
    p_rare.add_argument("--fail-rate", type=float, default=1e-5, metavar="L")
    p_rare.add_argument("--repair-rate", type=float, default=0.02, metavar="M")
    p_rare.add_argument("--hours", type=float, default=8760.0)
    p_rare.add_argument(
        "--roots", type=int, default=256, metavar="K",
        help="root replications (the cap when --rel-ci is set)",
    )
    p_rare.add_argument(
        "--rel-ci", type=rel_ci_value, default=None, metavar="R",
        help="stop once the estimate's CI half-width falls below "
        "R x the estimate",
    )
    def splitting_value(text: str) -> tuple[float, ...]:
        try:
            thresholds = tuple(float(x) for x in text.split(","))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"thresholds must be comma-separated numbers, got {text!r}"
            )
        for lo, hi in zip(thresholds, thresholds[1:]):
            if not lo < hi:
                raise argparse.ArgumentTypeError(
                    f"thresholds must be strictly increasing, got {text!r}"
                )
        return thresholds

    p_rare.add_argument(
        "--splitting",
        nargs="?",
        const=True,
        default=False,
        type=splitting_value,
        metavar="T1,T2,...",
        help="RESTART importance splitting; with no value, one level per "
        "concurrently failed disk with near-optimal factors, or pass a "
        "strictly increasing comma-separated threshold ladder ending at "
        "the loss level (tolerance + 1). Default is crude Monte Carlo "
        "with early stopping at the loss event",
    )
    p_rare.add_argument("--seed", type=int, default=2008)
    add_jobs(p_rare, unit="root replications (one study, no grid)")

    p_logs = sub.add_parser("logs", help="synthesize the ABE logs")
    p_logs.add_argument("output_dir")
    p_logs.add_argument("--seed", type=int, default=2013)

    p_lint = sub.add_parser(
        "lint",
        help="statically check shipped models' declarations and structure",
    )
    p_lint.add_argument(
        "models",
        nargs="*",
        metavar="MODEL",
        help="models to lint: abe, petascale, petascale-spare, "
        "abe-storage, petascale-storage (default: all)",
    )
    return parser


def _cmd_tables(args: argparse.Namespace) -> int:
    from .experiments import (
        run_sweep,
        table1_cell,
        table2_cell,
        table3_cell,
        table4_cell,
        table5_cell,
    )

    cells = [
        table1_cell(seed=args.seed),
        table2_cell(seed=args.seed),
        table3_cell(seed=args.seed),
        table4_cell(),
        table5_cell(),
    ]
    from .experiments import format_cell_failures
    from .loggen.abe import warm_logs_cache_for_pool

    warm_logs_cache_for_pool(args.seed, args.jobs)
    results = run_sweep(
        cells,
        n_jobs=args.jobs,
        on_error=args.on_error,
        checkpoint_dir=args.checkpoint_dir,
    )
    failures = results.failures
    sections = [results[key].format() for key in results if key not in failures]
    if failures:
        sections.append(format_cell_failures(failures))
    print("\n\n".join(sections))
    return 1 if failures else 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .experiments import run_figure2, run_figure3, run_figure4

    if args.full:
        fig_kwargs: dict = {"n_jobs": args.jobs}
        fig4_kwargs: dict = {"n_jobs": args.jobs}
    else:
        fig_kwargs = {
            "n_steps": 4, "n_replications": 3, "hours": 4380.0,
            "n_jobs": args.jobs,
        }
        fig4_kwargs = {
            "n_steps": 3, "n_replications": 3, "hours": 4380.0,
            "n_jobs": args.jobs,
        }
    for result in (
        run_figure2(**fig_kwargs),
        run_figure3(**fig_kwargs),
        run_figure4(**fig4_kwargs),
    ):
        print(result.format())
        print()
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    from .experiments import run_all

    print(
        run_all(
            full=args.full,
            seed=args.seed,
            n_jobs=args.jobs,
            checkpoint_dir=args.checkpoint_dir,
        )
    )
    return 0


def _stopping_rule(rel_ci: float | None):
    """CLI ``--rel-ci`` to a CFS-availability stopping rule (or None)."""
    if rel_ci is None:
        return None
    from .core import StoppingRule

    return StoppingRule(rel_ci=rel_ci, metrics=("cfs_availability",))


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .cfs import ClusterModel, abe_parameters, petascale_parameters
    from .experiments import replication_cell, run_sweep

    presets = [
        ("ABE (paper: 0.972)", abe_parameters()),
        ("petascale (paper: 0.909)", petascale_parameters()),
        ("petascale + spare (paper: +3%)", petascale_parameters().with_spare_oss(1)),
    ]
    from .core.parallel import resolve_n_jobs

    t0 = time.time()
    # Only 3 cells: run_sweep's nested policy splits surplus workers
    # into within-cell replication parallelism, so e.g. --jobs 12 runs
    # 3 cells x 4 replication workers (results are bit-identical for
    # every split).
    jobs = resolve_n_jobs(args.jobs)
    stopping = _stopping_rule(args.rel_ci)
    cells = [
        replication_cell(
            label,
            ClusterModel.spec(params, 2008),
            args.hours,
            args.replications,
            stopping=stopping,
        )
        for label, params in presets
    ]
    results = run_sweep(cells, n_jobs=jobs, checkpoint_dir=args.checkpoint_dir)
    for label, _params in presets:
        est = results[label].estimate("cfs_availability")
        n = results[label].n_replications
        saved = f" [{n}/{args.replications} replications]" if stopping else ""
        print(f"{label:<32} CFS availability {est}{saved}")
    inner = max(1, jobs // len(cells))
    print(
        f"[{time.time() - t0:.0f}s, {min(jobs, len(cells))} cell worker(s) "
        f"x {inner} replication worker(s)]"
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .cfs import ClusterModel, abe_parameters, petascale_parameters

    params = {
        "abe": abe_parameters,
        "petascale": petascale_parameters,
        "petascale-spare": lambda: petascale_parameters().with_spare_oss(1),
    }[args.preset]()
    model = ClusterModel(params, base_seed=args.seed)
    if args.sanitize:
        from .core import Simulator

        meas = model.measures
        sim = Simulator(
            model.model,
            base_seed=args.seed,
            sample_batch=None,
            engine="sanitize",
        )
        traces = meas.traces_factory() if meas.traces_factory else ()
        import warnings

        with warnings.catch_warnings():
            # The report below is the user-facing output; the run-level
            # RuntimeWarning would duplicate it.
            warnings.simplefilter("ignore", RuntimeWarning)
            result = sim.run(args.hours, rewards=meas.rewards, traces=traces)
        report = result.sanitizer_report
        print(report.format())
        return 0 if report.ok else 1
    stopping = _stopping_rule(args.rel_ci)
    result = model.simulate(
        hours=args.hours,
        n_replications=args.replications,
        n_jobs=args.jobs,
        stopping=stopping,
    )
    if stopping is not None:
        n = result.experiment.n_replications
        print(f"[adaptive stopping: {n}/{args.replications} replications]")
    print(result.summary())
    return 0


def _cmd_rare(args: argparse.Namespace) -> int:
    from .core import StoppingRule
    from .experiments import (
        brute_force_probability,
        splitting_probability,
        tier_level,
        tier_replication_spec,
        tier_splitting_policy,
    )
    from .markov.raid_markov import RAIDTierMarkov

    t0 = time.time()
    spec = tier_replication_spec(
        args.disks, args.tolerance, args.fail_rate, args.repair_rate,
        args.seed,
    )
    stopping = (
        StoppingRule(rel_ci=args.rel_ci) if args.rel_ci is not None else None
    )
    if isinstance(args.splitting, tuple):
        # Custom threshold ladder: splitting factors per rung as the
        # product of the per-disk near-optimal factors the rung spans.
        from .experiments.rare import SplittingPolicy

        lam, mu = args.fail_rate, args.repair_rate
        factors = []
        for lo, hi in zip(args.splitting, args.splitting[1:]):
            acc = 1.0
            for j in range(max(1, int(lo)), int(hi)):
                up = (args.disks - j) * lam
                acc *= (up + j * mu) / up
            factors.append(max(1, min(32, round(acc))))
        policy = SplittingPolicy(
            tier_level(), args.splitting, tuple(factors)
        )
    else:
        policy = tier_splitting_policy(
            args.disks, args.tolerance, args.fail_rate, args.repair_rate
        )
    if args.splitting:
        est = splitting_probability(
            spec, args.hours, policy,
            n_roots=args.roots, stopping=stopping, n_jobs=args.jobs,
        )
    else:
        from .core.parallel import build_setup_cached

        setup, _metrics = build_setup_cached(spec)
        est = brute_force_probability(
            setup.simulator, args.hours, tier_level(),
            float(args.tolerance + 1),
            n_replications=args.roots, stopping=stopping, n_jobs=args.jobs,
        )
    chain = RAIDTierMarkov(
        n_disks=args.disks,
        fault_tolerance=args.tolerance,
        disk_failure_rate=args.fail_rate,
        disk_repair_rate=args.repair_rate,
    ).absorbing_chain()
    exact = chain.transient(0, args.hours)[args.tolerance + 1]
    print(
        f"P(data loss within {args.hours:g} h), {args.disks} disks, "
        f"tolerance {args.tolerance}:"
    )
    print(f"  estimate     {est}")
    print(f"  closed form  {exact:.6g} (Markov transient)")
    if est.probability > 0.0:
        inside = "inside" if est.estimate().contains(exact) else "OUTSIDE"
        print(f"  closed form is {inside} the estimate's CI")
    elif not args.splitting:
        print(
            "  no events observed — the tail is out of brute-force reach; "
            "rerun with --splitting"
        )
    print(f"  [{time.time() - t0:.1f}s]")
    return 0


def _cmd_logs(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .loggen import generate_abe_logs, write_log

    out = Path(args.output_dir)
    out.mkdir(parents=True, exist_ok=True)
    logs = generate_abe_logs(seed=args.seed)
    n_san = write_log(logs.san_log.events, str(out / "san.log"))
    n_compute = write_log(logs.compute_log.events, str(out / "compute.log"))
    print(f"wrote {n_san} SAN-log lines and {n_compute} compute-log lines to {out}")
    print(f"ground-truth CFS availability: {logs.ground_truth.cfs_availability:.4f}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .cfs import (
        ClusterModel,
        StorageModel,
        abe_parameters,
        petascale_parameters,
    )
    from .core import lint_model

    builders = {
        "abe": lambda: ClusterModel(abe_parameters()),
        "petascale": lambda: ClusterModel(petascale_parameters()),
        "petascale-spare": lambda: ClusterModel(
            petascale_parameters().with_spare_oss(1)
        ),
        "abe-storage": lambda: StorageModel(abe_parameters()),
        "petascale-storage": lambda: StorageModel(petascale_parameters()),
    }
    names = args.models or list(builders)
    for name in names:
        if name not in builders:
            print(
                f"repro lint: unknown model {name!r} "
                f"(choose from {', '.join(builders)})",
                file=sys.stderr,
            )
            return 2
    n_bad = 0
    for name in names:
        report = lint_model(builders[name]())
        print(f"{name:<20} {'clean' if report.ok else 'FINDINGS'}")
        if not report.ok:
            n_bad += 1
            for finding in report.findings:
                print(f"  - {finding}")
    return 1 if n_bad else 0


_COMMANDS = {
    "tables": _cmd_tables,
    "figures": _cmd_figures,
    "all": _cmd_all,
    "calibrate": _cmd_calibrate,
    "simulate": _cmd_simulate,
    "logs": _cmd_logs,
    "rare": _cmd_rare,
    "lint": _cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    ``Ctrl-C`` exits cleanly with the conventional code 130 (128 +
    SIGINT) instead of a traceback; an interrupted checkpointed run
    (``--checkpoint-dir``) keeps its journal and resumes on rerun.
    """
    args = build_parser().parse_args(argv)
    if os.environ.get("REPRO_CHAOS"):
        # Validate the chaos policy up front: a malformed value would
        # otherwise surface as a traceback from deep inside the first
        # supervised pool.
        from .core.errors import SimulationError
        from .core.resilience import ChaosPolicy

        try:
            ChaosPolicy.from_env()
        except (SimulationError, ValueError, TypeError) as exc:
            print(
                f"repro: invalid REPRO_CHAOS value "
                f"{os.environ['REPRO_CHAOS']!r}: {exc}",
                file=sys.stderr,
            )
            return 2
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
