"""RAID submodels: disk, tier, controller pair, DDN unit — sim vs Markov."""

from __future__ import annotations

import pytest

from repro.core import (
    Exponential,
    ImpulseReward,
    ModelError,
    ParameterError,
    RateReward,
    Simulator,
    Uniform,
    Weibull,
    flatten,
    replicate_runs,
)
from repro.markov import RAIDTierMarkov, failover_pair_unavailability, raid_mttdl_approximation
from repro.raid import (
    RAID5_8P1,
    RAID6_8P2,
    RAID_8P3,
    DDNUnitSpec,
    RAIDConfig,
    build_ddn_fleet_node,
    build_ddn_unit_node,
    build_disk_san,
    build_failover_pair_node,
    build_tier_node,
)


class TestRAIDConfig:
    def test_geometry(self):
        assert RAID6_8P2.tier_size == 10
        assert RAID6_8P2.fault_tolerance == 2
        assert RAID6_8P2.label == "8+2"
        assert RAID_8P3.tier_size == 11
        assert RAID5_8P1.fault_tolerance == 1

    def test_with_replacement_hours(self):
        c = RAID6_8P2.with_replacement_hours(12.0)
        assert c.disk_replacement_hours == 12.0
        assert RAID6_8P2.disk_replacement_hours == 4.0  # original untouched

    def test_validation(self):
        with pytest.raises(ParameterError):
            RAIDConfig(data_disks=0)
        with pytest.raises(ParameterError):
            RAIDConfig(parity_disks=0)
        with pytest.raises(ParameterError):
            RAIDConfig(disk_replacement_hours=0.0)


class TestDiskSAN:
    def test_single_disk_availability(self):
        # MTBF/(MTBF+MTTR) regardless of the Weibull shape.
        lifetime = Weibull.from_mtbf(0.7, 1000.0)
        model = flatten(build_disk_san(lifetime, replacement_hours=50.0))
        sim = Simulator(model, base_seed=1)
        rw = RateReward("a", lambda m: float(m["disk/up"]))
        res = replicate_runs(sim, 100_000.0, n_replications=8, rewards=[rw])
        assert res.estimate("a").mean == pytest.approx(1000.0 / 1050.0, abs=0.01)

    def test_replacement_counter(self):
        lifetime = Weibull.from_mtbf(1.0, 100.0)
        model = flatten(build_disk_san(lifetime, replacement_hours=1.0))
        sim = Simulator(model, base_seed=2)
        imp = ImpulseReward("r", "disk/replace")
        res = replicate_runs(sim, 60_000.0, n_replications=8, rewards=[imp])
        # renewal rate ~ 1/101 per hour
        assert res.estimate("r.per_hour").mean == pytest.approx(1 / 101.0, rel=0.05)

    def test_fresh_flag_set_after_first_replacement(self):
        lifetime = Weibull.from_mtbf(0.7, 10.0)
        model = flatten(build_disk_san(lifetime, replacement_hours=0.5))
        sim = Simulator(model, base_seed=3)
        res = sim.run(1000.0)
        assert res.place("disk/fresh") == 1

    def test_propagation_probability_validated(self):
        with pytest.raises(ModelError):
            build_disk_san(Weibull.from_mtbf(0.7, 10.0), 1.0, propagation_p=1.5)


class TestTier:
    def test_exponential_regime_matches_markov(self):
        # High failure rate so the data-loss state is actually visited.
        lifetime = Weibull.from_mtbf(1.0, 200.0)  # shape 1 == exponential
        cfg = RAIDConfig(3, 2, disk_replacement_hours=20.0, tier_restore_hours=30.0)
        model = flatten(build_tier_node(cfg, lifetime, equilibrium_start=False))
        sim = Simulator(model, base_seed=4)
        rw = RateReward("down", lambda m: 1.0 if m["tier/tiers_down"] > 0 else 0.0)
        res = replicate_runs(sim, 100_000.0, n_replications=10, rewards=[rw])
        est = res.estimate("down")
        # Markov approximation: deterministic repairs ~ exponential with same
        # means.  Agreement should be within a modest relative band.
        mk = RAIDTierMarkov(5, 2, 1 / 200.0, 1 / 20.0, 1 / 30.0)
        expected = 1.0 - mk.availability()
        assert est.mean == pytest.approx(expected, rel=0.35)

    def test_data_loss_requires_ft_plus_one(self):
        lifetime = Weibull.from_mtbf(1.0, 1e9)  # disks essentially never fail
        cfg = RAIDConfig(8, 2)
        model = flatten(build_tier_node(cfg, lifetime, equilibrium_start=False))
        sim = Simulator(model, base_seed=5)
        res = sim.run(10_000.0)
        assert res.place("tier/tiers_down") == 0
        assert res.place("tier/data_loss_total") == 0

    def test_propagation_creates_data_loss(self):
        # With p=1 every failure cascades through the whole tier.
        lifetime = Weibull.from_mtbf(1.0, 5_000.0)
        cfg = RAIDConfig(8, 2, disk_replacement_hours=4.0)
        model = flatten(
            build_tier_node(cfg, lifetime, propagation_p=1.0, equilibrium_start=False)
        )
        sim = Simulator(model, base_seed=6)
        res = sim.run(20_000.0)
        assert res.place("tier/data_loss_total") >= 1

    def test_no_propagation_no_loss_at_low_rates(self):
        lifetime = Weibull.from_mtbf(0.7, 300_000.0)
        model = flatten(
            build_tier_node(RAID6_8P2, lifetime, propagation_p=0.0)
        )
        sim = Simulator(model, base_seed=7)
        res = sim.run(8760.0)
        assert res.place("tier/data_loss_total") == 0

    def test_replacement_counting_scales_with_tier(self):
        lifetime = Weibull.from_mtbf(1.0, 1000.0)
        model = flatten(build_tier_node(RAID6_8P2, lifetime, equilibrium_start=False))
        sim = Simulator(model, base_seed=8)
        imp = ImpulseReward("r", "*/replace")
        res = replicate_runs(sim, 20_000.0, n_replications=4, rewards=[imp])
        assert res.estimate("r.per_hour").mean == pytest.approx(
            10.0 / 1004.0, rel=0.1
        )


class TestFailoverPair:
    def test_matches_markov_with_propagation(self):
        lam, mu, p = 1 / 200.0, 1 / 20.0, 0.1
        node = build_failover_pair_node(Exponential(lam), Exponential(mu), p)
        sim = Simulator(flatten(node), base_seed=9)
        rw = RateReward("u", lambda m: 1.0 if m["pair/pairs_down"] > 0 else 0.0)
        res = replicate_runs(sim, 100_000.0, n_replications=10, rewards=[rw])
        expected = failover_pair_unavailability(lam, mu, p)
        est = res.estimate("u")
        assert abs(est.mean - expected) < max(4 * est.half_width, 0.15 * expected)

    def test_no_propagation_matches_markov(self):
        lam, mu = 1 / 100.0, 1 / 10.0
        node = build_failover_pair_node(Exponential(lam), Exponential(mu), 0.0)
        sim = Simulator(flatten(node), base_seed=10)
        rw = RateReward("u", lambda m: 1.0 if m["pair/pairs_down"] > 0 else 0.0)
        res = replicate_runs(sim, 100_000.0, n_replications=10, rewards=[rw])
        expected = failover_pair_unavailability(lam, mu, 0.0)
        est = res.estimate("u")
        assert abs(est.mean - expected) < max(4 * est.half_width, 0.15 * expected)

    def test_propagation_increases_outages(self):
        lam, mu = 1 / 500.0, 1 / 24.0
        counts = {}
        for p in (0.0, 0.5):
            node = build_failover_pair_node(Exponential(lam), Exponential(mu), p)
            sim = Simulator(flatten(node), base_seed=11)
            res = sim.run(200_000.0)
            counts[p] = res.place("pair/pair_outages_total")
        assert counts[0.5] > counts[0.0]

    def test_invalid_propagation(self):
        with pytest.raises(ModelError):
            build_failover_pair_node(Exponential(1.0), Exponential(1.0), 2.0)

    def test_outage_counter_consistent_with_pair_down(self):
        node = build_failover_pair_node(
            Exponential(1 / 50.0), Uniform(5.0, 10.0), 0.2
        )
        sim = Simulator(flatten(node), base_seed=12)
        res = sim.run(50_000.0)
        # pairs_down is 0 or 1 for a single pair at end of run
        assert res.place("pair/pairs_down") in (0, 1)


class TestDDNUnit:
    def make_spec(self, **kw) -> DDNUnitSpec:
        defaults = dict(
            raid=RAIDConfig(2, 1, disk_replacement_hours=5.0),
            tiers_per_unit=2,
            disk_lifetime=Weibull.from_mtbf(1.0, 500.0),
            controller_failure=Exponential(1 / 300.0),
            controller_repair=Exponential(1 / 20.0),
            equilibrium_start=False,
        )
        defaults.update(kw)
        return DDNUnitSpec(**defaults)

    def test_structure(self):
        model = flatten(build_ddn_unit_node(self.make_spec()))
        # 2 tiers x 3 disks + controllers
        assert len(model.match("*/disk[*]/up")) == 6
        assert len(model.match("*/controller[*]/up")) == 2

    def test_counters_unify_across_fleet(self):
        model = flatten(build_ddn_fleet_node(self.make_spec(), 3))
        assert len(model.match("*tiers_down")) == 1
        assert len(model.match("*ctrl_pairs_down")) == 1
        assert len(model.match("*disks_replaced")) == 1

    def test_fleet_replacement_rate_scales(self):
        spec = self.make_spec()
        rates = []
        for n_units in (1, 3):
            model = flatten(build_ddn_fleet_node(spec, n_units))
            sim = Simulator(model, base_seed=13)
            imp = ImpulseReward("r", "*/replace")
            res = replicate_runs(sim, 20_000.0, n_replications=4, rewards=[imp])
            rates.append(res.estimate("r.per_hour").mean)
        assert rates[1] == pytest.approx(3 * rates[0], rel=0.2)

    def test_spec_validation(self):
        with pytest.raises(ParameterError):
            self.make_spec(tiers_per_unit=0)

    def test_disks_per_unit(self):
        assert self.make_spec().disks_per_unit == 6


class TestMTTDLApproximation:
    def test_matches_numeric_in_rare_failure_regime(self):
        mk = RAIDTierMarkov(10, 2, 1e-6, 0.25)
        approx = raid_mttdl_approximation(10, 2, 1e-6, 0.25)
        assert mk.mttdl() == pytest.approx(approx, rel=0.01)

    def test_more_parity_longer_mttdl(self):
        args = (10, 1e-5, 0.25)
        m1 = RAIDTierMarkov(args[0], 1, args[1], args[2]).mttdl()
        m2 = RAIDTierMarkov(args[0], 2, args[1], args[2]).mttdl()
        m3 = RAIDTierMarkov(args[0], 3, args[1], args[2]).mttdl()
        assert m1 < m2 < m3

    def test_validation(self):
        with pytest.raises(ModelError):
            raid_mttdl_approximation(10, 0, 1.0, 1.0)
        with pytest.raises(ModelError):
            RAIDTierMarkov(1, 1, 1.0, 1.0)


class TestCapacityDependentRebuild:
    def test_vulnerability_window_math(self):
        cfg = RAID6_8P2.with_rebuild_rate(2.0)
        assert cfg.vulnerability_hours(0.25) == pytest.approx(4.5)
        assert cfg.vulnerability_hours(2.56) == pytest.approx(9.12)
        # default: rebuild folded into the replacement figure
        assert RAID6_8P2.vulnerability_hours(2.56) == pytest.approx(4.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ParameterError):
            RAIDConfig(rebuild_hours_per_tb=-1.0)
        with pytest.raises(ParameterError):
            RAID6_8P2.vulnerability_hours(-0.1)

    def test_longer_window_increases_losses(self):
        """With aggressive propagation, a longer vulnerability window must
        produce at least as many data-loss events."""
        from repro.core import ImpulseReward, replicate_runs

        lifetime = Weibull.from_mtbf(1.0, 3_000.0)
        losses = {}
        for rate in (0.0, 20.0):
            cfg = RAIDConfig(8, 2, disk_replacement_hours=2.0).with_rebuild_rate(rate)
            node = build_tier_node(
                cfg, lifetime, propagation_p=0.3,
                equilibrium_start=False, disk_capacity_tb=1.0,
            )
            sim = Simulator(flatten(node), base_seed=31)
            exp = replicate_runs(
                sim, 40_000.0, n_replications=4,
                rewards=[ImpulseReward("l", "*/data_loss")],
            )
            losses[rate] = exp.estimate("l").mean
        assert losses[20.0] >= losses[0.0]

    def test_rebuild_rate_does_not_change_replacement_param(self):
        cfg = RAID6_8P2.with_rebuild_rate(5.0)
        assert cfg.disk_replacement_hours == RAID6_8P2.disk_replacement_hours
