"""Log generation and the generation → analysis loop closure."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.analysis import (
    availability_from_outages,
    job_statistics,
    jobs_from_events,
    mount_failures_by_day,
    pair_outages,
    parse_lines,
)
from repro.cfs import abe_parameters
from repro.core import BinaryTrace, Weibull, make_generator
from repro.core.trace import EventTrace, TraceEvent
from repro.loggen import (
    AbeLogWindows,
    disk_survival_dataset,
    generate_abe_logs,
    generate_job_records,
    hours_to_datetime,
    job_end_events,
    mount_failure_events,
    outage_events_from_trace,
    write_log,
)

EPOCH = datetime(2007, 5, 3)


def make_binary_trace(transitions, end):
    tr = BinaryTrace("x", lambda m: True)
    tr.reset()
    for t, v in transitions:
        tr.observe(t, v)
    tr.finish(end)
    return tr


def make_event_trace(name, entries):
    tr = EventTrace(name, "*")
    tr.reset()
    tr._events = [TraceEvent(t, act, None) for t, act in entries]
    return tr


class TestOutageEvents:
    def test_down_intervals_become_start_end_pairs(self):
        tr = make_binary_trace([(0.0, True), (10.0, False), (12.5, True)], 100.0)
        events = outage_events_from_trace(tr, EPOCH, cause="I/O hardware")
        assert len(events) == 2
        assert events[0].event_type == "outage_start"
        assert events[0].timestamp == EPOCH + timedelta(hours=10)
        assert events[1].timestamp == EPOCH + timedelta(hours=12.5)

    def test_roundtrip_availability(self):
        tr = make_binary_trace(
            [(0.0, True), (10.0, False), (20.0, True), (50.0, False), (55.0, True)],
            100.0,
        )
        events = outage_events_from_trace(tr, EPOCH, cause="X")
        from repro.analysis import EventLog

        outages = pair_outages(EventLog(events))
        a = availability_from_outages(outages, EPOCH, EPOCH + timedelta(hours=100))
        assert a == pytest.approx(tr.availability(), abs=1e-9)


class TestMountFailures:
    def test_leaf_and_spine_scopes(self):
        switch_tr = make_event_trace(
            "sw", [(float(i), f"c/switches/switch[{i % 4}]/transient") for i in range(40)]
        )
        spine_tr = make_event_trace("sp", [(50.0, "c/spine/transient")])
        rng = make_generator(1)
        events = mount_failure_events(
            switch_tr,
            spine_tr,
            EPOCH,
            rng,
            n_compute_nodes=300,
            nodes_per_switch=75,
            leaf_observation_p=1.0,
            spine_observation_p=1.0,
            local_noise_per_1000h=0.0,
            horizon_hours=100.0,
        )
        by_day = mount_failures_by_day(
            __import__("repro.analysis", fromlist=["EventLog"]).EventLog(events)
        )
        assert sum(by_day.values()) > 0
        # spine storm should touch more nodes than any single switch
        assert max(by_day.values()) > 22  # 0.2 x 300 = 60 min share minus overlap

    def test_unparseable_switch_path_rejected(self):
        bad = make_event_trace("sw", [(1.0, "c/other/transient")])
        empty = make_event_trace("sp", [])
        with pytest.raises(Exception):
            mount_failure_events(
                bad, empty, EPOCH, make_generator(1),
                n_compute_nodes=10, nodes_per_switch=5,
                leaf_observation_p=1.0, horizon_hours=10.0,
            )


class TestJobGeneration:
    def test_all_complete_on_quiet_system(self):
        cfs = make_binary_trace([(0.0, True)], 1000.0)
        sw = make_event_trace("sw", [])
        sp = make_event_trace("sp", [])
        jobs = generate_job_records(
            cfs, sw, sp, make_generator(2), 1000.0, EPOCH,
            job_rate_per_hour=2.0, job_mean_duration_hours=4.0,
            job_io_exposure_hours=1.0, n_switches=4,
        )
        assert jobs and all(j.status == "completed" for j in jobs)

    def test_transient_on_own_switch_kills(self):
        cfs = make_binary_trace([(0.0, True)], 1000.0)
        sw = make_event_trace(
            "sw", [(float(t), "c/switches/switch[0]/transient") for t in range(0, 1000, 2)]
        )
        sp = make_event_trace("sp", [])
        jobs = generate_job_records(
            cfs, sw, sp, make_generator(3), 1000.0, EPOCH,
            job_rate_per_hour=2.0, job_mean_duration_hours=4.0,
            job_io_exposure_hours=1.0, n_switches=1,
        )
        killed = sum(j.status == "failed_transient" for j in jobs)
        assert killed / len(jobs) > 0.7

    def test_outage_onset_kills_via_io_exposure(self):
        cfs = make_binary_trace(
            [(0.0, True)] + [(float(t), v) for t in range(10, 1000, 10)
                             for v in ([False] if (t // 10) % 2 == 1 else [True])],
            1000.0,
        )
        sw = make_event_trace("sw", [])
        sp = make_event_trace("sp", [])
        jobs = generate_job_records(
            cfs, sw, sp, make_generator(4), 1000.0, EPOCH,
            job_rate_per_hour=5.0, job_mean_duration_hours=4.0,
            job_io_exposure_hours=4.0, n_switches=4,
        )
        assert any(j.status == "failed_other" for j in jobs)
        assert all(j.status != "failed_transient" for j in jobs)

    def test_queue_during_outage_toggle(self):
        # CFS down the whole time: queued jobs never fail by default.
        cfs = make_binary_trace([(0.0, False)], 100.0)
        sw = make_event_trace("sw", [])
        sp = make_event_trace("sp", [])
        common = dict(
            rng=make_generator(5), horizon_hours=100.0, epoch=EPOCH,
            job_rate_per_hour=1.0, job_mean_duration_hours=2.0,
            job_io_exposure_hours=1.0, n_switches=2,
        )
        held = generate_job_records(cfs, sw, sp, **common)
        assert all(j.status == "completed" for j in held)
        failed = generate_job_records(
            cfs, sw, sp, queue_during_outage=False, **common
        )
        assert all(j.status == "failed_other" for j in failed)

    def test_job_end_events_roundtrip(self):
        cfs = make_binary_trace([(0.0, True)], 100.0)
        sw = make_event_trace("sw", [])
        sp = make_event_trace("sp", [])
        jobs = generate_job_records(
            cfs, sw, sp, make_generator(6), 100.0, EPOCH,
            job_rate_per_hour=1.0, job_mean_duration_hours=2.0,
            job_io_exposure_hours=1.0, n_switches=2,
        )
        from repro.analysis import EventLog

        back = jobs_from_events(EventLog(job_end_events(jobs)))
        assert len(back) == len(jobs)
        assert {j.job_id for j in back} == {j.job_id for j in jobs}


class TestDiskSurvival:
    def test_renewal_counts(self):
        law = Weibull.from_mtbf(1.0, 100.0)
        data = disk_survival_dataset(50, law, 1000.0, make_generator(7))
        # ~10 renewals per slot
        assert data.n_failures == pytest.approx(500, rel=0.25)
        assert data.durations.min() > 0.0
        # censored entries: exactly one per slot
        assert (~data.observed).sum() == 50

    def test_failures_in_window(self):
        law = Weibull.from_mtbf(1.0, 10.0)
        data = disk_survival_dataset(5, law, 100.0, make_generator(8))
        full = data.failures_in_window(0.0, 100.0)
        half = data.failures_in_window(0.0, 50.0)
        assert len(half) <= len(full) == data.n_failures

    def test_validation(self):
        law = Weibull.from_mtbf(1.0, 10.0)
        with pytest.raises(Exception):
            disk_survival_dataset(0, law, 10.0, make_generator(9))
        with pytest.raises(Exception):
            disk_survival_dataset(5, law, 0.0, make_generator(9))


class TestAbeLogsLoopClosure:
    @pytest.fixture(scope="class")
    def logs(self):
        return generate_abe_logs(seed=2013)

    def test_windows(self, logs):
        assert logs.windows.horizon_hours == pytest.approx(5064.0)

    def test_availability_recovered_from_san_log(self, logs):
        w = logs.windows
        outage_log = logs.san_log.component("san")
        outages = pair_outages(outage_log, window_end=w.san_end)
        a = availability_from_outages(outages, w.epoch, w.san_end)
        assert a == pytest.approx(logs.ground_truth.cfs_availability, abs=0.005)

    def test_job_mix_matches_paper_shape(self, logs):
        stats = job_statistics(logs.jobs)
        # right order of magnitude vs 44085 / 1234 / 184
        assert 40_000 < stats.total < 55_000
        assert stats.failed_transient > 3 * stats.failed_other
        assert stats.cluster_utility > 0.9

    def test_mount_failure_day_counts_have_storm_mix(self, logs):
        counts = mount_failures_by_day(logs.compute_log)
        values = sorted(counts.values())
        assert values, "no mount failure days generated"
        assert values[0] <= 10  # small node-local days exist
        assert values[-1] >= 100  # at least one big storm

    def test_logs_serialize_and_parse(self, logs, tmp_path):
        path = tmp_path / "san.log"
        n = write_log(logs.san_log.events, str(path))
        report = parse_lines(open(path, encoding="utf-8"), strict=True)
        assert len(report.log) == n

    def test_ground_truth_consistency(self, logs):
        gt = logs.ground_truth
        assert 0.9 < gt.cfs_availability <= 1.0
        assert gt.n_switch_transients > 100  # ~4/720h x 16 switches x 5088h
        assert gt.n_disk_replacements >= 0
