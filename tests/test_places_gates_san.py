"""Places, markings, views, gates, and SAN template construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    SAN,
    Case,
    Deterministic,
    Exponential,
    InputGate,
    MarkingVector,
    ModelError,
    OutputGate,
    Place,
    SimulationError,
)
from repro.core.gates import validate_cases
from repro.core.places import LocalView


class TestPlace:
    def test_valid(self):
        p = Place("up", 1)
        assert p.name == "up" and p.initial == 1

    def test_rejects_slash(self):
        with pytest.raises(ModelError):
            Place("a/b", 0)

    def test_rejects_negative_initial(self):
        with pytest.raises(ModelError):
            Place("x", -1)

    def test_rejects_empty_name(self):
        with pytest.raises(ModelError):
            Place("", 0)


class TestMarkingVector:
    def test_reset_restores(self):
        v = MarkingVector([1, 2, 3])
        v.values[0] = 9
        v.changed.add(0)
        v.reset([1, 2, 3])
        assert v.values == [1, 2, 3]
        assert not v.changed

    def test_reset_length_mismatch(self):
        v = MarkingVector([1])
        with pytest.raises(SimulationError):
            v.reset([1, 2])

    def test_drain_changed(self):
        v = MarkingVector([0, 0])
        view = LocalView(v, {"a": 0, "b": 1})
        view["a"] = 5
        assert v.drain_changed() == {0}
        assert v.drain_changed() == set()


class TestLocalView:
    def make(self):
        v = MarkingVector([1, 0, 7])
        return v, LocalView(v, {"up": 0, "down": 1, "count": 2})

    def test_read_write(self):
        _, m = self.make()
        assert m["up"] == 1
        m["count"] += 1
        assert m["count"] == 8

    def test_unknown_place(self):
        _, m = self.make()
        with pytest.raises(SimulationError, match="unknown place"):
            m["nope"]
        with pytest.raises(SimulationError, match="unknown place"):
            m["nope"] = 1

    def test_negative_write_rejected(self):
        _, m = self.make()
        with pytest.raises(SimulationError, match="negative"):
            m["down"] = -1

    def test_write_records_change_only_on_difference(self):
        v, m = self.make()
        m["up"] = 1  # same value: no change recorded
        assert not v.changed
        m["up"] = 0
        assert v.changed == {0}

    def test_read_tracking(self):
        v, m = self.make()
        v.begin_tracking()
        _ = m["up"], m["count"]
        reads = v.end_tracking()
        assert reads == {0, 2}

    def test_contains_iter_get(self):
        _, m = self.make()
        assert "up" in m and "nope" not in m
        assert set(iter(m)) == {"up", "down", "count"}
        assert m.get("nope") is None
        assert m.get("up") == 1

    def test_as_dict(self):
        _, m = self.make()
        assert m.as_dict() == {"up": 1, "down": 0, "count": 7}


class TestGates:
    def test_input_gate_requires_callables(self):
        with pytest.raises(ModelError):
            InputGate("not callable")  # type: ignore[arg-type]

    def test_output_gate_requires_callable(self):
        with pytest.raises(ModelError):
            OutputGate(None)  # type: ignore[arg-type]

    def test_case_probability_bounds(self):
        with pytest.raises(ModelError):
            Case(1.5)
        with pytest.raises(ModelError):
            Case(-0.1)

    def test_case_marking_dependent_probability(self):
        v = MarkingVector([2])
        m = LocalView(v, {"n": 0})
        c = Case(lambda mm: mm["n"] / 4.0)
        assert c.probability_in(m) == pytest.approx(0.5)

    def test_case_marking_dependent_out_of_range(self):
        v = MarkingVector([8])
        m = LocalView(v, {"n": 0})
        c = Case(lambda mm: mm["n"] / 4.0)
        with pytest.raises(ModelError):
            c.probability_in(m)

    def test_validate_cases_sums(self):
        validate_cases((Case(0.3), Case(0.7)), "a")
        with pytest.raises(ModelError, match="sum"):
            validate_cases((Case(0.3), Case(0.3)), "a")

    def test_validate_cases_skips_callables(self):
        validate_cases((Case(lambda m: 0.1), Case(0.3)), "a")  # no error


class TestSANTemplate:
    def test_duplicate_place(self):
        san = SAN("s")
        san.place("a")
        with pytest.raises(ModelError, match="duplicate place"):
            san.place("a")

    def test_duplicate_activity(self):
        san = SAN("s")
        san.place("a", 1)
        san.timed("t", Exponential(1.0), enabled=lambda m: True)
        with pytest.raises(ModelError, match="duplicate activity"):
            san.timed("t", Exponential(1.0), enabled=lambda m: True)

    def test_activity_requires_enabling(self):
        san = SAN("s")
        san.place("a", 1)
        with pytest.raises(ModelError, match="no enabling predicate"):
            san.timed("t", Exponential(1.0))

    def test_timed_requires_distribution(self):
        from repro.core.san import ActivityDef, TIMED

        with pytest.raises(ModelError, match="requires a distribution"):
            ActivityDef("t", TIMED, None, input_gates=(InputGate(lambda m: True),))

    def test_instant_must_not_have_distribution(self):
        from repro.core.san import ActivityDef, INSTANT

        with pytest.raises(ModelError, match="must not have"):
            ActivityDef(
                "i",
                INSTANT,
                Deterministic(1.0),
                input_gates=(InputGate(lambda m: True),),
            )

    def test_validate_empty(self):
        san = SAN("s")
        with pytest.raises(ModelError, match="no places"):
            san.validate()
        san.place("a")
        with pytest.raises(ModelError, match="no activities"):
            san.validate()

    def test_places_from(self):
        san = SAN("s")
        san.places_from(["a", "b", "c"], initial=2)
        assert all(san.places[n].initial == 2 for n in "abc")

    def test_name_validation(self):
        with pytest.raises(ModelError):
            SAN("bad/name")
        with pytest.raises(ModelError):
            SAN("")

    def test_convenience_gates_combined_with_explicit(self):
        san = SAN("s")
        san.place("a", 1)
        extra = InputGate(lambda m: m["a"] < 5, name="guard")
        act = san.timed(
            "t",
            Exponential(1.0),
            enabled=lambda m: m["a"] > 0,
            input_gates=[extra],
        )
        assert len(act.input_gates) == 2
