"""Log-analysis toolkit: events, parsing, filtering, availability, jobs."""

from __future__ import annotations

from datetime import datetime, timedelta

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    COMPLETED,
    FAILED_OTHER,
    FAILED_TRANSIENT,
    EventLog,
    JobRecord,
    LogEvent,
    Outage,
    availability_from_outages,
    availability_range,
    coalesce_episodes,
    detect_storms,
    downtime_table,
    format_event,
    job_statistics,
    jobs_from_events,
    merge_overlapping,
    mount_failures_by_day,
    pair_outages,
    parse_file,
    parse_line,
    parse_lines,
    total_downtime_hours,
)
from repro.core import AnalysisError, ParseError

T0 = datetime(2007, 7, 21, 23, 3)


def ev(minutes: float = 0.0, **kw) -> LogEvent:
    defaults = dict(
        timestamp=T0 + timedelta(minutes=minutes),
        source="oss-01",
        component="san",
        severity="ERROR",
        event_type="io_hw_failure",
        message="controller fault",
    )
    defaults.update(kw)
    return LogEvent(**defaults)


class TestLogEvent:
    def test_day(self):
        assert ev().day == T0.date()

    def test_severity_validated(self):
        with pytest.raises(AnalysisError):
            ev(severity="LOUD")

    def test_requires_source_and_type(self):
        with pytest.raises(AnalysisError):
            ev(source="")
        with pytest.raises(AnalysisError):
            ev(event_type="")

    def test_attr_default(self):
        e = ev(attrs={"cause": "I/O hardware"})
        assert e.attr("cause") == "I/O hardware"
        assert e.attr("nope", "x") == "x"


class TestEventLog:
    def test_sorted_on_construction(self):
        log = EventLog([ev(10), ev(0), ev(5)])
        times = [e.timestamp for e in log]
        assert times == sorted(times)

    def test_combinators(self):
        log = EventLog(
            [
                ev(0),
                ev(1, component="network", event_type="mount_failure", severity="WARN"),
                ev(2, source="compute-1"),
            ]
        )
        assert len(log.component("san")) == 2
        assert len(log.types("mount_failure")) == 1
        assert len(log.severity_at_least("ERROR")) == 2
        assert len(log.from_sources("compute-1")) == 1
        assert log.sources() == ["compute-1", "oss-01"]

    def test_between_half_open(self):
        log = EventLog([ev(0), ev(60)])
        window = log.between(T0, T0 + timedelta(hours=1))
        assert len(window) == 1

    def test_counts(self):
        log = EventLog([ev(0), ev(1), ev(24 * 60)])
        by_day = log.count_by_day()
        assert sorted(by_day.values()) == [1, 2]
        assert log.count_by_type() == {"io_hw_failure": 3}

    def test_empty_log_errors(self):
        log = EventLog([])
        with pytest.raises(AnalysisError):
            _ = log.start
        assert len(log) == 0

    def test_concat(self):
        log = EventLog([ev(0)]) + EventLog([ev(1)])
        assert len(log) == 2

    def test_severity_unknown(self):
        with pytest.raises(AnalysisError):
            EventLog([ev(0)]).severity_at_least("NOPE")


class TestParsing:
    def test_roundtrip_simple(self):
        e = ev(attrs={"cause": "I/O hardware", "tier": "3"})
        line = format_event(e)
        back = parse_line(line)
        assert back == e
        assert back.attrs == dict(e.attrs)
        assert back.message == e.message

    def test_quoted_message_with_escapes(self):
        e = ev(message='say "hi" \\ there')
        assert parse_line(format_event(e)).message == e.message

    def test_missing_required_key(self):
        with pytest.raises(ParseError, match="missing required"):
            parse_line("2007-07-21T23:03:00 host=a comp=san sev=ERROR")

    def test_bad_timestamp(self):
        with pytest.raises(ParseError, match="timestamp"):
            parse_line("yesterday host=a comp=b sev=ERROR type=t")

    def test_bad_severity(self):
        with pytest.raises(ParseError, match="severity"):
            parse_line("2007-07-21T23:03:00 host=a comp=b sev=WAT type=t")

    def test_unterminated_quote(self):
        with pytest.raises(ParseError, match="unterminated"):
            parse_line('2007-07-21T23:03:00 host=a comp=b sev=ERROR type=t msg="oops')

    def test_duplicate_keys(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_line("2007-07-21T23:03:00 host=a host=b comp=c sev=ERROR type=t")

    def test_lenient_mode_collects_errors(self):
        lines = [
            format_event(ev(0)),
            "garbage line here",
            "# a comment",
            "",
            format_event(ev(1)),
        ]
        report = parse_lines(lines, strict=False)
        assert len(report.log) == 2
        assert report.n_skipped == 1
        assert report.errors[0][0] == 2

    def test_strict_mode_raises(self):
        with pytest.raises(ParseError):
            parse_lines(["garbage"], strict=True)

    def test_file_roundtrip(self, tmp_path):
        from repro.loggen import write_log

        events = [ev(i) for i in range(5)]
        path = tmp_path / "test.log"
        n = write_log(events, str(path))
        assert n == 5
        report = parse_file(path)
        assert len(report.log) == 5
        assert report.log.events[0] == events[0]

    def test_reserved_attr_key_rejected_on_format(self):
        e = ev(attrs={"msg": "collision"})
        with pytest.raises(ParseError, match="reserved"):
            format_event(e)


class TestFiltering:
    def test_coalesce_episodes(self):
        log = EventLog([ev(0), ev(5), ev(10), ev(200)])
        episodes = coalesce_episodes(log, gap_hours=1.0)
        assert len(episodes) == 2
        assert episodes[0].n_events == 3
        assert episodes[0].duration_hours == pytest.approx(10 / 60)

    def test_coalesce_respects_key(self):
        log = EventLog([ev(0), ev(1, source="oss-02")])
        episodes = coalesce_episodes(log, gap_hours=1.0)
        assert len(episodes) == 2

    def test_coalesce_bad_gap(self):
        with pytest.raises(AnalysisError):
            coalesce_episodes(EventLog([]), gap_hours=-1.0)

    def test_pair_outages(self):
        log = EventLog(
            [
                ev(0, event_type="outage_start", attrs={"cause": "I/O hardware"}),
                ev(60, event_type="outage_end", attrs={"cause": "I/O hardware"}),
            ]
        )
        outages = pair_outages(log)
        assert len(outages) == 1
        assert outages[0].hours == pytest.approx(1.0)
        assert outages[0].cause == "I/O hardware"

    def test_pair_outages_interleaved_causes(self):
        log = EventLog(
            [
                ev(0, event_type="outage_start", attrs={"cause": "A"}),
                ev(10, event_type="outage_start", attrs={"cause": "B"}),
                ev(20, event_type="outage_end", attrs={"cause": "A"}),
                ev(40, event_type="outage_end", attrs={"cause": "B"}),
            ]
        )
        outages = pair_outages(log)
        assert {o.cause for o in outages} == {"A", "B"}
        assert sum(o.hours for o in outages) == pytest.approx((20 + 30) / 60)

    def test_pair_outages_dangling_raises_without_end(self):
        log = EventLog([ev(0, event_type="outage_start")])
        with pytest.raises(AnalysisError, match="unclosed"):
            pair_outages(log)

    def test_pair_outages_dangling_clipped(self):
        log = EventLog([ev(0, event_type="outage_start")])
        end = T0 + timedelta(hours=2)
        outages = pair_outages(log, window_end=end)
        assert outages[0].hours == pytest.approx(2.0)

    def test_pair_outages_end_without_start(self):
        log = EventLog([ev(0, event_type="outage_end")])
        with pytest.raises(AnalysisError, match="without start"):
            pair_outages(log)

    def test_detect_storms(self):
        events = [
            ev(0, source=f"compute-{i}", event_type="mount_failure") for i in range(5)
        ] + [ev(600, source="compute-9", event_type="mount_failure")]
        storms = detect_storms(EventLog(events), gap_hours=0.5, min_sources=3)
        assert len(storms) == 1
        assert storms[0].n_sources == 5

    def test_mount_failures_by_day_counts_distinct_nodes(self):
        events = [
            ev(0, source="compute-1", event_type="mount_failure"),
            ev(1, source="compute-1", event_type="mount_failure"),
            ev(2, source="compute-2", event_type="mount_failure"),
        ]
        counts = mount_failures_by_day(EventLog(events))
        assert list(counts.values()) == [2]


class TestAvailability:
    def mk_outage(self, start_h: float, hours: float, cause: str = "X") -> Outage:
        s = T0 + timedelta(hours=start_h)
        return Outage(cause, s, s + timedelta(hours=hours))

    def test_merge_overlapping(self):
        merged = merge_overlapping(
            [self.mk_outage(0, 2), self.mk_outage(1, 3), self.mk_outage(10, 1)]
        )
        assert len(merged) == 2
        assert merged[0].hours == pytest.approx(4.0)

    def test_total_downtime_no_double_count(self):
        total = total_downtime_hours([self.mk_outage(0, 2), self.mk_outage(1, 2)])
        assert total == pytest.approx(3.0)

    def test_availability(self):
        outages = [self.mk_outage(10, 10)]
        a = availability_from_outages(outages, T0, T0 + timedelta(hours=100))
        assert a == pytest.approx(0.9)

    def test_availability_clips_to_window(self):
        outages = [self.mk_outage(-5, 10)]  # starts before window
        a = availability_from_outages(outages, T0, T0 + timedelta(hours=100))
        assert a == pytest.approx(0.95)

    def test_availability_range_brackets_point_estimate(self):
        outages = [self.mk_outage(i * 100, 3) for i in range(8)]
        start, end = T0, T0 + timedelta(hours=800)
        lo, hi = availability_range(outages, start, end, step_days=7)
        a = availability_from_outages(outages, start, end)
        assert lo <= a + 1e-9 and hi >= a - 1e-9

    def test_downtime_table_sorted(self):
        rows = downtime_table([self.mk_outage(10, 1), self.mk_outage(0, 1)])
        assert rows[0].start < rows[1].start
        assert "  " in rows[0].format()

    def test_invalid_window(self):
        with pytest.raises(AnalysisError):
            availability_from_outages([], T0, T0)


class TestJobs:
    def mk_job(self, status: str, i: int = 0) -> JobRecord:
        return JobRecord(f"j{i}", T0, 4.0, status)

    def test_statistics(self):
        jobs = (
            [self.mk_job(COMPLETED, i) for i in range(90)]
            + [self.mk_job(FAILED_TRANSIENT, 100 + i) for i in range(8)]
            + [self.mk_job(FAILED_OTHER, 200 + i) for i in range(2)]
        )
        stats = job_statistics(jobs)
        assert stats.total == 100
        assert stats.failed == 10
        assert stats.cluster_utility == pytest.approx(0.9)
        assert stats.transient_to_other_ratio == pytest.approx(4.0)

    def test_ratio_undefined_without_other_failures(self):
        stats = job_statistics([self.mk_job(COMPLETED)])
        with pytest.raises(AnalysisError):
            _ = stats.transient_to_other_ratio

    def test_bad_status_rejected(self):
        with pytest.raises(AnalysisError):
            JobRecord("j", T0, 1.0, "exploded")

    def test_no_jobs_rejected(self):
        with pytest.raises(AnalysisError):
            job_statistics([])

    def test_jobs_from_events_roundtrip(self):
        events = [
            ev(
                0,
                component="job",
                severity="INFO",
                event_type="job_end",
                attrs={"job": "j1", "status": COMPLETED, "hours": "3.5"},
            )
        ]
        jobs = jobs_from_events(EventLog(events))
        assert jobs[0].job_id == "j1"
        assert jobs[0].duration_hours == pytest.approx(3.5)

    def test_jobs_from_events_malformed(self):
        events = [ev(0, event_type="job_end", attrs={"job": "j1"})]
        with pytest.raises(AnalysisError, match="malformed"):
            jobs_from_events(EventLog(events))

    def test_format_rows(self):
        stats = job_statistics([self.mk_job(COMPLETED)])
        assert "Total jobs submitted" in stats.format()


# -- property-based round-trips ------------------------------------------
_attr_keys = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
).filter(lambda k: k not in ("host", "comp", "sev", "type", "msg"))
_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    min_size=0,
    max_size=30,
)


@given(
    message=_values,
    attrs=st.dictionaries(_attr_keys, _values, max_size=4),
    minutes=st.integers(0, 10_000),
)
@settings(max_examples=80, deadline=None)
def test_parse_format_roundtrip_property(message, attrs, minutes):
    """format_event → parse_line is the identity for any payload."""
    e = LogEvent(
        timestamp=T0 + timedelta(minutes=minutes),
        source="node-1",
        component="san",
        severity="WARN",
        event_type="evt",
        message=message,
        attrs=attrs,
    )
    back = parse_line(format_event(e))
    assert back.message == e.message
    assert dict(back.attrs) == {k: str(v) for k, v in e.attrs.items()}
    assert back.timestamp == e.timestamp
