"""Simulator semantics validated against closed-form results."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    SAN,
    BinaryTrace,
    Case,
    Deterministic,
    Exponential,
    ImpulseReward,
    InstantaneousLoopError,
    RateReward,
    SimulationError,
    Simulator,
    Uniform,
    flatten,
    join,
    replicate,
    replicate_runs,
)
from repro.markov import two_state_availability

from _helpers import build_two_state_san


class TestTwoState:
    def test_availability_exponential(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=1)
        rw = RateReward("a", lambda m: 1.0 if m["comp/up"] == 1 else 0.0)
        res = replicate_runs(sim, 60_000.0, n_replications=8, rewards=[rw])
        est = res.estimate("a")
        expected = two_state_availability(100.0, 10.0)
        assert abs(est.mean - expected) < max(3 * est.half_width, 0.01)

    def test_availability_deterministic_repair(self):
        model = flatten(build_two_state_san(deterministic_repair=True))
        sim = Simulator(model, base_seed=2)
        rw = RateReward("a", lambda m: 1.0 if m["comp/up"] == 1 else 0.0)
        res = replicate_runs(sim, 60_000.0, n_replications=8, rewards=[rw])
        # A = MTBF/(MTBF+MTTR) holds for general repair laws too.
        expected = two_state_availability(100.0, 10.0)
        assert res.estimate("a").mean == pytest.approx(expected, abs=0.01)

    def test_failure_frequency(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=3)
        imp = ImpulseReward("fails", "comp/fail")
        res = replicate_runs(sim, 50_000.0, n_replications=6, rewards=[imp])
        # Long-run failure frequency = 1/(MTBF+MTTR).
        assert res.estimate("fails.per_hour").mean == pytest.approx(
            1.0 / 110.0, rel=0.1
        )

    def test_reproducible_with_same_seed(self, two_state_model):
        rw = RateReward("a", lambda m: float(m["comp/up"]))
        r1 = Simulator(two_state_model, base_seed=9).run(5000.0, rewards=[rw])
        r2 = Simulator(two_state_model, base_seed=9).run(5000.0, rewards=[rw])
        assert r1["a"].integral == r2["a"].integral
        assert r1.n_events == r2.n_events

    def test_different_seeds_differ(self, two_state_model):
        rw = RateReward("a", lambda m: float(m["comp/up"]))
        r1 = Simulator(two_state_model, base_seed=9).run(5000.0, rewards=[rw])
        r2 = Simulator(two_state_model, base_seed=10).run(5000.0, rewards=[rw])
        assert r1["a"].integral != r2["a"].integral


class TestWarmupAndWindows:
    def test_warmup_shrinks_duration(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=4)
        rw = RateReward("a", lambda m: float(m["comp/up"]))
        res = sim.run(1000.0, warmup=200.0, rewards=[rw])
        assert res.duration == pytest.approx(800.0)
        assert res["a"].duration == pytest.approx(800.0)

    def test_invalid_until(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=5)
        with pytest.raises(SimulationError):
            sim.run(0.0)
        with pytest.raises(SimulationError):
            sim.run(10.0, warmup=10.0)

    def test_rate_reward_value_bounds(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=6)
        rw = RateReward("a", lambda m: float(m["comp/up"]))
        res = sim.run(2000.0, rewards=[rw])
        assert 0.0 <= res["a"].time_average <= 1.0


class TestStopPredicate:
    def test_stops_on_condition(self):
        san = SAN("s")
        san.place("n", 0)
        san.timed(
            "tick",
            Deterministic(1.0),
            enabled=lambda m: True,
            effect=lambda m, rng: m.__setitem__("n", m["n"] + 1),
        )
        sim = Simulator(flatten(san), base_seed=1)
        res = sim.run(1000.0, stop_predicate=lambda m: m["s/n"] >= 5)
        assert res.stopped_early
        assert res.final_time == pytest.approx(5.0)
        assert res.place("s/n") == 5


class TestInstantaneous:
    def test_priority_order(self):
        san = SAN("s")
        san.place("token", 1)
        san.place("winner", 0)

        def take(value):
            def effect(m, rng):
                if m["token"] == 1:
                    m["token"] = 0
                    m["winner"] = value

            return effect

        san.instant("low", enabled=lambda m: m["token"] == 1, effect=take(1), priority=1)
        san.instant("high", enabled=lambda m: m["token"] == 1, effect=take(2), priority=9)
        sim = Simulator(flatten(san), base_seed=1)
        # no timed activities fire; but initial settle runs instants
        san2 = san  # silence lint
        res = sim.run(1.0)
        assert res.place("s/winner") == 2

    def test_loop_guard(self):
        san = SAN("s")
        san.place("a", 1)
        san.place("b", 0)
        san.instant(
            "flip1",
            enabled=lambda m: m["a"] == 1,
            effect=lambda m, rng: (m.__setitem__("a", 0), m.__setitem__("b", 1)),
        )
        san.instant(
            "flip2",
            enabled=lambda m: m["b"] == 1,
            effect=lambda m, rng: (m.__setitem__("b", 0), m.__setitem__("a", 1)),
        )
        sim = Simulator(flatten(san), base_seed=1, max_instant_chain=100)
        with pytest.raises(InstantaneousLoopError):
            sim.run(1.0)

    def test_chain_counts_events(self):
        san = SAN("s")
        san.place("stage", 0)
        for i in range(5):
            san.instant(
                f"step{i}",
                enabled=lambda m, _i=i: m["stage"] == _i,
                effect=lambda m, rng, _i=i: m.__setitem__("stage", _i + 1),
            )
        sim = Simulator(flatten(san), base_seed=1)
        res = sim.run(1.0)
        assert res.place("s/stage") == 5
        assert res.n_events == 5


class TestCases:
    def test_case_split_frequencies(self):
        san = SAN("s")
        san.place("heads", 0)
        san.place("tails", 0)
        san.timed(
            "flip",
            Exponential(1.0),
            enabled=lambda m: True,
            cases=[
                Case(0.3, lambda m, rng: m.__setitem__("heads", m["heads"] + 1)),
                Case(0.7, lambda m, rng: m.__setitem__("tails", m["tails"] + 1)),
            ],
        )
        sim = Simulator(flatten(san), base_seed=11)
        res = sim.run(20_000.0)
        heads, tails = res.place("s/heads"), res.place("s/tails")
        assert heads + tails > 15_000
        assert heads / (heads + tails) == pytest.approx(0.3, abs=0.02)

    def test_marking_dependent_case_probability(self):
        san = SAN("s")
        san.place("mode", 0)  # 0 -> always case A; later set to 4 -> 50/50
        san.place("a", 0)
        san.place("b", 0)
        san.timed(
            "flip",
            Exponential(1.0),
            enabled=lambda m: True,
            cases=[
                Case(lambda m: 1.0 - m["mode"] / 8.0, lambda m, rng: m.__setitem__("a", m["a"] + 1)),
                Case(lambda m: m["mode"] / 8.0, lambda m, rng: m.__setitem__("b", m["b"] + 1)),
            ],
        )
        sim = Simulator(flatten(san), base_seed=12)
        res = sim.run(5_000.0)
        assert res.place("s/b") == 0  # mode stayed 0: case B never selected


class TestMarkingDependentDistribution:
    def test_rate_follows_marking(self):
        # A counter whose tick rate doubles when boost==1; boost toggles.
        san = SAN("s")
        san.place("boost", 0)
        san.place("n", 0)
        san.timed(
            "tick",
            lambda m: Exponential(2.0 if m["boost"] == 1 else 1.0),
            enabled=lambda m: True,
            effect=lambda m, rng: m.__setitem__("n", m["n"] + 1),
        )
        san.timed(
            "toggle_on",
            Deterministic(1000.0),
            enabled=lambda m: m["boost"] == 0,
            effect=lambda m, rng: m.__setitem__("boost", 1),
        )
        sim = Simulator(flatten(san), base_seed=13)
        res = sim.run(2000.0)
        # first 1000 h at rate 1, second 1000 h at rate 2 -> ~3000 ticks
        assert res.place("s/n") == pytest.approx(3000, rel=0.1)


class TestReactivation:
    def test_reactivating_activity_resamples(self):
        # Service rate depends on queue length; with reactivate=True the
        # remaining service time re-samples when the rate changes.
        san = SAN("q")
        san.place("jobs", 0)
        san.timed(
            "arrive",
            Exponential(1.0),
            enabled=lambda m: m["jobs"] < 50,
            effect=lambda m, rng: m.__setitem__("jobs", m["jobs"] + 1),
        )
        san.timed(
            "serve",
            lambda m: Exponential(2.0 * max(m["jobs"], 1)),
            enabled=lambda m: m["jobs"] > 0,
            effect=lambda m, rng: m.__setitem__("jobs", m["jobs"] - 1),
            reactivate=True,
        )
        sim = Simulator(flatten(san), base_seed=14)
        rw = RateReward("L", lambda m: float(m["q/jobs"]))
        res = sim.run(20_000.0, rewards=[rw])
        # M/M/inf-like with service rate 2 per job: L ~ Poisson(0.5) mean 0.5
        assert res["L"].time_average == pytest.approx(0.5, abs=0.08)


class TestSharedStateAcrossSubmodels:
    def test_alarm_threshold_matches_binomial(self):
        pair = build_two_state_san("unit", 1 / 50.0, 1 / 5.0)
        pair.place("down_count", 0)
        # rebuild with counting effects
        pair = SAN("unit")
        pair.place("up", 1)
        pair.place("down_count", 0)
        pair.timed(
            "fail",
            Exponential(1 / 50.0),
            enabled=lambda m: m["up"] == 1,
            effect=lambda m, rng: (
                m.__setitem__("up", 0),
                m.__setitem__("down_count", m["down_count"] + 1),
            ),
        )
        pair.timed(
            "rep",
            Exponential(1 / 5.0),
            enabled=lambda m: m["up"] == 0,
            effect=lambda m, rng: (
                m.__setitem__("up", 1),
                m.__setitem__("down_count", m["down_count"] - 1),
            ),
        )
        model = flatten(replicate("units", pair, 4, shared=["down_count"]))
        sim = Simulator(model, base_seed=15)
        rw = RateReward("ge2", lambda m: 1.0 if m["units/down_count"] >= 2 else 0.0)
        res = replicate_runs(sim, 40_000.0, n_replications=6, rewards=[rw])
        q = 5.0 / 55.0
        expected = sum(
            math.comb(4, k) * q**k * (1 - q) ** (4 - k) for k in range(2, 5)
        )
        assert res.estimate("ge2").mean == pytest.approx(expected, rel=0.15)


class TestObserverErrors:
    def test_unmatched_impulse_pattern_raises(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=1)
        with pytest.raises(SimulationError, match="matches no activity"):
            sim.run(10.0, rewards=[ImpulseReward("x", "nope/*")])

    def test_duplicate_reward_names_rejected(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=1)
        rws = [
            RateReward("a", lambda m: 1.0),
            RateReward("a", lambda m: 0.0),
        ]
        with pytest.raises(SimulationError, match="duplicate reward"):
            sim.run(10.0, rewards=rws)

    def test_unknown_reward_lookup(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=1)
        res = sim.run(10.0, rewards=[RateReward("a", lambda m: 1.0)])
        with pytest.raises(KeyError):
            res["nope"]
        with pytest.raises(KeyError):
            res.trace("nope")


class TestTraceIntegration:
    def test_binary_trace_availability_equals_rate_reward(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=16)
        rw = RateReward("a", lambda m: float(m["comp/up"]))
        tr = BinaryTrace("up", lambda m: m["comp/up"] == 1)
        res = sim.run(5000.0, rewards=[rw], traces=[tr])
        assert res.trace("up").availability() == pytest.approx(
            res["a"].time_average, abs=1e-12
        )

    def test_intervals_partition_window(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=17)
        tr = BinaryTrace("up", lambda m: m["comp/up"] == 1)
        res = sim.run(3000.0, traces=[tr])
        ivs = res.trace("up").intervals()
        assert ivs[0].start == 0.0
        assert ivs[-1].end == pytest.approx(3000.0)
        for a, b in zip(ivs, ivs[1:]):
            assert a.end == pytest.approx(b.start)
            assert a.value != b.value
