"""Parallel replication subsystem: serial/parallel bit-identity.

Replication ``k`` always draws from seed-tree stream ``(base_seed,
"run", k)`` regardless of which worker executes it, so
``replicate_runs(..., n_jobs=k)`` must return exactly the same
per-metric sample lists for every ``k`` — these tests assert float
equality, not approximation.
"""

from __future__ import annotations

import pytest

from repro.cfs import abe_parameters
from repro.cfs.cluster import ClusterModel, StorageModel, _cluster_setup
from repro.core import (
    SAN,
    Exponential,
    ImpulseReward,
    RateReward,
    ReplicationSetup,
    ReplicationSpec,
    SimulationError,
    Simulator,
    flatten,
    replicate_runs,
    resolve_n_jobs,
)

from _helpers import build_two_state_san

UNTIL = 4000.0


def _rewards():
    return [
        RateReward("avail", lambda m: float(m["comp/up"])),
        ImpulseReward("fails", "comp/fail"),
    ]


def _serial_baseline(n=6, base_seed=77):
    sim = Simulator(flatten(build_two_state_san()), base_seed=base_seed)
    return replicate_runs(sim, UNTIL, n_replications=n, rewards=_rewards())


class TestForkInheritMode:
    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_bit_identical_samples(self, n_jobs):
        base = _serial_baseline()
        sim = Simulator(flatten(build_two_state_san()), base_seed=77)
        par = replicate_runs(
            sim, UNTIL, n_replications=6, rewards=_rewards(), n_jobs=n_jobs
        )
        assert par.metrics == base.metrics
        for metric in base.metrics:
            assert par.samples(metric) == base.samples(metric)

    def test_more_jobs_than_replications(self):
        base = _serial_baseline(n=2)
        sim = Simulator(flatten(build_two_state_san()), base_seed=77)
        par = replicate_runs(
            sim, UNTIL, n_replications=2, rewards=_rewards(), n_jobs=4
        )
        for metric in base.metrics:
            assert par.samples(metric) == base.samples(metric)

    def test_run_counter_continuity(self):
        # serial-after-parallel continues exactly where all-serial would
        base = _serial_baseline(n=8)
        sim = Simulator(flatten(build_two_state_san()), base_seed=77)
        replicate_runs(sim, UNTIL, n_replications=4, rewards=_rewards(), n_jobs=2)
        cont = replicate_runs(sim, UNTIL, n_replications=4, rewards=_rewards())
        for metric in base.metrics:
            assert cont.samples(metric) == base.samples(metric)[4:]

    def test_on_result_requires_serial(self):
        sim = Simulator(flatten(build_two_state_san()), base_seed=1)
        with pytest.raises(SimulationError, match="on_result"):
            replicate_runs(
                sim,
                UNTIL,
                n_replications=2,
                rewards=_rewards(),
                n_jobs=2,
                on_result=lambda k, res: None,
            )


class TestWarmStateIndependence:
    """A run's trajectory must not depend on how warm the simulator is.

    Reactivating activities resample whenever a dirty wake-up finds them
    enabled, and wake-ups are driven by the discovered-dependency
    superset — which grows across runs for predicates with
    marking-dependent (short-circuit) read sets.  The engine rolls
    post-compile discoveries back at the start of each run, so serial,
    parallel, and fresh-simulator execution all see the same state.
    """

    @staticmethod
    def _reactivating_model():
        san = SAN("s")
        # a starts at 0 so the short-circuit predicate below reads only
        # "a" at compile time; the dependency on "t" is discovered
        # mid-run, the first time a flips to 1.
        san.place("a", 0)
        san.place("t", 0)
        san.place("n", 0)
        san.timed(
            "toggle_a",
            Exponential(0.05),
            enabled=lambda m: True,
            effect=lambda m, rng: m.__setitem__("a", 1 - m["a"]),
        )
        san.timed(
            "toggle_t",
            Exponential(0.08),
            enabled=lambda m: True,
            effect=lambda m, rng: m.__setitem__("t", 1 - m["t"]),
        )
        # short-circuit predicate: reads "t" only when a == 1, so the
        # discovered read set grows mid-run
        san.timed(
            "work",
            Exponential(0.5),
            enabled=lambda m: m["a"] == 0 or m["t"] == 0,
            effect=lambda m, rng: m.__setitem__("n", m["n"] + 1),
            reactivate=True,
        )
        return flatten(san)

    def test_warm_run_equals_fresh_run(self):
        model = self._reactivating_model()
        sim = Simulator(model, base_seed=42)
        warm = [sim.run(2000.0).place("s/n") for _ in range(6)]
        fresh = []
        for k in range(6):
            s2 = Simulator(model, base_seed=42)
            s2._run_counter = k
            fresh.append(s2.run(2000.0).place("s/n"))
        assert warm == fresh

    @pytest.mark.parametrize("n_jobs", [2, 6])
    def test_parallel_identical_with_reactivation(self, n_jobs):
        model = self._reactivating_model()
        rw = [ImpulseReward("works", "s/work")]
        serial = replicate_runs(
            Simulator(model, base_seed=42), 2000.0, n_replications=6, rewards=rw
        )
        par = replicate_runs(
            Simulator(model, base_seed=42),
            2000.0,
            n_replications=6,
            rewards=rw,
            n_jobs=n_jobs,
        )
        assert par.samples("works") == serial.samples("works")


class TestSpecMode:
    @pytest.mark.parametrize("n_jobs", [2, 3])
    def test_cluster_model_identical(self, n_jobs):
        serial = ClusterModel(abe_parameters(), base_seed=2008).simulate(
            hours=1500.0, n_replications=6
        )
        parallel = ClusterModel(abe_parameters(), base_seed=2008).simulate(
            hours=1500.0, n_replications=6, n_jobs=n_jobs
        )
        assert parallel.experiment.metrics == serial.experiment.metrics
        for metric in serial.experiment.metrics:
            assert parallel.experiment.samples(metric) == serial.experiment.samples(
                metric
            )

    def test_storage_model_identical(self):
        serial = StorageModel(abe_parameters(), base_seed=96).simulate(
            hours=1500.0, n_replications=4
        )
        parallel = StorageModel(abe_parameters(), base_seed=96).simulate(
            hours=1500.0, n_replications=4, n_jobs=2
        )
        for metric in serial.experiment.metrics:
            assert parallel.experiment.samples(metric) == serial.experiment.samples(
                metric
            )

    def test_spec_is_picklable(self):
        import pickle

        spec = ClusterModel(abe_parameters(), base_seed=1).replication_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.factory is _cluster_setup
        setup = clone.build()
        assert isinstance(setup, ReplicationSetup)

    def test_bad_factory_rejected(self):
        spec = ReplicationSpec(dict)  # returns {}, not a ReplicationSetup
        with pytest.raises(SimulationError, match="ReplicationSetup"):
            spec.build()


class TestResolveNJobs:
    def test_values(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(-1) >= 1

    def test_invalid(self):
        with pytest.raises(SimulationError):
            resolve_n_jobs(0)
        with pytest.raises(SimulationError):
            resolve_n_jobs(-2)
