"""Vectorized batch sampling: stream equivalence and equilibrium accuracy.

Two contracts pin the PR 4 sampling layer:

* **stream equivalence** — for every law advertising
  ``Distribution.batchable``, ``sample_many(rng, n)`` returns exactly the
  variates that ``n`` successive ``sample(rng)`` calls would (same stream
  consumption, same arithmetic, bit-for-bit).  This is what makes block
  serving a pure wall-clock optimization: a :class:`BatchedSampler`
  changes *when* draws are taken from the stream, never *what* a given
  stretch of stream produces;
* **grid accuracy** — :class:`EquilibriumResidual`'s grid-interpolated
  inverse CDF (``sample`` / ``sample_many``) tracks the exact
  root-finding inversion (``sample_exact``) to high relative accuracy,
  including in the far tails.

Plus the engine-level determinism contracts of the ``batch_dynamic``
knob: same seed ⇒ same trajectory, warm == fresh, fast == reference.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Simulator, flatten
from repro.core.distributions import (
    BatchedSampler,
    Deterministic,
    Empirical,
    EquilibriumResidual,
    Erlang,
    Exponential,
    Gamma,
    LogNormal,
    Shifted,
    Uniform,
    Weibull,
)

from _helpers import build_fleet_node

pytestmark = pytest.mark.slow

BATCHABLE_LAWS = [
    Exponential(0.31),
    Uniform(0.5, 7.5),
    Weibull(0.7, 3000.0),
    Weibull(1.8, 40.0),
    Gamma(2.3, 4.0),
    Erlang(3, 0.5),
    LogNormal(1.1, 0.45),
    Empirical([1.0, 2.0, 5.5, 9.0]),
    Shifted(2.0, Exponential(1.0)),
    EquilibriumResidual(Weibull(0.7, 300_000.0)),
    EquilibriumResidual(Exponential(1 / 500.0)),
    EquilibriumResidual(Deterministic(12.0)),
]


class TestStreamEquivalence:
    @pytest.mark.parametrize(
        "dist", BATCHABLE_LAWS, ids=lambda d: repr(d)[:40]
    )
    def test_sample_many_equals_per_draw(self, dist):
        assert dist.batchable
        r1 = np.random.default_rng(1234)
        r2 = np.random.default_rng(1234)
        batch = dist.sample_many(r1, 500)
        scalar = np.array([dist.sample(r2) for _ in range(500)])
        np.testing.assert_array_equal(batch, scalar)
        # both consumed the same stretch of stream
        assert r1.standard_normal() == r2.standard_normal()

    @given(seed=st.integers(0, 2**32 - 1), size=st.integers(1, 300))
    @settings(max_examples=40, deadline=None)
    def test_equilibrium_batch_bitwise(self, seed, size):
        dist = _EQ_WEIBULL
        r1 = np.random.default_rng(seed)
        r2 = np.random.default_rng(seed)
        batch = dist.sample_many(r1, size)
        scalar = np.array([dist.sample(r2) for _ in range(size)])
        np.testing.assert_array_equal(batch, scalar)

    def test_batched_sampler_serves_blockwise(self):
        dist = Exponential(1.0)
        sampler = BatchedSampler(dist, batch_size=8)
        r1 = np.random.default_rng(7)
        r2 = np.random.default_rng(7)
        served = [sampler.sample(r1) for _ in range(8)]
        direct = list(dist.sample_many(r2, 8))
        assert served == direct

    def test_non_batchable_laws_flagged(self):
        assert not Deterministic(3.0).batchable
        assert not Shifted(1.0, Deterministic(3.0)).batchable

    def test_subclass_overriding_sample_loses_batchable(self):
        """A subclass that changes per-draw semantics without vouching
        for stream equivalence must not inherit block serving."""

        class Capped(Exponential):
            def sample(self, rng):
                return min(0.5, super().sample(rng))

        assert Capped(1.0).batchable is False

        class Vouched(Exponential):
            batchable = True

            def sample(self, rng):
                return super().sample(rng)

            def sample_many(self, rng, size):
                return super().sample_many(rng, size)

        assert Vouched(1.0).batchable is True

        class Untouched(Exponential):
            pass

        assert Untouched(1.0).batchable is True


# Module-level so the grid (built once per process) is shared by tests.
_EQ_WEIBULL = EquilibriumResidual(Weibull(0.71, 300_000.0))


class TestEquilibriumGridAccuracy:
    @staticmethod
    def _assert_accurate(dist, u, approx, exact):
        """The grid's single accuracy class: 2e-4 relative, or — in the
        deep low tail, where quantiles are minuscule and the geometric
        tail grid is coarse in *relative* terms — absolutely below 1e-7
        of the distribution mean.  Draws with ``u > _EXACT_TAIL_U``
        bypass the grid entirely (exact inversion), so the steep
        upper-tail quantiles that used to need a 2.5e-2 carve-out
        (measured worst ≈ 1.4e-2 relative at u ≈ 0.9996 for shape 0.5)
        no longer go through the interpolant.
        """
        assert abs(approx - exact) <= max(2e-4 * exact, 1e-7 * dist.mean())

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_grid_sample_tracks_exact_inversion(self, seed):
        """Same uniform in, grid and exact inversion agree closely."""
        dist = _EQ_WEIBULL
        u = np.random.default_rng(seed).uniform()
        approx = dist.sample(np.random.default_rng(seed))
        exact = dist.sample_exact(np.random.default_rng(seed))
        self._assert_accurate(dist, u, approx, exact)

    @given(
        shape=st.floats(0.5, 2.5),
        mtbf=st.floats(1e3, 1e6),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_grid_accuracy_across_weibull_parameterizations(
        self, shape, mtbf, seed
    ):
        dist = EquilibriumResidual(Weibull.from_mtbf(shape, mtbf))
        u = np.random.default_rng(seed).uniform()
        approx = dist.sample(np.random.default_rng(seed))
        exact = dist.sample_exact(np.random.default_rng(seed))
        self._assert_accurate(dist, u, approx, exact)

    @pytest.mark.parametrize(
        "u", [1e-8, 1e-6, 1e-4, 0.5, 0.999, 0.99999, 1.0 - 1e-7]
    )
    def test_tail_quantiles_roundtrip(self, u):
        """F_e(quantile(u)) == u through both tails.

        ``sample`` consumes exactly one uniform, so a stub generator
        drives it through chosen quantiles — including beyond the last
        grid point, where it falls back to exact inversion.
        """
        dist = _EQ_WEIBULL

        class _U:
            def uniform(self, *a, **k):
                return u

        q = dist.sample(_U())
        assert q >= 0.0
        assert dist.cdf(q) == pytest.approx(u, rel=1e-5, abs=1e-9)

    def test_exponential_equilibrium_is_exponential(self):
        """The equilibrium residual of a memoryless law is itself."""
        inner = Exponential(1 / 500.0)
        dist = EquilibriumResidual(inner)
        r1 = np.random.default_rng(3)
        draws = dist.sample_many(r1, 4000)
        assert float(np.mean(draws)) == pytest.approx(500.0, rel=0.1)


class TestBatchDynamicEngine:
    """Engine determinism contracts of the ``batch_dynamic`` knob."""

    def _dyn_model(self):
        """Fleet whose delays come through a marking-dependent callable."""
        from repro.core import SAN, replicate

        fresh = Weibull(0.8, 120.0)
        eq = EquilibriumResidual(fresh)
        san = SAN("unit")
        san.place("up", 1)
        san.place("seasoned", 0)

        def fail_law(m):
            return eq if m["seasoned"] == 0 else fresh

        def fail(m, rng):
            m["up"] = 0
            m["seasoned"] = 1

        san.timed("fail", fail_law, enabled=lambda m: m["up"] == 1, effect=fail)
        san.timed(
            "repair",
            Exponential(0.2),
            enabled=lambda m: m["up"] == 0,
            effect=lambda m, rng: m.__setitem__("up", 1),
        )
        return flatten(replicate("fleet", san, 30))

    def test_same_seed_same_trajectory(self):
        model = self._dyn_model()
        a = Simulator(model, base_seed=5, batch_dynamic=True).run(2000.0)
        b = Simulator(model, base_seed=5, batch_dynamic=True).run(2000.0)
        assert a.n_events == b.n_events
        assert a._final_values == b._final_values

    def test_warm_simulator_matches_fresh(self):
        """Run k on a warm simulator == run k on a fresh one: the dynamic
        sampler cache is rebuilt per run, so no sampling state leaks."""
        model = self._dyn_model()
        warm = Simulator(model, base_seed=8, batch_dynamic=True)
        runs = [warm.run(1500.0) for _ in range(3)]
        fresh = Simulator(model, base_seed=8, batch_dynamic=True)
        fresh._run_counter = 2
        again = fresh.run(1500.0)
        assert again.n_events == runs[2].n_events
        assert again._final_values == runs[2]._final_values

    def test_fast_equals_reference(self):
        model = self._dyn_model()
        fast = Simulator(model, base_seed=11, batch_dynamic=True).run(2000.0)
        ref = Simulator(
            model, base_seed=11, batch_dynamic=True, engine="reference"
        ).run(2000.0)
        assert fast.n_events == ref.n_events
        assert fast._final_values == ref._final_values

    def test_off_by_default_and_per_draw_mode_unaffected(self):
        model = self._dyn_model()
        assert Simulator(model).batch_dynamic is False
        # per-draw mode ignores batch_dynamic entirely
        a = Simulator(model, base_seed=4, sample_batch=None).run(1000.0)
        b = Simulator(
            model, base_seed=4, sample_batch=None, batch_dynamic=True
        ).run(1000.0)
        assert a.n_events == b.n_events
        assert a._final_values == b._final_values

    def test_static_batching_unchanged_by_knob(self):
        """batch_dynamic only affects dynamic draws: a static-law model
        follows the identical default-mode trajectory either way."""
        fleet = flatten(build_fleet_node(40))
        a = Simulator(fleet, base_seed=9).run(1000.0)
        b = Simulator(fleet, base_seed=9, batch_dynamic=True).run(1000.0)
        assert a.n_events == b.n_events
        assert a._final_values == b._final_values
