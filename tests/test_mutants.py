"""Mutation suite: every corrupted declaration in the corpus is flagged.

The sanitizer's whole value is *sensitivity* (a wrong declaration never
slips through) with *specificity* (a correct model never trips it).
This suite pins both sides over the ``tests/_mutants.py`` corpus:

* every mutant is detected by its owning channel with the expected
  violation kind / lint code;
* every clean twin comes back spotless on **both** channels;
* runtime-only defects (short-circuit reads, mid-run case sums,
  marking-dependent NaN rewards) stay invisible to the static pass —
  documenting why the instrumented engine exists at all.
"""

from __future__ import annotations

import pytest

from repro.core import lint_model

from _mutants import MUTANTS, Mutant, run_sanitize

SANITIZE = [m for m in MUTANTS if m.channel == "sanitize"]
LINT = [m for m in MUTANTS if m.channel == "lint"]
_IDS = [m.name for m in MUTANTS]


def test_corpus_size_floor():
    """ISSUE 10 demands at least twenty corrupted-declaration scenarios."""
    assert len(MUTANTS) >= 20
    assert len({m.name for m in MUTANTS}) == len(MUTANTS)


@pytest.mark.parametrize("mutant", MUTANTS, ids=_IDS)
def test_clean_twin_is_spotless(mutant: Mutant):
    """The uncorrupted twin passes lint AND a full sanitized run."""
    san, rewards = mutant.build(False)
    lint = lint_model(san)
    assert lint.ok, f"clean twin of {mutant.name}:\n{lint.format()}"
    report = run_sanitize(san, rewards, hours=mutant.hours)
    assert report.ok, f"clean twin of {mutant.name}:\n{report.format()}"
    assert report.n_events > 0


@pytest.mark.parametrize("mutant", SANITIZE, ids=[m.name for m in SANITIZE])
def test_sanitize_channel_flags_mutant(mutant: Mutant):
    san, rewards = mutant.build(True)
    report = run_sanitize(san, rewards, hours=mutant.hours)
    kinds = {v.kind for v in report.violations}
    assert mutant.expect in kinds, (
        f"{mutant.name}: expected {mutant.expect!r}, got {sorted(kinds)}\n"
        f"{report.format()}"
    )


@pytest.mark.parametrize("mutant", LINT, ids=[m.name for m in LINT])
def test_lint_channel_flags_mutant(mutant: Mutant):
    san, _rewards = mutant.build(True)
    report = lint_model(san)
    codes = {f.code for f in report.findings}
    assert mutant.expect in codes, (
        f"{mutant.name}: expected {mutant.expect!r}, got {sorted(codes)}\n"
        f"{report.format()}"
    )


@pytest.mark.parametrize(
    "mutant",
    [m for m in MUTANTS if m.lint_clean_when_mutated],
    ids=[m.name for m in MUTANTS if m.lint_clean_when_mutated],
)
def test_runtime_only_defects_evade_static_lint(mutant: Mutant):
    """These defects are structurally invisible; only the shadow run sees them."""
    san, _rewards = mutant.build(True)
    report = lint_model(san)
    assert report.ok, f"{mutant.name} unexpectedly caught statically:\n{report.format()}"


@pytest.mark.parametrize("mutant", MUTANTS, ids=_IDS)
def test_violations_carry_provenance(mutant: Mutant):
    """Every detection names its subject; runtime ones localize the event."""
    san, rewards = mutant.build(True)
    if mutant.channel == "sanitize":
        report = run_sanitize(san, rewards, hours=mutant.hours)
        hits = [v for v in report.violations if v.kind == mutant.expect]
        assert hits
        for v in hits:
            assert v.subject
            assert v.message
            if v.event_index is not None:
                assert v.event_index >= 0
                assert v.sim_time is not None and v.sim_time >= 0.0
    else:
        report = lint_model(san)
        hits = [f for f in report.findings if f.code == mutant.expect]
        assert hits
        for f in hits:
            assert f.subject
            assert f.message
            assert f.severity in ("error", "warning")
