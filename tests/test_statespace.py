"""State-space generation: SAN -> CTMC equivalence with the simulator."""

from __future__ import annotations

import pytest

from repro.core import (
    SAN,
    Case,
    Deterministic,
    Exponential,
    RateReward,
    Simulator,
    StateSpaceError,
    explore,
    flatten,
    join,
    replicate,
    replicate_runs,
)


def two_state():
    san = SAN("c")
    san.place("up", 1)
    san.timed("fail", Exponential(0.02), enabled=lambda m: m["up"] == 1,
              effect=lambda m, rng: m.__setitem__("up", 0))
    san.timed("rep", Exponential(0.2), enabled=lambda m: m["up"] == 0,
              effect=lambda m, rng: m.__setitem__("up", 1))
    return flatten(san)


class TestExplore:
    def test_two_state_chain(self):
        ss = explore(two_state())
        assert ss.n_states == 2
        ctmc = ss.to_ctmc()
        r = ss.reward_vector(lambda m: float(m["c/up"]))
        assert ctmc.steady_state_reward(r) == pytest.approx(0.2 / 0.22)

    def test_replicated_kofn(self):
        unit = SAN("u")
        unit.place("up", 1)
        unit.place("down_count", 0)
        unit.timed("fail", Exponential(0.1), enabled=lambda m: m["up"] == 1,
                   effect=lambda m, rng: (m.__setitem__("up", 0),
                                          m.__setitem__("down_count", m["down_count"] + 1)))
        unit.timed("rep", Exponential(1.0), enabled=lambda m: m["up"] == 0,
                   effect=lambda m, rng: (m.__setitem__("up", 1),
                                          m.__setitem__("down_count", m["down_count"] - 1)))
        model = flatten(replicate("sys", unit, 3, shared=["down_count"]))
        ss = explore(model)
        # states: each unit up/down -> 8 reachable markings
        assert ss.n_states == 8
        r = ss.reward_vector(lambda m: 1.0 if m["sys/down_count"] == 0 else 0.0)
        a_unit = 1.0 / 1.1  # mu/(lam+mu) = 1/(1.1)
        assert ss.to_ctmc().steady_state_reward(r) == pytest.approx(a_unit**3, rel=1e-9)

    def test_vanishing_elimination(self):
        san = SAN("s")
        san.place("phase", 0)
        san.place("alarm", 0)
        san.timed("go", Exponential(1.0), enabled=lambda m: m["phase"] == 0,
                  effect=lambda m, rng: m.__setitem__("phase", 1))
        san.instant("detect", enabled=lambda m: m["phase"] == 1 and m["alarm"] == 0,
                    effect=lambda m, rng: m.__setitem__("alarm", 1))
        san.timed("reset", Exponential(2.0), enabled=lambda m: m["alarm"] == 1,
                  effect=lambda m, rng: (m.__setitem__("alarm", 0),
                                         m.__setitem__("phase", 0)))
        ss = explore(flatten(san))
        # only tangible states: (0,0) and (1,1)
        assert ss.n_states == 2

    def test_probabilistic_cases_split_rates(self):
        san = SAN("s")
        san.place("a", 0)
        san.place("b", 0)
        san.place("idle", 1)
        san.timed(
            "move",
            Exponential(1.0),
            enabled=lambda m: m["idle"] == 1,
            cases=[
                Case(0.25, lambda m, rng: (m.__setitem__("a", 1), m.__setitem__("idle", 0))),
                Case(0.75, lambda m, rng: (m.__setitem__("b", 1), m.__setitem__("idle", 0))),
            ],
        )
        ss = explore(flatten(san))
        ctmc = ss.to_ctmc()
        probs = ctmc.absorption_probabilities(0)
        values = sorted(probs.values())
        assert values == pytest.approx([0.25, 0.75])

    def test_non_exponential_rejected(self):
        san = SAN("s")
        san.place("up", 1)
        san.timed("fail", Deterministic(5.0), enabled=lambda m: m["up"] == 1,
                  effect=lambda m, rng: m.__setitem__("up", 0))
        with pytest.raises(StateSpaceError, match="not exponential"):
            explore(flatten(san))

    def test_rng_in_gate_function_rejected(self):
        san = SAN("s")
        san.place("up", 1)
        san.timed("fail", Exponential(1.0), enabled=lambda m: m["up"] == 1,
                  effect=lambda m, rng: m.__setitem__("up", int(rng.uniform() > 0.5)))
        with pytest.raises(StateSpaceError, match="deterministic"):
            explore(flatten(san))

    def test_max_states_guard(self):
        san = SAN("s")
        san.place("n", 0)
        san.timed("inc", Exponential(1.0), enabled=lambda m: True,
                  effect=lambda m, rng: m.__setitem__("n", m["n"] + 1))
        with pytest.raises(StateSpaceError, match="max_states"):
            explore(flatten(san), max_states=50)


class TestSimulatorAgreement:
    def test_sim_matches_exact_solution(self):
        model = two_state()
        ss = explore(model)
        r = ss.reward_vector(lambda m: float(m["c/up"]))
        exact = ss.to_ctmc().steady_state_reward(r)
        sim = Simulator(model, base_seed=5)
        rw = RateReward("a", lambda m: float(m["c/up"]))
        res = replicate_runs(sim, 30_000.0, n_replications=8, rewards=[rw])
        est = res.estimate("a")
        assert abs(est.mean - exact) < max(4 * est.half_width, 0.01)

    def test_sim_matches_exact_on_shared_counter_model(self):
        unit = SAN("u")
        unit.place("up", 1)
        unit.place("down_count", 0)
        unit.timed("fail", Exponential(0.05), enabled=lambda m: m["up"] == 1,
                   effect=lambda m, rng: (m.__setitem__("up", 0),
                                          m.__setitem__("down_count", m["down_count"] + 1)))
        unit.timed("rep", Exponential(0.5), enabled=lambda m: m["up"] == 0,
                   effect=lambda m, rng: (m.__setitem__("up", 1),
                                          m.__setitem__("down_count", m["down_count"] - 1)))
        model = flatten(replicate("sys", unit, 2, shared=["down_count"]))
        ss = explore(model)
        reward = lambda m: 1.0 if m["sys/down_count"] >= 1 else 0.0
        exact = ss.to_ctmc().steady_state_reward(ss.reward_vector(reward))
        sim = Simulator(model, base_seed=6)
        res = replicate_runs(
            sim, 30_000.0, n_replications=8, rewards=[RateReward("x", reward)]
        )
        est = res.estimate("x")
        assert abs(est.mean - exact) < max(4 * est.half_width, 0.01)
