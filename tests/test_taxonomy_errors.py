"""Failure taxonomy and error-hierarchy contracts."""

from __future__ import annotations

import pytest

from repro.cfs import OUTAGE_CAUSES, FailureClass, FailureSite
from repro.core import (
    AnalysisError,
    CompositionError,
    FitError,
    InstantaneousLoopError,
    ModelError,
    ParameterError,
    ParseError,
    ReproError,
    SimulationError,
    StateSpaceError,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ModelError,
            CompositionError,
            SimulationError,
            InstantaneousLoopError,
            StateSpaceError,
            AnalysisError,
            ParseError,
            FitError,
            ParameterError,
        ):
            assert issubclass(exc, ReproError)

    def test_specializations(self):
        assert issubclass(CompositionError, ModelError)
        assert issubclass(InstantaneousLoopError, SimulationError)
        assert issubclass(ParseError, AnalysisError)
        assert issubclass(FitError, AnalysisError)

    def test_catchable_as_library_failure(self):
        with pytest.raises(ReproError):
            raise ParseError("bad line")


class TestFailureTaxonomy:
    def test_every_site_has_a_cause_label(self):
        for site in FailureSite:
            assert site in OUTAGE_CAUSES, site

    def test_cause_labels_match_table1_vocabulary(self):
        labels = {info.label for info in OUTAGE_CAUSES.values()}
        assert labels <= {"I/O hardware", "Network", "Batch system", "File system"}

    def test_hardware_sites_labelled_io_hardware(self):
        for site in (
            FailureSite.OSS,
            FailureSite.SAN_FABRIC,
            FailureSite.DDN_CONTROLLER,
        ):
            assert OUTAGE_CAUSES[site].label == "I/O hardware"

    def test_classes_are_the_papers_three_plus_disk(self):
        assert {c.value for c in FailureClass} == {
            "hardware",
            "software",
            "transient",
            "disk",
        }

    def test_str_round(self):
        assert str(FailureClass.HARDWARE) == "hardware"
        assert str(FailureSite.OSS) == "oss"
