"""Record golden engine trajectories into ``tests/data/*.json``.

Run from the repo root::

    PYTHONPATH=src:tests python tests/record_golden.py

Two fixture files are written:

* ``engine_golden.json`` pins, for fixed seeds, the exact trajectory
  outcomes (``n_events``, final marking, reward accumulators) of the
  simulation engine on three reference models.
  ``tests/test_engine_golden.py`` asserts the current engine reproduces
  them bit-for-bit, so any change that perturbs RNG consumption order or
  event settlement order is caught.
* ``reward_golden.json`` pins reward-*bearing* runs — rate-reward
  integrals, impulse accumulators, binary-trace transitions, warm-up
  clipping and early stops — at bit level.  These entries were recorded
  from the pre-specialization engine (the general ``slow_event`` loop),
  so they prove the compiled reward fast path integrates rewards
  bit-identically to the historical observer path.

Two engine modes are pinned throughout:

* per-draw mode (``sample_batch=None``) — these values were recorded
  from the pre-optimization engine and the compiled engine reproduces
  them exactly, which is the bit-compatibility guarantee;
* the default batched mode — recorded when batching was introduced,
  pinning the default engine's determinism going forward.

One intentional re-record on top of the original recordings: the
``storage_measures`` entries of ``reward_golden.json`` were re-recorded
in PR 5 when ``StorageModel`` adopted ``batch_dynamic=True`` (block
serving its marking-dependent equilibrium draws changes default-mode
stream consumption; per-draw entries were unaffected).

PR 7's ``EquilibriumResidual`` upper-tail fix (exact inversion for
``u > 0.999`` instead of grid interpolation) was audited for golden
impact the same way: re-recording after the fix reproduced both fixture
files byte-for-byte — none of the recorded trajectories' equilibrium
draws landed a uniform in the affected ``(0.999, 1 - 1e-5]`` band — so
no entries were re-recorded.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _helpers import build_fleet_node, build_two_state_san

from repro.cfs import CFSParameters, StorageModel, abe_parameters
from repro.cfs.cluster import build_cluster_node
from repro.cfs.measures import build_measures
from repro.core import BinaryTrace, ImpulseReward, RateReward, Simulator, flatten

GOLDEN_PATH = Path(__file__).parent / "data" / "engine_golden.json"
REWARD_GOLDEN_PATH = Path(__file__).parent / "data" / "reward_golden.json"


def _snapshot(result) -> dict:
    return {
        "n_events": result.n_events,
        "final_values": list(result._final_values),
        "final_time": float(result.final_time).hex(),
        "rewards": {
            name: {
                "integral": res.integral.hex(),
                "impulse_sum": res.impulse_sum.hex(),
                "count": res.count,
            }
            for name, res in result.rewards.items()
        },
    }


def record() -> dict:
    cases: dict[str, dict] = {}

    params = abe_parameters()
    model = flatten(build_cluster_node(params))
    measures = build_measures(model, params)
    for seed in (2008, 7, 99):
        res = Simulator(model, base_seed=seed, sample_batch=None).run(
            2000.0, rewards=measures.rewards
        )
        cases[f"abe_cluster/seed={seed}"] = _snapshot(res)
    for seed in (2008, 7):
        res = Simulator(model, base_seed=seed).run(
            2000.0, rewards=measures.rewards
        )
        cases[f"abe_cluster_batched/seed={seed}"] = _snapshot(res)

    fleet = flatten(build_fleet_node(500))
    for seed in (2, 42):
        res = Simulator(fleet, base_seed=seed, sample_batch=None).run(1000.0)
        cases[f"fleet500/seed={seed}"] = _snapshot(res)
    for seed in (2, 42):
        res = Simulator(fleet, base_seed=seed).run(1000.0)
        cases[f"fleet500_batched/seed={seed}"] = _snapshot(res)

    two_state = flatten(build_two_state_san())
    rw = RateReward("a", lambda m: float(m["comp/up"]))
    for seed in (9, 123):
        res = Simulator(two_state, base_seed=seed, sample_batch=None).run(
            5000.0, rewards=[rw]
        )
        cases[f"two_state/seed={seed}"] = _snapshot(res)

    return cases


def _snapshot_rewarded(result) -> dict:
    """Superset of :func:`_snapshot` for reward-bearing runs.

    Adds the per-reward observation-window duration, the early-stop flag,
    and every binary-trace transition list at bit level.
    """
    snap = _snapshot(result)
    snap["stopped_early"] = result.stopped_early
    snap["duration"] = float(result.duration).hex()
    for name, res in result.rewards.items():
        snap["rewards"][name]["duration"] = float(res.duration).hex()
    snap["traces"] = {
        name: [(float(t).hex(), bool(v)) for t, v in tr.transitions]
        for name, tr in result.traces.items()
        if isinstance(tr, BinaryTrace)
    }
    return snap


def _fleet_observers(n_units: int):
    """Rate + impulse observers over the shared-counter fleet model."""
    frac = RateReward(
        "frac_down", lambda m, _n=float(n_units): m["fleet/down_count"] / _n
    )
    any_down = RateReward(
        "any_down", lambda m: 1.0 if m["fleet/down_count"] > 0 else 0.0
    )
    repairs = ImpulseReward("repairs", "*/repair")
    weighted_fails = ImpulseReward(
        "weighted_fails",
        lambda path: path.endswith("/fail"),
        value=lambda m: 1.0 + m["fleet/down_count"],
    )
    return [frac, any_down, repairs, weighted_fails]


def iter_reward_cases(engine: str = "auto"):
    """Yield ``(key, RunResult)`` for every reward-bearing golden case.

    Shared by the recorder and by ``tests/test_engine_golden.py`` so the
    pinned configurations cannot drift from the replayed ones.  The
    fixture was recorded with the pre-specialization engine; replaying
    with ``engine="auto"`` proves the specialized loops are
    bit-compatible, with ``engine="reference"`` that the general loop
    stayed so.
    """
    # ABE cluster: rate + impulse rewards plus the cfs_up binary trace,
    # with instantaneous activities in the model (the paper's workload).
    params = abe_parameters()
    model = flatten(build_cluster_node(params))
    measures = build_measures(model, params)
    for batch, tag in ((None, "perdraw"), (256, "batched")):
        for seed in (2008, 7):
            sim = Simulator(model, base_seed=seed, sample_batch=batch, engine=engine)
            res = sim.run(
                2000.0,
                rewards=measures.rewards,
                traces=measures.traces_factory(),
            )
            yield f"abe_measures_{tag}/seed={seed}", res
    # warm-up clipping on the same model
    sim = Simulator(model, base_seed=11, engine=engine)
    res = sim.run(
        2000.0,
        warmup=500.0,
        rewards=measures.rewards,
        traces=measures.traces_factory(),
    )
    yield "abe_measures_warmup/seed=11", res

    # Storage-only model: impulse-heavy (replacements, data-loss instants).
    for seed in (96, 5):
        sm = StorageModel(params, base_seed=seed)
        sm.simulator.engine = engine
        res = sm.simulator.run(4000.0, rewards=sm.measures.rewards)
        yield f"storage_measures/seed={seed}", res

    # Watch-only fleet (rate/impulse observers, no instants): the
    # workload the reward fast path targets most directly.
    fleet = flatten(build_fleet_node(200))
    for batch, tag in ((None, "perdraw"), (256, "batched")):
        for seed in (3, 77):
            sim = Simulator(fleet, base_seed=seed, sample_batch=batch, engine=engine)
            res = sim.run(
                1500.0,
                rewards=_fleet_observers(200),
                traces=[BinaryTrace("dip", lambda m: m["fleet/down_count"] >= 2)],
            )
            yield f"fleet_watch_{tag}/seed={seed}", res
    sim = Simulator(fleet, base_seed=41, engine=engine)
    res = sim.run(1500.0, warmup=300.0, rewards=_fleet_observers(200))
    yield "fleet_watch_warmup/seed=41", res

    # Early stop: rewards must clip at the stop time, bit-for-bit.
    for seed in (6, 123):
        sim = Simulator(fleet, base_seed=seed, engine=engine)
        res = sim.run(
            20_000.0,
            rewards=_fleet_observers(200),
            stop_predicate=lambda m: m["fleet/down_count"] >= 12,
        )
        yield f"fleet_stop/seed={seed}", res


def record_rewards() -> dict:
    """Reward-bearing golden cases (recorded from the pre-change slow path)."""
    return {key: _snapshot_rewarded(res) for key, res in iter_reward_cases()}


def main() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(record(), indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    REWARD_GOLDEN_PATH.write_text(
        json.dumps(record_rewards(), indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {REWARD_GOLDEN_PATH}")


if __name__ == "__main__":
    main()
