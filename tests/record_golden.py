"""Record golden engine trajectories into ``tests/data/engine_golden.json``.

Run from the repo root::

    PYTHONPATH=src:tests python tests/record_golden.py

The fixture pins, for fixed seeds, the exact trajectory outcomes
(``n_events``, final marking, reward accumulators) of the simulation
engine on three reference models.  ``tests/test_engine_golden.py``
asserts the current engine reproduces them bit-for-bit, so any change
that perturbs RNG consumption order or event settlement order is caught.

Two engine modes are pinned:

* per-draw mode (``sample_batch=None``) — these values were recorded
  from the pre-optimization engine and the compiled engine reproduces
  them exactly, which is the bit-compatibility guarantee;
* the default batched mode — recorded when batching was introduced,
  pinning the default engine's determinism going forward.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _helpers import build_fleet_node, build_two_state_san

from repro.cfs import abe_parameters
from repro.cfs.cluster import build_cluster_node
from repro.cfs.measures import build_measures
from repro.core import RateReward, Simulator, flatten

GOLDEN_PATH = Path(__file__).parent / "data" / "engine_golden.json"


def _snapshot(result) -> dict:
    return {
        "n_events": result.n_events,
        "final_values": list(result._final_values),
        "final_time": float(result.final_time).hex(),
        "rewards": {
            name: {
                "integral": res.integral.hex(),
                "impulse_sum": res.impulse_sum.hex(),
                "count": res.count,
            }
            for name, res in result.rewards.items()
        },
    }


def record() -> dict:
    cases: dict[str, dict] = {}

    params = abe_parameters()
    model = flatten(build_cluster_node(params))
    measures = build_measures(model, params)
    for seed in (2008, 7, 99):
        res = Simulator(model, base_seed=seed, sample_batch=None).run(
            2000.0, rewards=measures.rewards
        )
        cases[f"abe_cluster/seed={seed}"] = _snapshot(res)
    for seed in (2008, 7):
        res = Simulator(model, base_seed=seed).run(
            2000.0, rewards=measures.rewards
        )
        cases[f"abe_cluster_batched/seed={seed}"] = _snapshot(res)

    fleet = flatten(build_fleet_node(500))
    for seed in (2, 42):
        res = Simulator(fleet, base_seed=seed, sample_batch=None).run(1000.0)
        cases[f"fleet500/seed={seed}"] = _snapshot(res)
    for seed in (2, 42):
        res = Simulator(fleet, base_seed=seed).run(1000.0)
        cases[f"fleet500_batched/seed={seed}"] = _snapshot(res)

    two_state = flatten(build_two_state_san())
    rw = RateReward("a", lambda m: float(m["comp/up"]))
    for seed in (9, 123):
        res = Simulator(two_state, base_seed=seed, sample_batch=None).run(
            5000.0, rewards=[rw]
        )
        cases[f"two_state/seed={seed}"] = _snapshot(res)

    return cases


def main() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(record(), indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
