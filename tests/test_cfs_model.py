"""CFS parameters, components, scaling, spares, and measures."""

from __future__ import annotations

import pytest

from repro.cfs import (
    TABLE5_RANGES,
    CFSParameters,
    ClusterModel,
    StorageModel,
    abe_parameters,
    build_client_network_node,
    build_cluster_node,
    build_oss_layer_node,
    build_oss_pair_node,
    cfs_up_predicate,
    disk_capacity_tb,
    petascale_parameters,
    scale_step,
    scaling_series,
    storage_axis_tb,
)
from repro.cfs.measures import resolve_slot_path
from repro.core import ModelError, ParameterError, Simulator, flatten
from repro.raid import RAID_8P3


class TestParameters:
    def test_abe_preset_matches_paper_hardware(self):
        p = abe_parameters()
        assert p.n_disks == 480
        assert p.raw_storage_tb == pytest.approx(120.0)
        assert p.usable_storage_tb == pytest.approx(96.0)  # the paper's 96 TB
        assert p.n_oss_pairs == 9
        assert p.n_switches == 16
        assert p.disk_afr == pytest.approx(0.0292, rel=1e-3)

    def test_petascale_preset(self):
        p = petascale_parameters()
        assert p.n_disks == 4800
        assert p.n_ddn_units == 20
        assert p.n_compute_nodes == 32_000
        assert p.raw_storage_tb == pytest.approx(12_288.0, rel=0.01)

    def test_validation_catches_out_of_range(self):
        with pytest.raises(ParameterError):
            CFSParameters(disk_mtbf_hours=10.0)
        with pytest.raises(ParameterError):
            CFSParameters(n_ddn_units=100)
        with pytest.raises(ParameterError):
            CFSParameters(oss_hw_propagation_p=1.5)
        with pytest.raises(ParameterError):
            CFSParameters(n_spare_oss=-1)

    def test_with_disks_variants(self):
        p = abe_parameters().with_disks(shape=0.6, afr=0.0876)
        assert p.disk_weibull_shape == 0.6
        assert p.disk_afr == pytest.approx(0.0876, rel=1e-6)
        p2 = abe_parameters().with_disks(raid=RAID_8P3, replacement_hours=12.0)
        assert p2.raid.label == "8+3"
        assert p2.raid.disk_replacement_hours == 12.0

    def test_with_spare(self):
        p = abe_parameters().with_spare_oss(2, swap_hours=1.0)
        assert p.n_spare_oss == 2
        assert p.spare_swap_hours == 1.0
        assert "spare" in p.name

    def test_table5_ranges_cover_presets(self):
        # both presets must validate (validate() raises otherwise)
        abe_parameters().validate()
        petascale_parameters().validate()

    def test_disk_lifetime_law(self):
        p = abe_parameters()
        w = p.disk_lifetime
        assert w.shape == 0.7
        assert w.mean() == pytest.approx(300_000.0, rel=1e-9)


class TestScaling:
    def test_endpoints(self):
        abe = scale_step(1, 10)
        peta = scale_step(10, 10)
        assert abe.n_disks == 480
        assert peta.n_disks == 4800
        assert abe.n_oss_pairs == 9
        assert peta.n_oss_pairs == 81
        assert abe.n_compute_nodes == 1200
        assert peta.n_compute_nodes == 32_000
        assert peta.raw_storage_tb == pytest.approx(12_288.0, rel=0.01)

    def test_monotone_growth(self):
        series = list(scaling_series(10))
        disks = [p.n_disks for p in series]
        tb = [p.raw_storage_tb for p in series]
        assert disks == sorted(disks)
        assert tb == sorted(tb)
        assert len(set(disks)) == 10

    def test_capacity_growth_33pct(self):
        assert disk_capacity_tb(1.0) == pytest.approx(0.25 * 1.33)
        assert disk_capacity_tb(0.0) == pytest.approx(0.25)
        with pytest.raises(ParameterError):
            disk_capacity_tb(-1.0)

    def test_storage_axis(self):
        axis = storage_axis_tb(5)
        assert len(axis) == 5
        assert axis[0] == pytest.approx(120.0)

    def test_bad_step(self):
        with pytest.raises(ParameterError):
            scale_step(0, 10)
        with pytest.raises(ParameterError):
            scale_step(11, 10)


class TestComponentStructure:
    def test_oss_pair_exports(self):
        node = build_oss_pair_node(abe_parameters())
        model = flatten(node)
        assert len(model.match("*/server[*]/up")) == 2
        assert len(model.match("*pairs_down")) == 1
        assert len(model.match("*oss_sw_down")) == 1

    def test_oss_layer_counts(self):
        model = flatten(build_oss_layer_node(abe_parameters()))
        assert len(model.match("*/server[*]/up")) == 18  # 9 pairs x 2
        assert len(model.match("*pairs_down")) == 1

    def test_client_network_counts(self):
        p = abe_parameters()
        model = flatten(build_client_network_node(p))
        assert len(model.match("*/switch[*]/sw_up")) == p.n_switches
        assert len(model.match("*spine_up")) == 1

    def test_cluster_model_structure(self):
        model = flatten(build_cluster_node(abe_parameters()))
        assert len(model.match("*/disk[*]/up")) == 480
        # one each of the global counters
        for pattern in (
            "*/tiers_down",
            "*/ctrl_pairs_down",
            "*/oss_layer/pairs_down",
            "*/oss_layer/oss_sw_down",
            "*/fabric_down",
        ):
            assert len(model.match(pattern)) == 1, pattern

    def test_spare_dock_present_only_with_spares(self):
        m0 = flatten(build_cluster_node(abe_parameters()))
        assert not m0.match("*covered_pairs")
        m1 = flatten(build_cluster_node(abe_parameters().with_spare_oss(1)))
        assert len(m1.match("*/oss_layer/covered_pairs")) == 1
        assert len(m1.match("*/oss_layer/spare_free")) == 1
        slot = m1.place_index("cluster/cfs/oss_layer/spare_free")
        assert m1.initial[slot] == 1


class TestMeasures:
    def test_resolve_slot_path_unique(self):
        model = flatten(build_cluster_node(abe_parameters()))
        path = resolve_slot_path(model, "*/fabric_down")
        assert path.endswith("fabric_down")

    def test_resolve_slot_path_ambiguous(self):
        model = flatten(build_cluster_node(abe_parameters()))
        with pytest.raises(ModelError, match="expected exactly one"):
            resolve_slot_path(model, "*/up")

    def test_cfs_up_initially_true(self):
        model = flatten(build_cluster_node(abe_parameters()))
        up = cfs_up_predicate(model)
        vector = model.new_marking()
        assert up(model.global_view(vector))

    def test_storage_model_runs(self):
        sm = StorageModel(abe_parameters(), base_seed=1)
        res = sm.simulate(hours=2000.0, n_replications=2)
        assert 0.9 <= res.storage_availability.mean <= 1.0
        assert res.disks_replaced_per_week.mean >= 0.0

    def test_cluster_summary_format(self):
        cm = ClusterModel(abe_parameters(), base_seed=1)
        res = cm.simulate(hours=1000.0, n_replications=2)
        text = res.summary()
        assert "cfs_availability" in text
        assert "cluster_utility" in text


class TestClusterBehaviour:
    def test_abe_availability_anchor(self):
        """The headline calibration: ABE CFS availability ~ 0.972."""
        cm = ClusterModel(abe_parameters(), base_seed=2008)
        res = cm.simulate(hours=8760.0, n_replications=10)
        est = res.cfs_availability
        assert abs(est.mean - 0.972) < 0.012

    def test_abe_storage_availability_near_one(self):
        cm = ClusterModel(abe_parameters(), base_seed=2008)
        res = cm.simulate(hours=8760.0, n_replications=6)
        assert res.storage_availability.mean > 0.998

    def test_abe_disk_replacements_zero_to_two_per_week(self):
        """Paper: 'On average, 0-2 disks are replaced on the ABE cluster
        per week.'"""
        cm = ClusterModel(abe_parameters(), base_seed=99)
        res = cm.simulate(hours=8760.0, n_replications=6)
        assert 0.0 <= res.disks_replaced_per_week.mean <= 2.0

    def test_cu_below_cfs_availability(self):
        cm = ClusterModel(abe_parameters(), base_seed=3)
        res = cm.simulate(hours=8760.0, n_replications=6)
        assert res.cluster_utility.mean < res.cfs_availability.mean

    def test_spare_oss_improves_availability_at_scale(self):
        params = scale_step(6, 10)
        plain = ClusterModel(params, base_seed=4).simulate(
            hours=8760.0, n_replications=5
        )
        spare = ClusterModel(params.with_spare_oss(1), base_seed=4).simulate(
            hours=8760.0, n_replications=5
        )
        assert spare.cfs_availability.mean > plain.cfs_availability.mean

    def test_spare_pool_conserved(self):
        params = abe_parameters().with_spare_oss(1)
        cm = ClusterModel(params, base_seed=5)
        result = cm.simulator.run(8760.0)
        free = result.place("cluster/cfs/oss_layer/spare_free")
        covered = result.place("cluster/cfs/oss_layer/covered_pairs")
        assert free + covered == 1

    def test_availability_decreases_with_scale(self):
        small = ClusterModel(scale_step(1, 10), base_seed=6).simulate(
            hours=8760.0, n_replications=6
        )
        large = ClusterModel(scale_step(8, 10), base_seed=6).simulate(
            hours=8760.0, n_replications=6
        )
        assert large.cfs_availability.mean < small.cfs_availability.mean
