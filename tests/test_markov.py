"""CTMC solver, birth-death chains, repairable-system formulas."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ModelError
from repro.markov import (
    CTMC,
    birth_death_ctmc,
    birth_death_steady_state,
    failover_pair_unavailability,
    k_of_n_availability,
    mm1_queue_length,
    parallel_pair_availability,
    two_state_availability,
)


class TestCTMCConstruction:
    def test_rejects_self_loop(self):
        with pytest.raises(ModelError):
            CTMC(2).add_rate(0, 0, 1.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ModelError):
            CTMC(2).add_rate(0, 5, 1.0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ModelError):
            CTMC(2).add_rate(0, 1, -1.0)

    def test_rates_accumulate(self):
        c = CTMC(2).add_rate(0, 1, 1.0).add_rate(0, 1, 2.0)
        assert c.transitions[(0, 1)] == pytest.approx(3.0)

    def test_generator_rows_sum_to_zero(self):
        c = CTMC(3).add_rate(0, 1, 2.0).add_rate(1, 2, 3.0).add_rate(2, 0, 1.0)
        q = c.generator()
        assert np.allclose(q.sum(axis=1), 0.0)


class TestSteadyState:
    def test_two_state(self):
        lam, mu = 0.01, 0.1
        c = CTMC(2).add_rate(0, 1, lam).add_rate(1, 0, mu)
        pi = c.steady_state()
        assert pi[0] == pytest.approx(mu / (lam + mu))

    def test_matches_birth_death_product_form(self):
        births = [1.0, 0.8, 0.6]
        deaths = [2.0, 2.0, 2.0]
        pi_closed = birth_death_steady_state(births, deaths)
        pi_ctmc = birth_death_ctmc(births, deaths).steady_state()
        assert np.allclose(pi_closed, pi_ctmc, atol=1e-10)

    def test_reward_weighting(self):
        c = CTMC(2).add_rate(0, 1, 1.0).add_rate(1, 0, 1.0)
        assert c.steady_state_reward([1.0, 0.0]) == pytest.approx(0.5)

    def test_single_absorbing_state_gets_all_mass(self):
        c = CTMC(2).add_rate(0, 1, 1.0)
        assert np.allclose(c.steady_state(), [0.0, 1.0])

    def test_multiple_recurrent_classes_rejected(self):
        # Two absorbing states: the stationary distribution is not unique.
        c = CTMC(3).add_rate(0, 1, 1.0).add_rate(0, 2, 1.0)
        with pytest.raises(ModelError):
            c.steady_state()


class TestTransient:
    def test_convergence_to_steady_state(self):
        lam, mu = 0.2, 1.0
        c = CTMC(2).add_rate(0, 1, lam).add_rate(1, 0, mu)
        p = c.transient(0, 200.0)
        assert p[0] == pytest.approx(mu / (lam + mu), abs=1e-6)

    def test_two_state_closed_form(self):
        # p00(t) = mu/(lam+mu) + lam/(lam+mu) e^{-(lam+mu)t}
        lam, mu = 0.3, 0.7
        c = CTMC(2).add_rate(0, 1, lam).add_rate(1, 0, mu)
        for t in (0.0, 0.5, 2.0, 10.0):
            expected = mu / (lam + mu) + lam / (lam + mu) * math.exp(-(lam + mu) * t)
            assert c.transient(0, t)[0] == pytest.approx(expected, abs=1e-8)

    def test_distribution_normalized(self):
        c = CTMC(3).add_rate(0, 1, 1.0).add_rate(1, 2, 1.0).add_rate(2, 0, 1.0)
        p = c.transient(0, 3.7)
        assert p.sum() == pytest.approx(1.0, abs=1e-9)

    def test_initial_distribution_input(self):
        c = CTMC(2).add_rate(0, 1, 1.0).add_rate(1, 0, 1.0)
        p = c.transient([0.5, 0.5], 0.0)
        assert np.allclose(p, [0.5, 0.5])

    def test_transient_reward(self):
        c = CTMC(2).add_rate(0, 1, 1.0).add_rate(1, 0, 1.0)
        v = c.transient_reward(0, 100.0, [1.0, 0.0])
        assert v == pytest.approx(0.5, abs=1e-6)


class TestAbsorption:
    def test_exponential_mtta(self):
        c = CTMC(2).add_rate(0, 1, 0.5)
        assert c.mean_time_to_absorption(0) == pytest.approx(2.0)

    def test_series_stages(self):
        c = CTMC(3).add_rate(0, 1, 1.0).add_rate(1, 2, 0.5)
        assert c.mean_time_to_absorption(0) == pytest.approx(1.0 + 2.0)

    def test_absorption_probabilities_split(self):
        c = CTMC(3).add_rate(0, 1, 1.0).add_rate(0, 2, 3.0)
        probs = c.absorption_probabilities(0)
        assert probs[1] == pytest.approx(0.25)
        assert probs[2] == pytest.approx(0.75)

    def test_no_absorbing_state_rejected(self):
        c = CTMC(2).add_rate(0, 1, 1.0).add_rate(1, 0, 1.0)
        with pytest.raises(ModelError):
            c.mean_time_to_absorption(0)


class TestBirthDeath:
    def test_mm1k_queue_length(self):
        # rho=0.5, K=20 is close to the infinite M/M/1: L = rho/(1-rho) = 1.
        assert mm1_queue_length(0.5, 1.0, 60) == pytest.approx(1.0, abs=1e-6)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ModelError):
            birth_death_steady_state([1.0], [1.0, 2.0])

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ModelError):
            birth_death_steady_state([0.0], [1.0])


class TestRepairableFormulas:
    def test_two_state(self):
        assert two_state_availability(100.0, 10.0) == pytest.approx(100.0 / 110.0)

    def test_parallel_pair(self):
        a = two_state_availability(100.0, 10.0)
        assert parallel_pair_availability(100.0, 10.0) == pytest.approx(
            1 - (1 - a) ** 2
        )

    def test_k_of_n_reduces_to_series_and_parallel(self):
        a = two_state_availability(100.0, 10.0)
        assert k_of_n_availability(3, 3, 100.0, 10.0) == pytest.approx(a**3)
        assert k_of_n_availability(2, 1, 100.0, 10.0) == pytest.approx(
            1 - (1 - a) ** 2
        )

    def test_failover_pair_no_propagation_equals_independent(self):
        lam, mu = 0.01, 0.1
        u = failover_pair_unavailability(lam, mu, 0.0)
        # independent 2-unit parallel: pi2 = (lam/mu)^2 / (1 + 2 lam/mu + (lam/mu)^2)...
        # exact from the 3-state chain with rates 2lam, lam / mu, 2mu:
        r = lam / mu
        pi0 = 1.0
        pi1 = 2 * r
        pi2 = r * pi1 / 2.0 * 1.0  # balance: pi1*lam = pi2*2mu
        total = pi0 + pi1 + pi2
        assert u == pytest.approx(pi2 / total, rel=1e-9)

    def test_failover_pair_propagation_increases_unavailability(self):
        lam, mu = 0.01, 0.1
        u0 = failover_pair_unavailability(lam, mu, 0.0)
        u5 = failover_pair_unavailability(lam, mu, 0.05)
        u50 = failover_pair_unavailability(lam, mu, 0.5)
        assert u0 < u5 < u50

    def test_failover_pair_input_validation(self):
        with pytest.raises(ModelError):
            failover_pair_unavailability(0.0, 1.0)
        with pytest.raises(ModelError):
            failover_pair_unavailability(1.0, 1.0, 1.5)


@given(
    lam=st.floats(1e-4, 1.0),
    mu=st.floats(1e-4, 1.0),
)
@settings(max_examples=40, deadline=None)
def test_steady_state_balance_property(lam: float, mu: float):
    """pi Q = 0 within numerical tolerance for random 2-state chains."""
    c = CTMC(2).add_rate(0, 1, lam).add_rate(1, 0, mu)
    pi = c.steady_state()
    assert np.allclose(pi @ c.generator(), 0.0, atol=1e-10)
    assert pi.sum() == pytest.approx(1.0)


@given(
    n=st.integers(2, 6),
    seed=st.integers(0, 1000),
)
@settings(max_examples=30, deadline=None)
def test_random_irreducible_chain_properties(n: int, seed: int):
    """Random ring-connected chains: valid stationary distribution."""
    rng = np.random.default_rng(seed)
    c = CTMC(n)
    for i in range(n):
        c.add_rate(i, (i + 1) % n, float(rng.uniform(0.1, 2.0)))
        if n > 2:
            j = int(rng.integers(0, n))
            if j != i:
                c.add_rate(i, j, float(rng.uniform(0.01, 1.0)))
    pi = c.steady_state()
    assert np.all(pi >= -1e-12)
    assert pi.sum() == pytest.approx(1.0)
    assert np.allclose(pi @ c.generator(), 0.0, atol=1e-9)
