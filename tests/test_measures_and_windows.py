"""Reward-measure wiring, CU derivation, and log-window plumbing."""

from __future__ import annotations

from datetime import datetime

import pytest

from repro.cfs import (
    ClusterModel,
    abe_parameters,
    cluster_utility_from_run,
)
from repro.cfs.measures import HOURS_PER_WEEK, build_measures
from repro.core import BinaryTrace, ModelError
from repro.loggen import AbeLogWindows


class TestMeasureWiring:
    @pytest.fixture(scope="class")
    def model(self):
        return ClusterModel(abe_parameters(), base_seed=41)

    def test_measure_set_complete(self, model):
        names = {r.name for r in model.measures.rewards}
        assert names == {
            "storage_availability",
            "cfs_availability",
            "perceived_availability",
            "disks_replaced",
        }
        assert set(model.measures.extra_metrics) == {
            "cluster_utility",
            "disks_replaced_per_week",
            "cfs_outage_onsets_per_year",
        }

    def test_traces_factory_fresh_instances(self, model):
        t1 = model.measures.traces_factory()
        t2 = model.measures.traces_factory()
        assert t1[0] is not t2[0]
        assert t1[0].name == "cfs_up"

    def test_perceived_never_exceeds_cfs(self, model):
        res = model.simulate(hours=4000.0, n_replications=3)
        assert (
            res.estimate("perceived_availability").mean
            <= res.estimate("cfs_availability").mean + 1e-9
        )

    def test_disks_replaced_per_week_consistent(self, model):
        res = model.simulate(hours=4000.0, n_replications=3)
        per_hour_sum = res.experiment.estimate("disks_replaced").mean
        per_week = res.estimate("disks_replaced_per_week").mean
        assert per_week == pytest.approx(
            per_hour_sum / 4000.0 * HOURS_PER_WEEK, rel=1e-9
        )


class TestClusterUtilityDerivation:
    def test_requires_binary_trace(self):
        model = ClusterModel(abe_parameters(), base_seed=42)
        result = model.simulator.run(
            500.0,
            rewards=model.measures.rewards,
            traces=[],
        )
        with pytest.raises(KeyError):
            cluster_utility_from_run(result, abe_parameters())

    def test_cu_below_perceived(self):
        model = ClusterModel(abe_parameters(), base_seed=43)
        result = model.simulator.run(
            8760.0,
            rewards=model.measures.rewards,
            traces=model.measures.traces_factory(),
        )
        cu = cluster_utility_from_run(result, abe_parameters())
        perceived = result["perceived_availability"].time_average
        assert 0.0 < cu < perceived

    def test_cu_decreases_with_longer_jobs(self):
        model = ClusterModel(abe_parameters(), base_seed=44)
        result = model.simulator.run(
            8760.0,
            rewards=model.measures.rewards,
            traces=model.measures.traces_factory(),
        )
        import dataclasses

        short = dataclasses.replace(abe_parameters(), job_mean_duration_hours=1.0)
        long = dataclasses.replace(abe_parameters(), job_mean_duration_hours=12.0)
        assert cluster_utility_from_run(result, long) < cluster_utility_from_run(
            result, short
        )


class TestAbeLogWindows:
    def test_defaults_match_paper_dates(self):
        w = AbeLogWindows()
        assert w.epoch == datetime(2007, 5, 3)
        assert w.san_end == datetime(2007, 11, 30)
        assert w.hours(datetime(2007, 5, 4)) == pytest.approx(24.0)

    def test_custom_windows(self):
        w = AbeLogWindows(
            epoch=datetime(2020, 1, 1),
            compute_end=datetime(2020, 2, 1),
            san_start=datetime(2020, 1, 15),
            san_end=datetime(2020, 3, 1),
        )
        assert w.horizon_hours == pytest.approx(60 * 24.0)

    def test_shorter_window_generates_faster_logs(self):
        from repro.loggen import generate_abe_logs

        w = AbeLogWindows(
            epoch=datetime(2007, 5, 3),
            compute_end=datetime(2007, 5, 20),
            san_start=datetime(2007, 5, 10),
            san_end=datetime(2007, 6, 3),
        )
        logs = generate_abe_logs(seed=3, windows=w)
        assert logs.windows.horizon_hours == pytest.approx(31 * 24.0)
        assert len(logs.jobs) < 8000
