"""Replicate/join composition and flattening semantics."""

from __future__ import annotations

import pytest

from repro.core import (
    SAN,
    CompositionError,
    Exponential,
    flatten,
    join,
    leaf,
    replicate,
)


def make_counter_san(name: str = "unit", shared_name: str = "total") -> SAN:
    san = SAN(name)
    san.place("local", 1)
    san.place(shared_name, 0)

    def tick(m, rng):
        m[shared_name] += 1

    san.timed("tick", Exponential(1.0), enabled=lambda m: m["local"] == 1, effect=tick)
    return san


class TestFlattenLeaf:
    def test_paths_and_initials(self):
        model = flatten(make_counter_san())
        assert model.place_index("unit/local") == 0 or model.place_index("unit/local") == 1
        assert model.n_places == 2
        assert sorted(model.paths) == ["unit/local", "unit/total"]

    def test_activity_paths(self):
        model = flatten(make_counter_san())
        assert [a.path for a in model.activities] == ["unit/tick"]

    def test_initial_marking(self):
        model = flatten(make_counter_san())
        assert model.initial[model.place_index("unit/local")] == 1
        assert model.initial[model.place_index("unit/total")] == 0


class TestJoin:
    def test_sharing_unifies_slots(self):
        a, b = make_counter_san("a"), make_counter_san("b")
        model = flatten(join("sys", a, b, shared=["total"]))
        assert model.place_index("sys/a/total") == model.place_index("sys/b/total")
        assert model.place_index("sys/total") == model.place_index("sys/a/total")
        # 2 locals + 1 shared total
        assert model.n_places == 3

    def test_without_sharing_slots_distinct(self):
        a, b = make_counter_san("a"), make_counter_san("b")
        model = flatten(join("sys", a, b))
        assert model.place_index("sys/a/total") != model.place_index("sys/b/total")

    def test_duplicate_child_names_rejected(self):
        a, b = make_counter_san("same"), make_counter_san("same")
        with pytest.raises(CompositionError, match="duplicate child names"):
            join("sys", a, b)

    def test_shared_name_missing_everywhere(self):
        a = make_counter_san("a")
        with pytest.raises(CompositionError, match="not\\s+exported by any child"):
            flatten(join("sys", a, shared=["nope"]))

    def test_conflicting_initials_rejected(self):
        a = SAN("a")
        a.place("x", 1)
        a.timed("t", Exponential(1.0), enabled=lambda m: True)
        b = SAN("b")
        b.place("x", 2)
        b.timed("t", Exponential(1.0), enabled=lambda m: True)
        with pytest.raises(CompositionError, match="conflicting initial"):
            flatten(join("sys", a, b, shared=["x"]))

    def test_extra_exports(self):
        a, b = make_counter_san("a"), make_counter_san("b")
        node = join("sys", a, b, shared=["total"], exports=[])
        flatten(node)  # fine
        # export must come from exactly one child; "local" exists in both
        with pytest.raises(CompositionError, match="exactly one child"):
            flatten(join("sys2", make_counter_san("a"), make_counter_san("b"), exports=["local"]))

    def test_empty_join_rejected(self):
        with pytest.raises(CompositionError):
            join("sys")


class TestReplicate:
    def test_replica_paths(self):
        model = flatten(replicate("fleet", make_counter_san(), 3, shared=["total"]))
        for i in range(3):
            assert f"fleet/unit[{i}]/local" in model.paths
        assert model.place_index("fleet/total") == model.place_index(
            "fleet/unit[0]/total"
        )
        assert model.n_places == 4  # 3 locals + shared total

    def test_replicate_requires_n_ge_1(self):
        with pytest.raises(CompositionError):
            replicate("fleet", make_counter_san(), 0)

    def test_shared_missing_in_child(self):
        with pytest.raises(CompositionError, match="not\\s+exported by replica"):
            flatten(replicate("fleet", make_counter_san(), 2, shared=["nope"]))

    def test_nested_two_level_sharing(self):
        # tiers of disks: inner shares within the tier, outer across tiers.
        inner = replicate("disks", make_counter_san("disk"), 4, shared=["total"])
        outer = replicate("tiers", inner, 3, shared=["total"])
        # replicate of replicate needs a named child: wrap in join
        model = flatten(outer)
        # one single global 'total'
        slots = {model.place_index(p) for p in model.paths if p.endswith("/total")}
        assert len(slots) == 1
        assert model.n_places == 12 + 1


class TestMatch:
    def test_glob_literal_brackets(self):
        model = flatten(replicate("fleet", make_counter_san(), 3, shared=["total"]))
        hits = model.match("fleet/unit[*]/local")
        assert len(hits) == 3

    def test_match_dedupes_shared(self):
        model = flatten(replicate("fleet", make_counter_san(), 3, shared=["total"]))
        hits = model.match("*total")
        assert len(hits) == 1

    def test_activities_matching(self):
        model = flatten(replicate("fleet", make_counter_san(), 3, shared=["total"]))
        assert len(model.activities_matching("*/tick")) == 3

    def test_unknown_path_error_mentions_candidates(self):
        model = flatten(make_counter_san())
        with pytest.raises(CompositionError, match="unknown place path"):
            model.place_index("unit/loca")


class TestCanonicalNames:
    def test_shallowest_alias_is_canonical(self):
        model = flatten(replicate("fleet", make_counter_san(), 2, shared=["total"]))
        slot = model.place_index("fleet/total")
        assert model.canonical[slot] == "fleet/total"

    def test_summary_counts(self):
        model = flatten(replicate("fleet", make_counter_san(), 2, shared=["total"]))
        text = model.summary()
        assert "2 timed" in text
