"""Declared activity dependency sets: ``timed(..., reads=[...])``.

The activity analogue of PR 2's reward read-sets: a declared activity is
wired into the slot → activity dependency map at compile time and its
predicate runs with read tracking skipped.  The contract under test:

* a declared model's trajectory is **bit-identical** to its tracked twin
  (same SAN without declarations) on both the specialized and the
  reference engine — Hypothesis sweeps random topologies, rates and
  seeds;
* declarations compose with every activity flavour: instants,
  ``reactivate=True``, and marking-dependent distributions;
* misdeclarations fail loudly (unknown place, undeclared read).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SAN,
    Exponential,
    ImpulseReward,
    ModelError,
    RateReward,
    SimulationError,
    Simulator,
    Uniform,
    flatten,
    join,
    replicate,
    replicate_runs,
)

pytestmark = pytest.mark.slow


def build_fleet(n_units, fail_rate, repair_mean, threshold, declare: bool):
    """Random repairable fleet + alarm watcher + reactivating sensor.

    ``declare=True`` annotates every activity with its full read set;
    ``declare=False`` is the tracked-discovery twin.  The sensor reads
    both its places on every evaluation (no short-circuit), so tracked
    discovery converges at compile time and the reactivation wake-up
    pattern is identical in both modes.
    """

    def reads(*names):
        return {"reads": list(names)} if declare else {}

    unit = SAN("unit")
    unit.place("up", 1)
    unit.place("down_count", 0)
    unit.timed(
        "fail",
        Exponential(fail_rate),
        enabled=lambda m: m["up"] == 1,
        effect=lambda m, rng: (
            m.__setitem__("up", 0),
            m.__setitem__("down_count", m["down_count"] + 1),
        ),
        **reads("up"),
    )
    unit.timed(
        "repair",
        Uniform(0.5 * repair_mean, 1.5 * repair_mean),
        enabled=lambda m: m["up"] == 0,
        effect=lambda m, rng: (
            m.__setitem__("up", 1),
            m.__setitem__("down_count", m["down_count"] - 1),
        ),
        **reads("up"),
    )

    watch = SAN("watch")
    watch.place("down_count", 0)
    watch.place("alarm", 0)
    watch.place("sensed", 0)
    watch.instant(
        "raise",
        enabled=lambda m: m["down_count"] >= threshold and m["alarm"] == 0,
        effect=lambda m, rng: m.__setitem__("alarm", 1),
        **reads("down_count", "alarm"),
    )
    watch.instant(
        "clear",
        enabled=lambda m: m["down_count"] < threshold and m["alarm"] == 1,
        effect=lambda m, rng: m.__setitem__("alarm", 0),
        **reads("down_count", "alarm"),
    )
    # Reactivating sensor whose rate depends on the marking: exercises
    # declared reads for both the predicate and the marking-dependent
    # distribution callable (dyn_sample path).
    watch.timed(
        "sense",
        lambda m: Exponential(0.2 + 0.1 * m["down_count"]),
        enabled=lambda m: (m["down_count"] + m["alarm"]) >= 0,
        effect=lambda m, rng: m.__setitem__("sensed", m["sensed"] + 1),
        reactivate=True,
        **reads("down_count", "alarm"),
    )

    tree = join(
        "sys",
        replicate("units", unit, n_units, shared=["down_count"]),
        watch,
        shared=["down_count"],
    )
    return flatten(tree)


fleet_params = st.tuples(
    st.integers(2, 6),       # units
    st.floats(0.01, 0.5),    # fail rate
    st.floats(0.5, 10.0),    # repair mean
    st.integers(1, 3),       # alarm threshold
    st.integers(0, 10_000),  # seed
)


def _rewards():
    return [
        RateReward("alarm_frac", lambda m: float(m["sys/watch/alarm"])),
        ImpulseReward("fails", "*/fail"),
        ImpulseReward("senses", "*/sense"),
    ]


@given(fleet_params, st.sampled_from(["auto", "reference"]))
@settings(max_examples=25, deadline=None)
def test_declared_equals_tracked_bitwise(params, engine):
    """timed(..., reads=...) == tracked path, bit for bit, both engines."""
    n_units, fail_rate, repair_mean, threshold, seed = params
    runs = {}
    for declare in (False, True):
        model = build_fleet(n_units, fail_rate, repair_mean, threshold, declare)
        sim = Simulator(model, base_seed=seed, engine=engine)
        runs[declare] = sim.run(150.0, rewards=_rewards())
    tracked, declared = runs[False], runs[True]
    assert declared.n_events == tracked.n_events
    assert declared._final_values == tracked._final_values
    for name in ("alarm_frac",):
        assert declared[name].integral == tracked[name].integral
    for name in ("fails", "senses"):
        assert declared[name].count == tracked[name].count
        assert declared[name].impulse_sum == tracked[name].impulse_sum


@given(fleet_params)
@settings(max_examples=8, deadline=None)
def test_declared_serial_equals_parallel(params):
    """Declared models keep the n_jobs bit-identity contract."""
    n_units, fail_rate, repair_mean, threshold, seed = params
    rw = [ImpulseReward("senses", "*/sense")]

    def experiment(n_jobs):
        model = build_fleet(n_units, fail_rate, repair_mean, threshold, True)
        sim = Simulator(model, base_seed=seed)
        return replicate_runs(
            sim, 120.0, n_replications=4, rewards=rw, n_jobs=n_jobs
        )

    assert experiment(2).samples("senses") == experiment(1).samples("senses")


class TestDeclarationErrors:
    def test_unknown_place_rejected_at_compile(self):
        san = SAN("s")
        san.place("up", 1)
        san.timed(
            "t",
            Exponential(1.0),
            enabled=lambda m: m["up"] == 1,
            effect=lambda m, rng: None,
            reads=["nope"],
        )
        with pytest.raises(SimulationError, match="not a place"):
            Simulator(flatten(san), base_seed=1).run(10.0)

    def test_undeclared_read_rejected_at_first_eval(self):
        san = SAN("s")
        san.place("up", 1)
        san.place("other", 1)
        san.timed(
            "t",
            Exponential(1.0),
            enabled=lambda m: m["other"] == 1,
            effect=lambda m, rng: None,
            reads=["up"],
        )
        with pytest.raises(SimulationError, match="outside its declared"):
            Simulator(flatten(san), base_seed=1).run(10.0)

    def test_undeclared_distribution_read_rejected(self):
        """The marking-dependent law's reads are checked too."""
        san = SAN("s")
        san.place("up", 1)
        san.place("rate", 2)
        san.timed(
            "t",
            lambda m: Exponential(0.1 * m["rate"]),
            enabled=lambda m: m["up"] == 1,
            effect=lambda m, rng: None,
            reads=["up"],  # omits the distribution's "rate" read
        )
        with pytest.raises(SimulationError, match="distribution callable"):
            Simulator(flatten(san), base_seed=1).run(50.0)

    def test_empty_reads_rejected(self):
        san = SAN("s")
        san.place("up", 1)
        with pytest.raises(ModelError, match="must not be empty"):
            san.timed(
                "t",
                Exponential(1.0),
                enabled=lambda m: m["up"] == 1,
                effect=lambda m, rng: None,
                reads=[],
            )

    def test_non_string_reads_rejected(self):
        san = SAN("s")
        san.place("up", 1)
        with pytest.raises(ModelError, match="place names"):
            san.timed(
                "t",
                Exponential(1.0),
                enabled=lambda m: m["up"] == 1,
                effect=lambda m, rng: None,
                reads=[3],
            )
