"""Batch-means estimation and workload-failure correlation analysis."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.analysis import (
    EventLog,
    JobRecord,
    LogEvent,
    bucket_counts,
    workload_failure_correlation,
)
from repro.core import (
    AnalysisError,
    BinaryTrace,
    SimulationError,
    Simulator,
    batch_means_from_steps,
    batch_means_from_trace,
    flatten,
)
from repro.markov import two_state_availability

from _helpers import build_two_state_san

T0 = datetime(2007, 5, 3)


class TestBatchMeansSteps:
    def test_constant_signal(self):
        res = batch_means_from_steps([0.0], [0.7], 100.0, n_batches=5)
        assert res.estimate.mean == pytest.approx(0.7)
        assert res.estimate.half_width == 0.0
        assert res.batch_hours == pytest.approx(20.0)

    def test_square_wave_mean(self):
        times = [float(t) for t in range(0, 100, 10)]
        values = [1.0 if i % 2 == 0 else 0.0 for i in range(10)]
        res = batch_means_from_steps(times, values, 100.0, n_batches=5)
        assert res.estimate.mean == pytest.approx(0.5)

    def test_warmup_clips(self):
        # signal: 0 for first half, 1 for second half
        res = batch_means_from_steps(
            [0.0, 50.0], [0.0, 1.0], 100.0, n_batches=4, warmup=50.0
        )
        assert res.estimate.mean == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            batch_means_from_steps([0.0], [1.0], 10.0, n_batches=1)
        with pytest.raises(SimulationError):
            batch_means_from_steps([5.0], [1.0], 10.0)  # undefined from 0
        with pytest.raises(SimulationError):
            batch_means_from_steps([0.0, 1.0], [1.0], 10.0)
        with pytest.raises(SimulationError):
            batch_means_from_steps([1.0, 0.5], [1.0, 0.0], 10.0)

    def test_lag1_autocorrelation_of_alternating_batches(self):
        # batches alternate 1,0,1,0 -> strong negative lag-1 correlation
        times = [float(t) for t in range(0, 100, 10)]
        values = [1.0 if i % 2 == 0 else 0.0 for i in range(10)]
        res = batch_means_from_steps(times, values, 100.0, n_batches=10)
        assert res.lag1_autocorrelation < -0.5
        assert not res.batches_look_independent


class TestBatchMeansTrace:
    def test_matches_replication_estimate(self, two_state_model):
        # sample_batch=None reproduces the historical per-draw trajectory
        # for which this seed's batch means pass the independence check
        # (the check is a noisy statistic, sensitive to the trajectory).
        sim = Simulator(two_state_model, base_seed=21, sample_batch=None)
        tr = BinaryTrace("up", lambda m: m["comp/up"] == 1)
        sim.run(200_000.0, traces=[tr])
        res = batch_means_from_trace(tr, n_batches=20, warmup=1_000.0)
        expected = two_state_availability(100.0, 10.0)
        assert abs(res.estimate.mean - expected) < max(
            4 * res.estimate.half_width, 0.01
        )
        assert res.batches_look_independent

    def test_consistent_with_trace_availability(self, two_state_model):
        sim = Simulator(two_state_model, base_seed=22)
        tr = BinaryTrace("up", lambda m: m["comp/up"] == 1)
        sim.run(50_000.0, traces=[tr])
        res = batch_means_from_trace(tr, n_batches=10)
        assert res.estimate.mean == pytest.approx(tr.availability(), abs=1e-9)

    def test_empty_trace_rejected(self):
        tr = BinaryTrace("up", lambda m: True)
        tr.reset()
        with pytest.raises(SimulationError):
            batch_means_from_trace(tr)


def fail_event(hours: float) -> LogEvent:
    return LogEvent(
        timestamp=T0 + timedelta(hours=hours),
        source="oss-1",
        component="san",
        severity="ERROR",
        event_type="io_hw_failure",
    )


def job(hours: float, i: int) -> JobRecord:
    return JobRecord(f"j{i}", T0 + timedelta(hours=hours), 1.0, "completed")


class TestBucketCounts:
    def test_counts(self):
        times = [T0 + timedelta(hours=h) for h in (0.5, 1.5, 1.6, 30.0)]
        counts = bucket_counts(times, T0, T0 + timedelta(hours=48), 24.0)
        assert counts.tolist() == [3, 1]

    def test_validation(self):
        with pytest.raises(AnalysisError):
            bucket_counts([], T0, T0, 24.0)
        with pytest.raises(AnalysisError):
            bucket_counts([], T0, T0 + timedelta(hours=1), 0.0)


class TestCorrelation:
    def test_positively_coupled_series(self):
        # failures proportional to workload per day
        rng = np.random.default_rng(3)
        jobs = []
        failures = []
        k = 0
        for day in range(30):
            load = int(rng.integers(5, 50))
            for _ in range(load):
                jobs.append(job(day * 24 + float(rng.uniform(0, 24)), k))
                k += 1
            for _ in range(load // 10):
                failures.append(fail_event(day * 24 + float(rng.uniform(0, 24))))
        res = workload_failure_correlation(
            jobs, EventLog(failures), bucket_hours=24.0, n_permutations=300
        )
        assert res.spearman_rho > 0.5
        assert res.is_significant

    def test_independent_series_not_significant(self):
        rng = np.random.default_rng(4)
        jobs = [job(float(rng.uniform(0, 720)), i) for i in range(300)]
        failures = [fail_event(float(rng.uniform(0, 720))) for _ in range(30)]
        res = workload_failure_correlation(
            jobs, EventLog(failures), bucket_hours=24.0, n_permutations=300, seed=1
        )
        assert abs(res.spearman_rho) < 0.5

    def test_validation(self):
        with pytest.raises(AnalysisError):
            workload_failure_correlation([], EventLog([fail_event(1.0)]))
        with pytest.raises(AnalysisError):
            workload_failure_correlation([job(1.0, 0)], EventLog([]))
