"""Golden-trajectory determinism tests for the simulation engine.

``tests/data/engine_golden.json`` (regenerate with
``tests/record_golden.py``) pins exact trajectory outcomes — event
counts, final markings, and bit-level reward accumulators — for fixed
seeds on three reference models:

* per-draw mode (``sample_batch=None``) entries were recorded from the
  engine *before* the compiled hot path existed, so these tests prove
  the optimized engine is bit-identical to the historical one;
* ``*_batched`` entries pin the default (block-sampling) engine so that
  future changes cannot silently perturb default trajectories either.

PR 7's ``EquilibriumResidual`` upper-tail accuracy fix (exact inversion
for ``u > 0.999``) left every entry byte-identical — verified by
re-recording and diffing; see ``record_golden.py`` for the audit note.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cfs import abe_parameters
from repro.cfs.cluster import build_cluster_node
from repro.cfs.measures import build_measures
from repro.core import RateReward, Simulator, flatten

from _helpers import build_fleet_node, build_two_state_san
from record_golden import _snapshot_rewarded, iter_reward_cases

GOLDEN_PATH = Path(__file__).parent / "data" / "engine_golden.json"
REWARD_GOLDEN_PATH = Path(__file__).parent / "data" / "reward_golden.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def abe_model():
    params = abe_parameters()
    model = flatten(build_cluster_node(params))
    return model, build_measures(model, params)


def assert_matches(result, expected: dict) -> None:
    __tracebackhelper__ = True
    assert result.n_events == expected["n_events"]
    assert list(result._final_values) == expected["final_values"]
    assert float(result.final_time).hex() == expected["final_time"]
    assert set(result.rewards) == set(expected["rewards"])
    for name, exp in expected["rewards"].items():
        res = result.rewards[name]
        assert res.integral.hex() == exp["integral"], name
        assert res.impulse_sum.hex() == exp["impulse_sum"], name
        assert res.count == exp["count"], name


class TestSeedCompatibility:
    """Per-draw mode reproduces pre-optimization trajectories exactly."""

    @pytest.mark.parametrize("seed", [2008, 7, 99])
    def test_abe_cluster(self, golden, abe_model, seed):
        model, measures = abe_model
        res = Simulator(model, base_seed=seed, sample_batch=None).run(
            2000.0, rewards=measures.rewards
        )
        assert_matches(res, golden[f"abe_cluster/seed={seed}"])

    @pytest.mark.parametrize("seed", [2, 42])
    def test_fleet(self, golden, seed):
        fleet = flatten(build_fleet_node(500))
        res = Simulator(fleet, base_seed=seed, sample_batch=None).run(1000.0)
        assert_matches(res, golden[f"fleet500/seed={seed}"])

    @pytest.mark.parametrize("seed", [9, 123])
    def test_two_state(self, golden, seed):
        model = flatten(build_two_state_san())
        rw = RateReward("a", lambda m: float(m["comp/up"]))
        res = Simulator(model, base_seed=seed, sample_batch=None).run(
            5000.0, rewards=[rw]
        )
        assert_matches(res, golden[f"two_state/seed={seed}"])


class TestBatchedDeterminism:
    """The default (batched) engine is pinned by its own golden entries."""

    @pytest.mark.parametrize("seed", [2008, 7])
    def test_abe_cluster_batched(self, golden, abe_model, seed):
        model, measures = abe_model
        res = Simulator(model, base_seed=seed).run(
            2000.0, rewards=measures.rewards
        )
        assert_matches(res, golden[f"abe_cluster_batched/seed={seed}"])

    @pytest.mark.parametrize("seed", [2, 42])
    def test_fleet_batched(self, golden, seed):
        fleet = flatten(build_fleet_node(500))
        res = Simulator(fleet, base_seed=seed).run(1000.0)
        assert_matches(res, golden[f"fleet500_batched/seed={seed}"])


class TestRunToRunDeterminism:
    """The same simulator configuration always retraces its trajectory."""

    @pytest.mark.parametrize("sample_batch", [None, 64, 256])
    def test_same_seed_same_trajectory(self, sample_batch):
        fleet = flatten(build_fleet_node(50))
        r1 = Simulator(fleet, base_seed=5, sample_batch=sample_batch).run(500.0)
        r2 = Simulator(fleet, base_seed=5, sample_batch=sample_batch).run(500.0)
        assert r1.n_events == r2.n_events
        assert r1._final_values == r2._final_values

    def test_warm_simulator_matches_fresh(self):
        # Run k on a reused simulator equals run k on a fresh one whose
        # counter was advanced: the stream depends only on (seed, k).
        fleet = flatten(build_fleet_node(20))
        sim = Simulator(fleet, base_seed=8)
        first = [sim.run(300.0) for _ in range(3)]
        sim2 = Simulator(fleet, base_seed=8)
        second = [sim2.run(300.0) for _ in range(3)]
        for a, b in zip(first, second):
            assert a.n_events == b.n_events
            assert a._final_values == b._final_values

    def test_batched_modes_differ_but_agree_statistically(self):
        fleet = flatten(build_fleet_node(100))
        per_draw = Simulator(fleet, base_seed=3, sample_batch=None).run(2000.0)
        batched = Simulator(fleet, base_seed=3).run(2000.0)
        # different trajectories (block draws consume the stream ahead)...
        assert per_draw.n_events != batched.n_events
        # ...but comparable event volume (both are the same process)
        assert batched.n_events == pytest.approx(per_draw.n_events, rel=0.1)


class TestRewardGolden:
    """Reward-bearing runs are pinned bit-for-bit against fixtures
    recorded from the engine *before* reward integration was specialized
    (``tests/data/reward_golden.json``): rate-reward integrals, impulse
    accumulators, durations, binary-trace transitions, warm-up clipping
    and early stops.

    ``engine="auto"`` proves the specialized observed fast loop is
    bit-compatible with the historical observer path;
    ``engine="reference"`` proves the general loop stayed so too.

    Intentional re-record (PR 5): the two ``storage_measures`` entries
    were re-recorded when :class:`~repro.cfs.cluster.StorageModel`
    adopted ``batch_dynamic=True`` (its dynamic equilibrium-residual
    draws are now block-served, changing default-mode stream
    consumption).  Every other entry — including all per-draw ones — is
    byte-identical to the original recording.
    """

    @pytest.fixture(scope="class")
    def reward_golden(self) -> dict:
        return json.loads(REWARD_GOLDEN_PATH.read_text())

    @pytest.mark.parametrize("engine", ["auto", "reference"])
    def test_all_cases_bit_identical(self, reward_golden, engine):
        seen = set()
        for key, result in iter_reward_cases(engine=engine):
            seen.add(key)
            snap = json.loads(json.dumps(_snapshot_rewarded(result)))
            assert snap == reward_golden[key], f"{engine}: {key}"
        assert seen == set(reward_golden), "recorded cases drifted"


class TestMatchingIdsCache:
    """String and callable activity patterns are both cached."""

    def test_string_pattern_cached(self):
        model = flatten(build_fleet_node(5))
        sim = Simulator(model, base_seed=1)
        ids1 = sim._matching_ids("fleet/unit[*]/fail")
        ids2 = sim._matching_ids("fleet/unit[*]/fail")
        assert ids1 is ids2
        assert len(ids1) == 5

    def test_callable_pattern_cached_per_identity(self):
        model = flatten(build_fleet_node(5))
        sim = Simulator(model, base_seed=1)
        calls = []

        def pattern(path: str) -> bool:
            calls.append(path)
            return path.endswith("/repair")

        ids1 = sim._matching_ids(pattern)
        n_calls = len(calls)
        assert n_calls == len(model.activities)
        ids2 = sim._matching_ids(pattern)
        assert ids2 is ids1
        assert len(calls) == n_calls  # not re-evaluated
        assert len(ids1) == 5

        # a different callable object gets its own evaluation
        other = lambda path: path.endswith("/repair")  # noqa: E731
        ids3 = sim._matching_ids(other)
        assert ids3 == ids1
        assert ids3 is not ids1
