"""Shared model builders for the test suite.

Import these explicitly (``from _helpers import build_two_state_san``)
rather than from ``conftest``: conftest modules are resolved by pytest's
import order, so ``from conftest import ...`` can silently pick up
``benchmarks/conftest.py`` when benchmarks are collected first.
"""

from __future__ import annotations

from repro.core import SAN, Deterministic, Exponential, replicate


def build_two_state_san(
    name: str = "comp",
    fail_rate: float = 1 / 100.0,
    repair_rate: float = 1 / 10.0,
    deterministic_repair: bool = False,
):
    """A repairable component: the workhorse validation model."""
    san = SAN(name)
    san.place("up", 1)

    def fail(m, rng):
        m["up"] = 0

    def repair(m, rng):
        m["up"] = 1

    san.timed(
        "fail",
        Exponential(fail_rate),
        enabled=lambda m: m["up"] == 1,
        effect=fail,
    )
    repair_dist = (
        Deterministic(1.0 / repair_rate)
        if deterministic_repair
        else Exponential(repair_rate)
    )
    san.timed(
        "repair",
        repair_dist,
        enabled=lambda m: m["up"] == 0,
        effect=repair,
    )
    return san


def square_cell_fn(x: int) -> int:
    """Module-level sweep-cell function (workers import it by name)."""
    return x * x


def build_fleet_node(n_units: int, fail_rate: float = 0.01, repair_rate: float = 0.1):
    """A replicated fleet with a shared down counter (the throughput model)."""
    unit = SAN("unit")
    unit.place("up", 1)
    unit.place("down_count", 0)
    unit.timed(
        "fail",
        Exponential(fail_rate),
        enabled=lambda m: m["up"] == 1,
        effect=lambda m, rng: (
            m.__setitem__("up", 0),
            m.__setitem__("down_count", m["down_count"] + 1),
        ),
    )
    unit.timed(
        "repair",
        Exponential(repair_rate),
        enabled=lambda m: m["up"] == 0,
        effect=lambda m, rng: (
            m.__setitem__("up", 1),
            m.__setitem__("down_count", m["down_count"] - 1),
        ),
    )
    return replicate("fleet", unit, n_units, shared=["down_count"])
