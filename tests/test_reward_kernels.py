"""Compiled reward-form kernels: declaration API, bit-identity, verification.

``RateReward(form=Indicator(...) / Affine(...))`` declares a reward's
value as a guarded slot-affine expression; the simulator compiles it into
an incremental update kernel that refreshes the value at marking-write
time instead of re-calling the Python expression.  The contracts pinned
here:

* form-kernel runs are **bit-identical** to the ``engine="reference"``
  oracle (which never compiles forms) and to a plain Python-function twin
  of the same reward, across gate-kernel, case-kernel, python-effect and
  instantaneous-fixpoint write paths — including Hypothesis-random
  guarded forms;
* a form that disagrees with its reward function raises on the first
  evaluation (t=0 verification), like the gate/case kernels;
* malformed forms raise at construction;
* ``SimulationBudgetError`` interrupting a kernel-reward run carries the
  same partial reward snapshot the reference loop produces, and the
  simulator remains reusable afterwards (reuse-equals-fresh).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SAN,
    Exponential,
    ModelError,
    RateReward,
    SimulationBudgetError,
    SimulationError,
    Simulator,
    flatten,
    replicate,
)
from repro.core.rewards import Affine, Indicator

pytestmark = pytest.mark.slow

GUARD_OPS = ("<", "<=", "==", "!=", ">=", ">")


def _fleet(n_units=6, annotate=True, with_instant=False):
    """Fail/repair units over shared counters, optionally annotated
    (gate-write kernels) and with an instantaneous alarm activity."""
    san = SAN("unit")
    san.place("up", 1)
    san.place("down_count", 0)
    san.place("repairs", 0)

    def fail(m, rng):
        m["up"] = 0
        m["down_count"] += 1

    def repair(m, rng):
        m["up"] = 1
        m["down_count"] -= 1
        m["repairs"] += 1

    san.timed(
        "fail",
        Exponential(0.2),
        enabled=lambda m: m["up"] == 1,
        effect=fail,
        writes=[("up", "set", 0), ("down_count", "add", 1)] if annotate else None,
    )
    san.timed(
        "repair",
        Exponential(1.0),
        enabled=lambda m: m["up"] == 0,
        effect=repair,
        writes=(
            [("up", "set", 1), ("down_count", "add", -1), ("repairs", "add", 1)]
            if annotate
            else None
        ),
    )
    model = replicate("fleet", san, n_units, shared=["down_count", "repairs"])
    if not with_instant:
        return flatten(model)
    top = SAN("alarmer")
    top.place("down_count", 0)
    top.place("alarm", 0)
    top.instant(
        "raise_alarm",
        enabled=lambda m: m["down_count"] >= 2 and m["alarm"] == 0,
        effect=lambda m, rng: m.__setitem__("alarm", 1),
    )
    top.instant(
        "clear_alarm",
        enabled=lambda m: m["down_count"] < 2 and m["alarm"] == 1,
        effect=lambda m, rng: m.__setitem__("alarm", 0),
    )
    from repro.core import join

    return flatten(join("sys", model, top, shared=["down_count"]))


DOWN = "fleet/down_count"
REPAIRS = "fleet/repairs"


def _run_pair(model_factory, rewards_factory, hours=400.0, seed=11, **sim_kw):
    """Run the same rewards on the fast and reference engines."""
    sf = Simulator(model_factory(), base_seed=seed, **sim_kw)
    sr = Simulator(model_factory(), base_seed=seed, engine="reference", **sim_kw)
    rf = sf.run(hours, rewards=rewards_factory())
    rr = sr.run(hours, rewards=rewards_factory())
    return sf, sr, rf, rr


class TestFormKernelBitIdentity:
    def test_indicator_and_affine_match_reference_and_python_twin(self):
        def forms():
            return [
                RateReward("avail", form=Indicator(guards=[(DOWN, "<=", 0)])),
                RateReward(
                    "frac", form=Affine(1.0, terms=[(DOWN, -1.0, 6.0)])
                ),
                RateReward(
                    "guarded",
                    form=Affine(
                        0.5,
                        terms=[(DOWN, 2.0), (REPAIRS, 0.25, 8.0)],
                        guards=[(DOWN, "<", 4), (REPAIRS, ">=", 0)],
                    ),
                ),
            ]

        def twins():
            return [
                RateReward(
                    "avail",
                    lambda m: 1.0 if m[DOWN] <= 0 else 0.0,
                    reads=[DOWN],
                ),
                RateReward(
                    "frac",
                    lambda m: 1.0 + (-1.0 * m[DOWN]) / 6.0,
                    reads=[DOWN],
                ),
                RateReward(
                    "guarded",
                    lambda m: (
                        (0.5 + (2.0 * m[DOWN]) / 1.0) + (0.25 * m[REPAIRS]) / 8.0
                        if m[DOWN] < 4 and m[REPAIRS] >= 0
                        else 0.0
                    ),
                    reads=[DOWN, REPAIRS],
                ),
            ]

        sf, sr, rf, rr = _run_pair(_fleet, forms)
        sp = Simulator(_fleet(), base_seed=11)
        rp = sp.run(400.0, rewards=twins())
        for name in ("avail", "frac", "guarded"):
            assert rf[name].integral == rr[name].integral == rp[name].integral
        assert rf.n_events == rr.n_events

    def test_pair_difference_guard(self):
        """The covered-pairs shape: guard on the difference of two slots."""

        def forms():
            return [
                RateReward(
                    "diff_ok",
                    form=Indicator(guards=[((DOWN, REPAIRS), "<=", 1)]),
                )
            ]

        sf, sr, rf, rr = _run_pair(_fleet, forms)
        sp = Simulator(_fleet(), base_seed=11)
        rp = sp.run(
            400.0,
            rewards=[
                RateReward(
                    "diff_ok",
                    lambda m: 1.0 if m[DOWN] - m[REPAIRS] <= 1 else 0.0,
                    reads=[DOWN, REPAIRS],
                )
            ],
        )
        assert rf["diff_ok"].integral == rr["diff_ok"].integral
        assert rf["diff_ok"].integral == rp["diff_ok"].integral
        assert rf["diff_ok"].integral > 0.0

    def test_unannotated_model_python_effect_path(self):
        """Forms also update through the python-effect changed drain."""

        def forms():
            return [RateReward("avail", form=Indicator(guards=[(DOWN, "<=", 0)]))]

        _, _, rf, rr = _run_pair(lambda: _fleet(annotate=False), forms)
        _, _, af, ar = _run_pair(_fleet, forms)
        assert rf["avail"].integral == rr["avail"].integral
        # annotated and unannotated fleets follow identical trajectories
        assert rf["avail"].integral == af["avail"].integral

    def test_instantaneous_fixpoint_path(self):
        """Forms reading a place written only by instants (settle path)."""

        def forms():
            return [
                RateReward(
                    "no_alarm",
                    form=Indicator(guards=[("sys/alarmer/alarm", "==", 0)]),
                )
            ]

        _, _, rf, rr = _run_pair(lambda: _fleet(with_instant=True), forms)
        assert rf["no_alarm"].integral == rr["no_alarm"].integral
        # the alarm must actually trip for this test to mean anything
        assert rf["no_alarm"].integral < rf.duration

    def test_probes_on_form_rewards(self):
        def forms():
            return [
                RateReward(
                    "avail",
                    form=Indicator(guards=[(DOWN, "<=", 0)]),
                    probe_times=[0.0, 50.0, 400.0],
                )
            ]

        _, _, rf, rr = _run_pair(_fleet, forms)
        assert rf["avail"].instants == rr["avail"].instants
        assert len(rf["avail"].instants) == 3

    def test_windowed_form_reward(self):
        def forms():
            return [
                RateReward(
                    "avail",
                    form=Indicator(guards=[(DOWN, "<=", 0)]),
                    window=(50.0, 200.0),
                )
            ]

        _, _, rf, rr = _run_pair(_fleet, forms)
        assert rf["avail"].integral == rr["avail"].integral
        assert rf["avail"].duration == rr["avail"].duration == 150.0


@st.composite
def random_form(draw):
    """A random guarded affine/indicator form over the fleet's shared
    counters, plus nothing the synthesized function cannot express."""
    n_guards = draw(st.integers(0, 3))
    guards = []
    for _ in range(n_guards):
        place = draw(
            st.sampled_from([DOWN, REPAIRS, (DOWN, REPAIRS), (REPAIRS, DOWN)])
        )
        cmp = draw(st.sampled_from(GUARD_OPS))
        value = draw(st.integers(-3, 6))
        guards.append((place, cmp, value))
    n_terms = draw(st.integers(0, 2))
    terms = []
    for _ in range(n_terms):
        place = draw(st.sampled_from([DOWN, REPAIRS]))
        coef = draw(
            st.floats(-4.0, 4.0, allow_nan=False, allow_infinity=False)
        )
        div = draw(st.sampled_from([1.0, 3.0, 6.0, 24.0]))
        terms.append((place, coef, div))
    base = draw(st.floats(-2.0, 2.0, allow_nan=False, allow_infinity=False))
    if not terms and guards:
        make_indicator = draw(st.booleans())
        if make_indicator:
            return Indicator(guards=guards, value=base)
    return Affine(base, terms=terms, guards=guards)


class TestRandomFormsDifferential:
    @given(form=random_form(), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_fast_equals_reference(self, form, seed):
        """Random guarded forms integrate bit-identically on both engines."""
        reward = lambda: [RateReward("x", form=form)]  # noqa: E731
        sf = Simulator(_fleet(), base_seed=seed)
        sr = Simulator(_fleet(), base_seed=seed, engine="reference")
        rf = sf.run(300.0, rewards=reward())
        rr = sr.run(300.0, rewards=reward())
        assert rf["x"].integral == rr["x"].integral
        assert rf.n_events == rr.n_events
        assert sf.fastpath_report()["reward_kernel_rewards"] == ["x"]
        assert sf.fastpath_report()["python_refresh_rewards"] == []
        assert sr.fastpath_report()["reward_kernel_rewards"] == []


class TestFormVerificationAndValidation:
    def test_mismatched_form_raises_at_t0(self):
        bad = RateReward(
            "bad",
            lambda m: float(m[DOWN]),  # disagrees with the form below
            reads=[DOWN],
            form=Indicator(guards=[(DOWN, "<=", 0)]),
        )
        with pytest.raises(SimulationError, match="does not match"):
            Simulator(_fleet(), base_seed=1).run(10.0, rewards=[bad])

    def test_mismatched_form_accepted_by_reference_engine(self):
        """The reference engine ignores forms, so only the function runs."""
        bad = RateReward(
            "bad",
            lambda m: float(m[DOWN]),
            reads=[DOWN],
            form=Indicator(guards=[(DOWN, "<=", 0)]),
        )
        res = Simulator(_fleet(), base_seed=1, engine="reference").run(
            10.0, rewards=[bad]
        )
        assert res["bad"].integral >= 0.0

    def test_ambiguous_form_place_raises(self):
        r = RateReward("amb", form=Indicator(guards=[("*/up", "==", 1)]))
        with pytest.raises(SimulationError, match="resolved to"):
            Simulator(_fleet(), base_seed=1).run(10.0, rewards=[r])

    def test_validation_errors(self):
        with pytest.raises(ModelError, match="comparison"):
            Affine(0.0, guards=[(DOWN, "~", 0)])
        with pytest.raises(ModelError, match="at least one guard"):
            Indicator(guards=[])
        with pytest.raises(ModelError, match="divisor"):
            Affine(0.0, terms=[(DOWN, 1.0, 0.0)])
        with pytest.raises(ModelError, match="difference guard"):
            Affine(0.0, guards=[((DOWN, REPAIRS, DOWN), "==", 0)])
        with pytest.raises(ModelError, match="form must be"):
            RateReward("x", form=object())
        with pytest.raises(ModelError, match="function must be callable"):
            RateReward("x")

    def test_synthesized_function_and_reads(self):
        r = RateReward(
            "x",
            form=Affine(1.0, terms=[(DOWN, -0.5)], guards=[(REPAIRS, ">=", 0)]),
        )
        assert r.reads == (REPAIRS, DOWN)
        assert r.function({DOWN: 2, REPAIRS: 0}) == 1.0 + (-0.5 * 2) / 1.0
        assert r.function({DOWN: 2, REPAIRS: -1}) == 0.0


class TestBudgetPartialState:
    """SimulationBudgetError carries reward state consistent across
    engines — the kernel-maintained values must not drift from the
    reference loop's python-refreshed ones at the interruption point."""

    @staticmethod
    def _interrupt(engine, max_events, seed=23):
        sim = Simulator(
            _fleet(), base_seed=seed, max_events=max_events, engine=engine
        )
        rewards = [
            RateReward("avail", form=Indicator(guards=[(DOWN, "<=", 0)])),
            RateReward("frac", form=Affine(1.0, terms=[(DOWN, -1.0, 6.0)])),
        ]
        with pytest.raises(SimulationBudgetError) as exc_info:
            sim.run(10_000.0, rewards=rewards)
        return sim, exc_info.value

    @pytest.mark.parametrize("max_events", [1, 7, 100])
    def test_partial_rewards_match_reference(self, max_events):
        _, fast = self._interrupt("auto", max_events)
        _, ref = self._interrupt("reference", max_events)
        assert fast.n_events == ref.n_events == max_events
        assert fast.sim_time == ref.sim_time
        assert fast.marking == ref.marking
        assert fast.rewards == ref.rewards
        assert set(fast.rewards) == {"avail", "frac"}
        for snap in fast.rewards.values():
            assert snap["kind"] == "rate"
            assert snap["integral"] >= 0.0 or snap["integral"] <= 0.0

    def test_partial_rewards_include_impulse(self):
        from repro.core import ImpulseReward

        sim = Simulator(_fleet(), base_seed=5, max_events=50)
        with pytest.raises(SimulationBudgetError) as exc_info:
            sim.run(
                10_000.0,
                rewards=[
                    RateReward(
                        "avail", form=Indicator(guards=[(DOWN, "<=", 0)])
                    ),
                    ImpulseReward("repairs_n", "*/repair"),
                ],
            )
        snap = exc_info.value.rewards["repairs_n"]
        assert snap["kind"] == "impulse"
        assert snap["count"] >= 0
        assert snap["impulse_sum"] == float(snap["count"])

    def test_simulator_reusable_after_budget_error(self):
        """An interrupted run leaves no partial form/guard state behind.

        The budget is sized so the long first run trips it but the short
        follow-up run completes within it.
        """
        sim, _ = self._interrupt("auto", 2000)
        rewards = [
            RateReward("avail", form=Indicator(guards=[(DOWN, "<=", 0)]))
        ]
        again = sim.run(200.0, rewards=rewards)
        fresh = Simulator(_fleet(), base_seed=23).run(200.0, rewards=rewards)
        # Streams differ (the interrupted run consumed stream 0), so
        # compare against the same stream index on a fresh simulator.
        fresh2 = Simulator(_fleet(), base_seed=23)
        fresh2.run(200.0, rewards=rewards)
        second = fresh2.run(200.0, rewards=rewards)
        assert again["avail"].integral == second["avail"].integral
        assert fresh["avail"].integral != 0.0
