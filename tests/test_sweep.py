"""Sweep-cell orchestration: scheduling, determinism, regenerator grids.

A sweep cell is a pure function of its seeded arguments, so
``run_sweep(cells, n_jobs=k)`` must return results bit-identical to
serial execution for every ``k`` — these tests assert float equality,
not approximation, mirroring ``tests/test_parallel.py`` one level up.
"""

from __future__ import annotations

import pickle

import pytest

from repro.cfs import abe_parameters
from repro.cfs.cluster import ClusterModel, StorageModel
from repro.core import SimulationError
from repro.experiments import (
    SweepCell,
    replication_cell,
    run_figure2,
    run_figure4,
    run_sweep,
    table4_cell,
    table5_cell,
)
from repro.experiments.sweep import SweepResult

from _helpers import square_cell_fn

HOURS = 1200.0


def _storage_cells(n=3, reps=2):
    params = abe_parameters()
    return [
        replication_cell(
            ("cell", i), StorageModel.spec(params, 96 + i), HOURS, reps
        )
        for i in range(n)
    ]


class TestRunSweep:
    def test_serial_matches_direct_execution(self):
        cells = _storage_cells(n=2)
        results = run_sweep(cells, n_jobs=1)
        for cell in cells:
            direct = cell.execute()
            swept = results[cell.key]
            assert swept.metrics == direct.metrics
            for m in direct.metrics:
                assert swept.samples(m) == direct.samples(m)

    @pytest.mark.parametrize("n_jobs", [2, 3])
    def test_parallel_bit_identical_per_cell(self, n_jobs):
        serial = run_sweep(_storage_cells(), n_jobs=1)
        parallel = run_sweep(_storage_cells(), n_jobs=n_jobs)
        assert list(serial) == list(parallel)
        for key in serial:
            s, p = serial[key], parallel[key]
            assert s.metrics == p.metrics
            for m in s.metrics:
                assert p.samples(m) == s.samples(m)

    def test_more_jobs_than_cells(self):
        serial = run_sweep(_storage_cells(n=2), n_jobs=1)
        parallel = run_sweep(_storage_cells(n=2), n_jobs=8)
        for key in serial:
            for m in serial[key].metrics:
                assert parallel[key].samples(m) == serial[key].samples(m)

    def test_generic_cells_and_ordering(self):
        cells = [SweepCell(i, square_cell_fn, (i,)) for i in (3, 1, 2)]
        result = run_sweep(cells, n_jobs=2)
        assert list(result) == [3, 1, 2]  # grid order, not completion order
        assert list(result.values()) == [9, 1, 4]
        assert list(result.items()) == [(3, 9), (1, 1), (2, 4)]
        assert len(result) == 3 and 1 in result and 7 not in result

    def test_duplicate_keys_rejected(self):
        cells = [
            SweepCell("a", square_cell_fn, (1,)),
            SweepCell("a", square_cell_fn, (2,)),
        ]
        with pytest.raises(SimulationError, match="duplicate"):
            run_sweep(cells)

    def test_unknown_key_error(self):
        result = run_sweep([SweepCell("a", square_cell_fn, (2,))])
        with pytest.raises(KeyError, match="available"):
            result["b"]

    def test_cells_picklable(self):
        cell = _storage_cells(n=1)[0]
        clone = pickle.loads(pickle.dumps(cell))
        assert clone.key == cell.key


class TestNestedParallelism:
    """Surplus workers split into the cells (cores >> cells policy)."""

    def test_with_inner_jobs_rewrites_divisible_cells(self):
        cell = _storage_cells(n=1)[0]
        split = cell.with_inner_jobs(3)
        assert split.kwargs["n_jobs"] == 3
        assert split.key == cell.key and split.args == cell.args

    def test_with_inner_jobs_respects_explicit_setting(self):
        params = abe_parameters()
        cell = replication_cell(
            "c", StorageModel.spec(params, 96), HOURS, 2, n_jobs=2
        )
        assert cell.with_inner_jobs(4) is cell

    def test_with_inner_jobs_noop_for_indivisible_cells(self):
        cell = SweepCell("a", square_cell_fn, (2,))
        assert cell.with_inner_jobs(4) is cell

    @pytest.mark.parametrize("n_jobs", [5, 8])
    def test_auto_split_bit_identical_to_serial(self, n_jobs):
        """cells x replications two-level split == serial, float-for-float."""
        serial = run_sweep(_storage_cells(n=2), n_jobs=1)
        nested = run_sweep(_storage_cells(n=2), n_jobs=n_jobs)
        for key in serial:
            for m in serial[key].metrics:
                assert nested[key].samples(m) == serial[key].samples(m)

    def test_single_cell_grid_uses_inner_workers(self):
        """A 1-cell grid gets all the workers as within-cell parallelism."""
        serial = run_sweep(_storage_cells(n=1), n_jobs=1)
        nested = run_sweep(_storage_cells(n=1), n_jobs=4)
        (key,) = list(serial)
        for m in serial[key].metrics:
            assert nested[key].samples(m) == serial[key].samples(m)

    def test_nested_false_keeps_one_worker_per_cell(self):
        cells = _storage_cells(n=2)
        flat = run_sweep(cells, n_jobs=8, nested=False)
        serial = run_sweep(_storage_cells(n=2), n_jobs=1)
        for key in serial:
            for m in serial[key].metrics:
                assert flat[key].samples(m) == serial[key].samples(m)


class TestReplicationCell:
    def test_matches_model_simulate(self):
        """A cluster cell reproduces ClusterModel.simulate exactly."""
        params = abe_parameters()
        direct = ClusterModel(params, base_seed=2008).simulate(
            hours=HOURS, n_replications=3
        )
        cell = replication_cell(
            "abe", ClusterModel.spec(params, 2008), HOURS, 3
        )
        swept = run_sweep([cell])["abe"]
        assert swept.metrics == direct.experiment.metrics
        for m in swept.metrics:
            assert swept.samples(m) == direct.experiment.samples(m)

    def test_inner_replication_jobs_identical(self):
        """replication_cell(n_jobs=k) changes wall-clock only."""
        params = abe_parameters()
        spec = StorageModel.spec(params, 96)
        serial = replication_cell("c", spec, HOURS, 4).execute()
        inner = replication_cell("c", spec, HOURS, 4, n_jobs=2).execute()
        for m in serial.metrics:
            assert inner.samples(m) == serial.samples(m)

    def test_nested_pools_identical(self):
        """Cells across workers x replications across inner pools (the
        calibrate --jobs split) stays bit-identical to all-serial."""
        params = abe_parameters()

        def cells(n_jobs):
            return [
                replication_cell(
                    ("c", i),
                    StorageModel.spec(params, 96 + i),
                    800.0,
                    2,
                    n_jobs=n_jobs,
                )
                for i in range(2)
            ]

        serial = run_sweep(cells(1), n_jobs=1)
        nested = run_sweep(cells(2), n_jobs=2)
        for key in serial:
            for m in serial[key].metrics:
                assert nested[key].samples(m) == serial[key].samples(m)

    def test_result_is_picklable_experiment(self):
        cell = _storage_cells(n=1)[0]
        result = cell.execute()
        clone = pickle.loads(pickle.dumps(result))
        assert clone.samples("storage_availability") == result.samples(
            "storage_availability"
        )


class TestRegeneratorGrids:
    """The figure/table regenerators run through the scheduler."""

    @pytest.mark.parametrize("n_jobs", [2])
    def test_figure2_serial_parallel_identical(self, n_jobs):
        kwargs = dict(n_steps=2, n_replications=2, hours=600.0)
        assert run_figure2(**kwargs, n_jobs=1) == run_figure2(
            **kwargs, n_jobs=n_jobs
        )

    def test_figure4_serial_parallel_identical(self):
        kwargs = dict(n_steps=2, n_replications=2, hours=400.0)
        assert run_figure4(**kwargs, n_jobs=1) == run_figure4(
            **kwargs, n_jobs=2
        )

    def test_table_cells_through_scheduler(self):
        results = run_sweep([table4_cell(), table5_cell()], n_jobs=2)
        assert "Weibull regression" in results["table4"].format()
        assert "Disk MTBF" in results["table5"].format()

    def test_mixed_grid(self):
        """Tables and figure points coexist in one grid (run_all's shape)."""
        cells = [table5_cell()] + _storage_cells(n=1)
        results = run_sweep(cells, n_jobs=2)
        assert list(results) == ["table5", ("cell", 0)]
        assert "8+2" in results["table5"].format()
        assert 0.0 <= results[("cell", 0)].mean("storage_availability") <= 1.0
