"""Model-integrity sanitizer: bit-identity, quarantine, lint, hardening.

The contract under test, in four layers:

* ``engine="sanitize"`` is the per-draw reference engine with shadow
  declaration checking bolted on: its trajectories, rewards, traces and
  final markings are **bit-identical** to ``engine="reference"`` with
  ``sample_batch=None`` on the same stream — on toy models and on the
  paper's shipped cluster/storage models;
* ``strict`` escalates recorded violations to :class:`SanitizerError`
  carrying the full report;
* ``Simulator(verify_every=N)`` periodically re-verifies compiled
  kernels on the fast path; a failed re-verification quarantines the
  kernel to the Python path with exactly one :class:`RuntimeWarning`
  (``strict=True`` raises instead), and a clean model's trajectory is
  unchanged by any ``verify_every``;
* the fast path refuses to report a non-finite reward accumulation as
  a result.

``tests/test_mutants.py`` owns detection coverage; this file owns the
engine-integration semantics.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.cfs import ClusterModel, StorageModel
from repro.cfs.parameters import abe_parameters, petascale_parameters
from repro.core import (
    DeclarationError,
    Exponential,
    RateReward,
    SAN,
    SanitizerError,
    SimulationError,
    Simulator,
    flatten,
    lint_model,
)

from _mutants import _machine, _m_wrong_add_amount, run_sanitize


def assert_runs_identical(a, b):
    """Full bit-identity between two RunResults."""
    assert a.final_time == b.final_time
    assert a.duration == b.duration
    assert a.n_events == b.n_events
    assert a.stopped_early == b.stopped_early
    assert a.final_marking == b.final_marking
    assert set(a.rewards) == set(b.rewards)
    for name, ra in a.rewards.items():
        rb = b.rewards[name]
        assert ra.integral == rb.integral, name
        assert ra.impulse_sum == rb.impulse_sum, name
        assert ra.count == rb.count, name
        assert ra.duration == rb.duration, name
        assert ra.instants == rb.instants, name
    assert set(a.traces) == set(b.traces)
    for name, ta in a.traces.items():
        tb = b.traces[name]
        if hasattr(ta, "intervals_where"):
            assert ta.intervals_where(True) == tb.intervals_where(True), name
            assert ta.intervals_where(False) == tb.intervals_where(False), name


def _sanitize_sim(model, seed=11):
    return Simulator(model, base_seed=seed, sample_batch=None, engine="sanitize")


def _reference_sim(model, seed=11):
    return Simulator(model, base_seed=seed, sample_batch=None, engine="reference")


class TestBitIdentity:
    def test_machine_differential(self):
        san, _ = _machine(), None
        model = flatten(san)
        reward = RateReward("avail", lambda m: float(m["m/up"]))
        for seed in (0, 11, 404):
            got = _sanitize_sim(model, seed).run(3000.0, rewards=(reward,))
            want = _reference_sim(model, seed).run(3000.0, rewards=(reward,))
            assert_runs_identical(got, want)
            assert got.sanitizer_report is not None
            assert got.sanitizer_report.ok

    def test_warmup_stop_and_restart(self):
        model = flatten(_machine())
        kw = dict(
            warmup=250.0,
            rewards=(RateReward("avail", lambda m: float(m["m/up"])),),
            stop_predicate=lambda m: m["m/count"] >= 5,
        )
        got = _sanitize_sim(model).run(2000.0, **kw)
        want = _reference_sim(model).run(2000.0, **kw)
        assert_runs_identical(got, want)
        assert got.stopped_early
        # Restart both engines from the stop marking: still lock-step.
        got2 = _sanitize_sim(model, seed=5).run(
            500.0, initial_marking=got.final_marking
        )
        want2 = _reference_sim(model, seed=5).run(
            500.0, initial_marking=want.final_marking
        )
        assert_runs_identical(got2, want2)

    @pytest.mark.slow
    def test_abe_cluster_differential(self):
        cluster = ClusterModel(abe_parameters())
        meas = cluster.measures
        kw = dict(rewards=meas.rewards, traces=meas.traces_factory())
        got = _sanitize_sim(cluster.model, seed=2008).run(
            2000.0,
            rewards=meas.rewards,
            traces=meas.traces_factory(),
        )
        want = _reference_sim(cluster.model, seed=2008).run(2000.0, **kw)
        assert_runs_identical(got, want)
        assert got.sanitizer_report.ok, got.sanitizer_report.format()
        # The shadow checker actually exercised every checker family.
        checks = got.sanitizer_report.checks
        assert checks["write_checks"] > 0
        assert checks["predicate_evals"] > 0
        assert checks["reward_evals"] > 0

    @pytest.mark.slow
    def test_storage_model_differential(self):
        storage = StorageModel(abe_parameters())
        got = _sanitize_sim(storage.model, seed=96).run(4000.0)
        want = _reference_sim(storage.model, seed=96).run(4000.0)
        assert_runs_identical(got, want)


class TestReportAndStrict:
    def test_plain_runs_have_no_report(self):
        model = flatten(_machine())
        res = Simulator(model, base_seed=3).run(500.0)
        assert res.sanitizer_report is None
        res = _reference_sim(model, seed=3).run(500.0)
        assert res.sanitizer_report is None

    def test_violation_provenance(self):
        san, _ = _m_wrong_add_amount(True)
        report = run_sanitize(san, hours=400.0)
        assert not report.ok
        v = report.violations[0]
        assert v.kind == "write-mismatch"
        assert v.subject == "m/repair"
        assert v.place == "m/count"
        assert v.event_index is not None and v.event_index >= 0
        assert v.sim_time is not None and v.sim_time > 0.0
        assert "declared ops give" in v.message
        # and the report self-describes
        text = report.format()
        assert "write-mismatch" in text and "m/count" in text

    def test_dedup_one_violation_per_site(self):
        # The machine fails/repairs dozens of times; the same defect is
        # reported once, with first-occurrence provenance.
        san, _ = _m_wrong_add_amount(True)
        report = run_sanitize(san, hours=2000.0)
        mismatches = [v for v in report.violations if v.kind == "write-mismatch"]
        assert len(mismatches) == 1

    def test_default_warns_strict_raises(self):
        san, _ = _m_wrong_add_amount(True)
        model = flatten(san)
        with pytest.warns(RuntimeWarning, match="sanitizer violations"):
            res = _sanitize_sim(model).run(400.0)
        assert not res.sanitizer_report.ok

        strict = Simulator(
            model, base_seed=11, sample_batch=None, sanitize=True, strict=True
        )
        with pytest.raises(SanitizerError) as exc_info:
            strict.run(400.0)
        assert exc_info.value.report is not None
        assert not exc_info.value.report.ok

    def test_sanitize_flag_conflicts(self):
        model = flatten(_machine())
        with pytest.raises(SimulationError, match="conflicts"):
            Simulator(model, sanitize=True, engine="reference")
        with pytest.raises(SimulationError, match="verify_every"):
            Simulator(model, verify_every=0)
        sim = Simulator(model, sanitize=True)
        assert sim.engine == "sanitize"


class TestVerifyEveryQuarantine:
    def test_clean_model_identical_under_reverification(self):
        model = flatten(_machine())
        reward = RateReward("avail", lambda m: float(m["m/up"]))
        want = Simulator(model, base_seed=7).run(3000.0, rewards=(reward,))
        for every in (1, 3, 100):
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                got = Simulator(model, base_seed=7, verify_every=every).run(
                    3000.0, rewards=(reward,)
                )
            assert_runs_identical(got, want)

    def test_bad_declaration_raises_without_verify_every(self):
        san, _ = _m_wrong_add_amount(True)
        with pytest.raises(DeclarationError):
            Simulator(flatten(san), base_seed=7).run(400.0)

    def test_quarantine_warns_once_and_matches_reference(self):
        san, _ = _m_wrong_add_amount(True)
        model = flatten(san)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            got = Simulator(
                model, base_seed=7, sample_batch=None, verify_every=1
            ).run(2000.0)
        quarantines = [
            w for w in caught if "quarantined" in str(w.message)
        ]
        assert len(quarantines) == 1
        assert issubclass(quarantines[0].category, RuntimeWarning)
        assert "m/repair" in str(quarantines[0].message)
        # Quarantined = the Python effect stays authoritative, so the run
        # equals the reference engine executing the same (buggy) effect.
        want = _reference_sim(model, seed=7).run(2000.0)
        assert_runs_identical(got, want)

    def test_quarantine_strict_raises(self):
        san, _ = _m_wrong_add_amount(True)
        with pytest.raises(DeclarationError):
            Simulator(
                flatten(san), base_seed=7, verify_every=1, strict=True
            ).run(2000.0)

    def test_quarantine_persists_across_runs(self):
        san, _ = _m_wrong_add_amount(True)
        sim = Simulator(flatten(san), base_seed=7, sample_batch=None, verify_every=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sim.run(2000.0)
            sim.run(2000.0)
        quarantines = [w for w in caught if "quarantined" in str(w.message)]
        assert len(quarantines) == 1


class TestNonFiniteRewardGuard:
    def test_fast_path_refuses_nan_integral(self):
        model = flatten(_machine())
        bad = RateReward(
            "haz",
            lambda m: float("nan") if m["m/count"] >= 1 else 1.0,
        )
        with pytest.raises(SimulationError, match="non-finite"):
            Simulator(model, base_seed=7).run(2000.0, rewards=(bad,))

    def test_sanitize_reports_instead(self):
        san = _machine()
        bad = RateReward(
            "haz",
            lambda m: float("nan") if m["m/count"] >= 1 else 1.0,
        )
        report = run_sanitize(san, rewards=(bad,), hours=2000.0)
        kinds = {v.kind for v in report.violations}
        assert "non-finite-reward" in kinds


class TestShippedModelsLintClean:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: ClusterModel(abe_parameters()),
            lambda: ClusterModel(abe_parameters().with_spare_oss(1)),
            lambda: StorageModel(abe_parameters()),
        ],
        ids=["abe", "abe-spare", "abe-storage"],
    )
    def test_abe_family(self, build):
        report = lint_model(build())
        assert report.ok, report.format()
        assert report.coverage["n_activities"] > 0
        assert report.coverage["declared_reads"] > 0

    @pytest.mark.slow
    def test_petascale(self):
        report = lint_model(ClusterModel(petascale_parameters()))
        assert report.ok, report.format()

    def test_lint_accepts_san_node_flat_and_facade(self):
        san = _machine()
        for form in (san, flatten(san)):
            assert lint_model(form).ok
        with pytest.raises(SimulationError, match="lint_model expects"):
            lint_model(object())
