"""Property-based tests of composition flattening on random trees."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SAN, Exponential, Simulator, flatten, join, replicate


def make_unit(n_places: int) -> SAN:
    """A unit with ``n_places`` local places plus a shared counter."""
    san = SAN("unit")
    san.place("shared_total", 0)
    for i in range(n_places):
        san.place(f"p{i}", 1)

    def effect(m, rng):
        m["shared_total"] += 1

    san.timed(
        "tick", Exponential(1.0), enabled=lambda m: m["p0"] == 1, effect=effect
    )
    return san


tree_shape = st.tuples(
    st.integers(1, 3),   # places per unit
    st.integers(1, 4),   # replicas inner
    st.integers(1, 3),   # replicas outer
)


@given(tree_shape)
@settings(max_examples=30, deadline=None)
def test_place_counts_add_up(shape):
    n_places, n_inner, n_outer = shape
    unit = make_unit(n_places)
    inner = replicate("inner", unit, n_inner, shared=["shared_total"])
    outer = replicate("outer", inner, n_outer, shared=["shared_total"])
    model = flatten(outer)
    # locals: n_places per unit instance; shared_total: exactly one slot
    assert model.n_places == n_places * n_inner * n_outer + 1
    assert len(model.match("*shared_total")) == 1
    assert len(model.activities) == n_inner * n_outer


@given(tree_shape)
@settings(max_examples=20, deadline=None)
def test_all_paths_resolve_and_are_unique(shape):
    n_places, n_inner, n_outer = shape
    unit = make_unit(n_places)
    tree = replicate(
        "outer",
        replicate("inner", unit, n_inner, shared=["shared_total"]),
        n_outer,
        shared=["shared_total"],
    )
    model = flatten(tree)
    # every recorded path resolves to a valid slot
    for path, slot in model.paths.items():
        assert model.place_index(path) == slot
        assert 0 <= slot < model.n_places
    # canonical names are themselves resolvable to their slot
    for slot, cpath in enumerate(model.canonical):
        assert model.place_index(cpath) == slot


@given(
    st.integers(1, 4),
    st.integers(0, 500),
)
@settings(max_examples=20, deadline=None)
def test_shared_counter_sums_over_replicas(n_replicas, seed):
    """After any run, the shared counter equals total ticks (impulses)."""
    unit = make_unit(1)
    model = flatten(replicate("fleet", unit, n_replicas, shared=["shared_total"]))
    sim = Simulator(model, base_seed=seed)
    from repro.core import ImpulseReward

    res = sim.run(10.0, rewards=[ImpulseReward("ticks", "*/tick")])
    assert res.place("fleet/shared_total") == res["ticks"].count


@given(st.integers(1, 3), st.integers(1, 3))
@settings(max_examples=15, deadline=None)
def test_join_of_replicates_shares_across_branches(n_a, n_b):
    unit = make_unit(1)
    tree = join(
        "sys",
        replicate("a", unit, n_a, shared=["shared_total"]),
        replicate("b", unit, n_b, shared=["shared_total"]),
        shared=["shared_total"],
    )
    model = flatten(tree)
    slots = {model.place_index(p) for p in model.paths if p.endswith("shared_total")}
    assert len(slots) == 1
    assert len(model.activities) == n_a + n_b
