"""Compiled gate-write kernels: declaration API, bit-identity, verification.

``OutputGate(..., writes=[...])`` / ``SAN.timed(..., effect=...,
writes=[...])`` declares an effect as a fixed sequence of slot ops; the
compiled engine then applies precomputed deltas instead of calling the
Python gate functions.  The contracts pinned here:

* annotated models follow **bit-identical** trajectories to their
  unannotated twins, in per-draw and batched mode, against both the
  specialized loops and the ``engine="reference"`` oracle (which never
  uses kernels);
* misdeclarations — wrong amounts, undeclared writes, rng use, unknown
  places — raise loudly on the first completion (or at compile time);
* the declared ops enforce the same non-negative marking invariant as
  ``LocalView.__setitem__``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SAN,
    Exponential,
    ModelError,
    OutputGate,
    RateReward,
    SimulationError,
    Simulator,
    flatten,
    replicate,
)

pytestmark = pytest.mark.slow


def _pair_fleet(n_units, fail_rate, repair_rate, annotate):
    """Replicated fail/repair units over a shared counter, optionally
    declaring every effect's writes."""
    san = SAN("unit")
    san.place("up", 1)
    san.place("down_count", 0)
    san.place("fails_total", 0)

    def fail(m, rng):
        m["up"] = 0
        m["down_count"] += 1
        m["fails_total"] += 1

    def repair(m, rng):
        m["up"] = 1
        m["down_count"] -= 1

    fail_writes = (
        [("up", "set", 0), ("down_count", "add", 1), ("fails_total", "add", 1)]
        if annotate
        else None
    )
    repair_writes = (
        [("up", "set", 1), ("down_count", "add", -1)] if annotate else None
    )
    san.timed(
        "fail",
        Exponential(fail_rate),
        enabled=lambda m: m["up"] == 1,
        effect=fail,
        writes=fail_writes,
    )
    san.timed(
        "repair",
        Exponential(repair_rate),
        enabled=lambda m: m["up"] == 0,
        effect=repair,
        writes=repair_writes,
    )
    return flatten(replicate("fleet", san, n_units, shared=["down_count", "fails_total"]))


def _run(model, seed, batch, engine="auto", hours=1500.0):
    rewards = [RateReward("frac", lambda m: m["fleet/down_count"] / 10.0)]
    sim = Simulator(model, base_seed=seed, sample_batch=batch, engine=engine)
    res = sim.run(hours, rewards=rewards)
    return res, sim


class TestKernelBitIdentity:
    @given(
        seed=st.integers(0, 2**32 - 1),
        fail_rate=st.floats(0.005, 0.05),
        repair_rate=st.floats(0.05, 0.5),
        batch=st.sampled_from([None, 64, 256]),
    )
    @settings(max_examples=25, deadline=None)
    def test_annotated_matches_unannotated(
        self, seed, fail_rate, repair_rate, batch
    ):
        plain = _pair_fleet(12, fail_rate, repair_rate, annotate=False)
        annotated = _pair_fleet(12, fail_rate, repair_rate, annotate=True)
        ra, sim_a = _run(annotated, seed, batch)
        rp, _ = _run(plain, seed, batch)
        assert ra.n_events == rp.n_events
        assert ra._final_values == rp._final_values
        assert ra["frac"].integral.hex() == rp["frac"].integral.hex()
        assert sim_a.last_kernel_effects > 0

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_kernel_loop_matches_reference_oracle(self, seed):
        annotated = _pair_fleet(12, 0.01, 0.1, annotate=True)
        fast, sim = _run(annotated, seed, 256)
        ref, ref_sim = _run(annotated, seed, 256, engine="reference")
        assert fast.n_events == ref.n_events
        assert fast._final_values == ref._final_values
        assert fast["frac"].integral.hex() == ref["frac"].integral.hex()
        # the oracle never applies kernels; the fast loop does
        assert ref_sim.last_kernel_effects == 0
        assert sim.last_kernel_effects > 0

    def test_plain_loop_kernels(self):
        """Kernels also drive the observer-free plain loop."""
        annotated = _pair_fleet(8, 0.01, 0.1, annotate=True)
        plain = _pair_fleet(8, 0.01, 0.1, annotate=False)
        sa = Simulator(annotated, base_seed=3)
        sp = Simulator(plain, base_seed=3)
        ra, rp = sa.run(2000.0), sp.run(2000.0)
        assert sa.last_loop == "plain"
        assert ra.n_events == rp.n_events
        assert ra._final_values == rp._final_values
        assert sa.last_kernel_effects > 0
        assert sa.last_kernel_effects + sa.last_python_effects == ra.n_events

    def test_warm_simulator_retraces(self):
        annotated = _pair_fleet(8, 0.01, 0.1, annotate=True)
        sim = Simulator(annotated, base_seed=5)
        first = sim.run(1000.0)
        fresh = Simulator(annotated, base_seed=5)
        again = fresh.run(1000.0)
        assert first.n_events == again.n_events
        assert first._final_values == again._final_values


def _one_shot(effect, writes, places=("a", "b")):
    """Single activity firing once; effect/writes under test."""
    san = SAN("s")
    for p in places:
        san.place(p, 1)
    san.timed(
        "act",
        Exponential(1.0),
        enabled=lambda m: m[places[0]] == 1,
        effect=effect,
        writes=writes,
    )
    return flatten(replicate("r", san, 1))


class TestVerification:
    def test_wrong_amount_raises(self):
        model = _one_shot(
            lambda m, rng: m.__setitem__("a", 0),
            [("a", "set", 0), ("b", "add", 5)],
        )
        with pytest.raises(SimulationError, match="declared writes do not match"):
            Simulator(model, base_seed=1).run(100.0)

    def test_undeclared_write_raises(self):
        def effect(m, rng):
            m["a"] = 0
            m["b"] = 0  # not declared

        model = _one_shot(effect, [("a", "set", 0)])
        with pytest.raises(SimulationError, match="undeclared"):
            Simulator(model, base_seed=1).run(100.0)

    def test_rng_use_raises(self):
        def effect(m, rng):
            m["a"] = 0 if rng.uniform() < 2.0 else 1

        model = _one_shot(effect, [("a", "set", 0)])
        with pytest.raises(SimulationError, match="must not use the rng"):
            Simulator(model, base_seed=1).run(100.0)

    def test_negative_drive_raises(self):
        # declaration and function agree, but the second firing would
        # push the count negative — same loud failure as __setitem__.
        san = SAN("s")
        san.place("tick", 0)
        san.place("pool", 1)

        def effect(m, rng):
            m["tick"] += 1
            m["pool"] -= 1

        san.timed(
            "drain",
            Exponential(1.0),
            enabled=lambda m: m["tick"] < 5,
            effect=effect,
            writes=[("tick", "add", 1), ("pool", "add", -1)],
        )
        model = flatten(replicate("r", san, 1))
        with pytest.raises(SimulationError, match="negative"):
            Simulator(model, base_seed=1).run(1000.0)

    def test_failed_verification_is_not_sticky(self):
        """A misdeclared kernel keeps raising on retried runs — the
        verified flag must only be set after verification succeeds."""
        model = _one_shot(
            lambda m, rng: m.__setitem__("a", 0),
            [("a", "set", 0), ("b", "add", 5)],
        )
        sim = Simulator(model, base_seed=1)
        with pytest.raises(SimulationError, match="declared writes"):
            sim.run(100.0)
        with pytest.raises(SimulationError, match="declared writes"):
            sim.run(100.0)

    def test_unknown_place_rejected_at_compile(self):
        model = _one_shot(
            lambda m, rng: m.__setitem__("a", 0), [("nope", "set", 0)]
        )
        with pytest.raises(SimulationError, match="not a place"):
            Simulator(model, base_seed=1).run(100.0)

    def test_reference_engine_ignores_declarations(self):
        """The oracle calls the functions, so even a misdeclared gate
        runs (and its python path defines the correct trajectory)."""
        model = _one_shot(
            lambda m, rng: m.__setitem__("a", 0),
            [("a", "set", 0), ("b", "add", 5)],
        )
        res = Simulator(model, base_seed=1, engine="reference").run(100.0)
        assert res.n_events >= 1


class TestDeclarationAPI:
    def test_writes_require_effect(self):
        san = SAN("s")
        san.place("a", 1)
        with pytest.raises(ModelError, match="without an effect"):
            san.timed(
                "t",
                Exponential(1.0),
                enabled=lambda m: True,
                writes=[("a", "set", 0)],
            )

    @pytest.mark.parametrize(
        "writes",
        [
            [],
            [("a", "mul", 2)],
            [("a", "add", 0)],
            [("a", "set", -1)],
            [("", "set", 1)],
            [("a", "add", 1.5)],
            ["a"],
        ],
    )
    def test_invalid_write_ops_rejected(self, writes):
        with pytest.raises(ModelError):
            OutputGate(lambda m, rng: None, name="g", writes=writes)

    def test_output_gate_normalizes_writes(self):
        og = OutputGate(
            lambda m, rng: None, writes=(("a", "add", 2), ("b", "set", 0))
        )
        assert og.writes == (("a", "add", 2), ("b", "set", 0))

    def test_explicit_output_gates_compile(self):
        """Annotating an explicit OutputGate (not the effect convenience)
        also reaches the kernel path."""
        san = SAN("s")
        san.place("a", 1)
        san.place("n", 0)

        def bump(m, rng):
            m["a"] = 0
            m["n"] += 1

        san.timed(
            "t",
            Exponential(1.0),
            enabled=lambda m: m["a"] == 1,
            output_gates=[
                OutputGate(bump, writes=[("a", "set", 0), ("n", "add", 1)])
            ],
        )
        san.timed(
            "back",
            Exponential(1.0),
            enabled=lambda m: m["a"] == 0,
            effect=lambda m, rng: m.__setitem__("a", 1),
        )
        model = flatten(replicate("r", san, 1))
        sim = Simulator(model, base_seed=2)
        res = sim.run(500.0)
        assert sim.last_kernel_effects > 0
        assert res.place("r/s[0]/n") + (1 - res.place("r/s[0]/a")) > 0
